"""The BENCH_*.json aggregator: deterministic, self-excluding, robust."""

import json
import subprocess
import sys
from pathlib import Path

from benchmarks.bench_index import INDEX_NAME, collect, write_index

REPO = Path(__file__).resolve().parents[2]


def _seed(tmp_path: Path) -> Path:
    (tmp_path / "BENCH_alpha.json").write_text(json.dumps({
        "benchmark": "alpha",
        "rows": [
            {"theta": 0.0, "txn_per_s": 100.0, "system": "occ"},
            {"theta": 0.9, "txn_per_s": 250.0, "system": "occ"},
        ],
    }))
    (tmp_path / "BENCH_beta.json").write_text(json.dumps({
        "benchmark": "beta",
        "rows": [{"ms": 12.5, "ok": True}],
    }))
    (tmp_path / "BENCH_broken.json").write_text("{not json")
    (tmp_path / "RESULTS.txt").write_text("ignored: wrong prefix")
    return tmp_path


def test_collect_folds_every_bench_file(tmp_path):
    doc = collect(_seed(tmp_path))
    assert doc["files"] == [
        "BENCH_alpha.json", "BENCH_beta.json", "BENCH_broken.json",
    ]
    alpha = doc["benchmarks"]["BENCH_alpha.json"]
    assert alpha["document"]["benchmark"] == "alpha"
    # headline surfaces the best number per column, and the row count
    assert alpha["headline"]["rows"] == 2
    assert alpha["headline"]["max_txn_per_s"] == 250.0
    # booleans are not numbers; strings are not numbers
    beta = doc["benchmarks"]["BENCH_beta.json"]
    assert beta["headline"] == {"rows": 1, "max_ms": 12.5}
    # a corrupt file is recorded, not fatal
    assert "error" in doc["benchmarks"]["BENCH_broken.json"]


def test_write_index_excludes_itself_and_is_idempotent(tmp_path):
    _seed(tmp_path)
    path = write_index(tmp_path)
    assert path.name == INDEX_NAME
    first = path.read_text()
    # the index never swallows itself on a rerun, and reruns over the
    # same inputs are byte-identical (no timestamps, no environment)
    assert write_index(tmp_path).read_text() == first
    doc = json.loads(first)
    assert INDEX_NAME not in doc["files"]
    assert len(doc["files"]) == 3


def test_cli_entry_point(tmp_path):
    _seed(tmp_path)
    result = subprocess.run(
        [sys.executable, str(REPO / "benchmarks" / "bench_index.py"),
         "--dir", str(tmp_path)],
        capture_output=True, text=True, timeout=60,
    )
    assert result.returncode == 0, result.stderr
    assert "indexed 3 benchmark file(s)" in result.stdout
    assert (tmp_path / INDEX_NAME).exists()


def test_committed_index_matches_committed_bench_files():
    """The checked-in BENCH_index.json is the fold of the checked-in
    BENCH_*.json files — regenerate with
    ``python benchmarks/bench_index.py`` if this fails."""
    bench_dir = REPO / "benchmarks"
    committed = json.loads((bench_dir / INDEX_NAME).read_text())
    assert committed == collect(bench_dir)
    assert "BENCH_txn.json" in committed["files"]
