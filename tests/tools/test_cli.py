"""CLI smoke tests (small scales: each runs a real simulation)."""

import pytest

from repro.tools.cli import main


def test_info_lists_model_constants(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "NetworkConfig" in out
    assert "link_rate_bps" in out
    assert "RStoreConfig" in out


def test_latency_prints_table(capsys):
    assert main(["latency", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "read (us)" in out
    assert "1048576" in out


def test_bandwidth_reports_aggregate(capsys):
    assert main(["bandwidth", "--machines", "3", "--scale", "4"]) == 0
    out = capsys.readouterr().out
    assert "aggregate=" in out
    aggregate = float(out.split("aggregate=")[1].split(" ")[0])
    assert aggregate > 100  # 3 machines at ~50 Gb/s each


def test_pagerank_reports_speedup(capsys):
    assert main(["pagerank", "--machines", "3", "--scale", "10",
                 "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_sort_reports_ratio(capsys):
    assert main(["sort", "--machines", "3", "--records", "1500",
                 "--gigabytes", "2"]) == 0
    out = capsys.readouterr().out
    assert "RSort" in out and "ratio" in out


def test_kv_reports_ops(capsys):
    assert main(["kv", "--clients", "2", "--ops", "40"]) == 0
    out = capsys.readouterr().out
    assert "kops/s" in out


def test_txn_reports_counters_and_conservation(capsys):
    assert main(["txn", "--clients", "2", "--accounts", "16",
                 "--transfers", "10"]) == 0
    out = capsys.readouterr().out
    assert "ktxn/s" in out
    assert "txn.commits = 20" in out
    assert "txn.aborts" in out
    assert "p50" in out and "p99" in out
    assert "(conserved)" in out


def test_stats_proves_zero_steady_state_master_rpcs(capsys):
    assert main(["stats", "--machines", "3", "--ops", "48",
                 "--window", "8"]) == 0
    out = capsys.readouterr().out
    # the per-layer breakdown covers the whole pipeline
    for layer in ("client", "qp", "wire", "cq", "wait", "op"):
        assert layer in out
    assert "master_rpcs = 0" in out
    assert "zero steady-state master RPCs" in out
    assert "data_ops = 48" in out


def test_stats_proves_per_shard_census_and_tenant_isolation(capsys):
    assert main(["stats", "--machines", "3", "--ops", "32",
                 "--window", "8", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    # every shard's steady-state delta is zero, not just the total
    assert "per-shard steady-state control RPCs:" in out
    assert "warm-cache re-map issued 0 control RPC(s)" in out
    assert "leases served from the client cache" in out
    # both tenants appear with their logical bytes and no denials
    assert "acme" in out and "globex" in out
    assert "client.metadata_cache_hits" in out


def test_trace_prints_span_timeline(capsys):
    assert main(["trace", "--machines", "3", "--ops", "8",
                 "--window", "4", "--limit", "500"]) == 0
    out = capsys.readouterr().out
    assert "control.master.alloc" in out
    assert "data.nic.wire" in out
    assert "data.batch.flush" in out
    assert "dur(us)" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])
