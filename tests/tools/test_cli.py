"""CLI smoke tests (small scales: each runs a real simulation)."""

import pytest

from repro.tools.cli import main


def test_info_lists_model_constants(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "NetworkConfig" in out
    assert "link_rate_bps" in out
    assert "RStoreConfig" in out


def test_latency_prints_table(capsys):
    assert main(["latency", "--reps", "2"]) == 0
    out = capsys.readouterr().out
    assert "read (us)" in out
    assert "1048576" in out


def test_bandwidth_reports_aggregate(capsys):
    assert main(["bandwidth", "--machines", "3", "--scale", "4"]) == 0
    out = capsys.readouterr().out
    assert "aggregate=" in out
    aggregate = float(out.split("aggregate=")[1].split(" ")[0])
    assert aggregate > 100  # 3 machines at ~50 Gb/s each


def test_pagerank_reports_speedup(capsys):
    assert main(["pagerank", "--machines", "3", "--scale", "10",
                 "--iterations", "3"]) == 0
    out = capsys.readouterr().out
    assert "speedup" in out


def test_sort_reports_ratio(capsys):
    assert main(["sort", "--machines", "3", "--records", "1500",
                 "--gigabytes", "2"]) == 0
    out = capsys.readouterr().out
    assert "RSort" in out and "ratio" in out


def test_kv_reports_ops(capsys):
    assert main(["kv", "--clients", "2", "--ops", "40"]) == 0
    out = capsys.readouterr().out
    assert "kops/s" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["definitely-not-a-command"])
