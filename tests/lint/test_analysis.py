"""repro-analyze against its fixtures, the tree, and its own plumbing.

Same marker convention as ``test_lint``: fixtures plant violations
with ``# -> RLxxx`` comments and the tests derive expectations from
them, so fixtures can be edited without chasing line numbers.  On top
of that: the RL008 call-path contract, the ``--json`` schema CI diffs,
baseline and cache round-trips, and name-resolution unit tests over
synthetic programs.
"""

import ast
import json
import re
import time
from pathlib import Path

import pytest

from repro.tools.analysis import (
    Program,
    analyze_paths,
    summarize_source,
)
from repro.tools.analysis import main as analyze_main
from repro.tools.source import SourceFile

HERE = Path(__file__).parent
REPO = HERE.parent.parent
_MARKER = re.compile(r"#\s*->\s*(RL\d{3})")

FIXTURES = {
    "RL008": HERE / "coord" / "fixture_rl008.py",
    "RL009": HERE / "fixture_rl009.py",
    "RL010": HERE / "fixture_rl010.py",
    "RL011": HERE / "fixture_rl011.py",
}


def _expected(path: Path) -> set[tuple[int, str]]:
    return {
        (lineno, match.group(1))
        for lineno, text in enumerate(path.read_text().splitlines(), 1)
        for match in [_MARKER.search(text)]
        if match
    }


def _analyze(paths, **kwargs):
    kwargs.setdefault("use_cache", False)
    return analyze_paths([Path(p) for p in paths], REPO, **kwargs)


# -- the four rules against their fixtures ---------------------------------

@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_fixture_findings_match_markers(rule):
    path = FIXTURES[rule]
    result = _analyze([path])
    found = {(v.line, v.rule) for v in result.findings}
    assert found == _expected(path)
    assert found, f"fixture for {rule} plants no violations"
    assert {r for _, r in found} == {rule}


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_cli_exits_nonzero_on_each_fixture(rule, capsys):
    assert analyze_main(["--no-cache", str(FIXTURES[rule])]) == 1
    out = capsys.readouterr().out
    assert f" {rule} " in out
    assert "finding(s)" in out


def test_rl008_prints_the_full_call_path():
    result = _analyze([FIXTURES["RL008"]])
    deep = next(v for v in result.findings
                if "read_slot_deep" in v.message)
    assert "2-hop" in deep.message
    text = str(deep)
    assert "call path:" in text
    assert "calls SlotStore._view at" in text
    assert "calls SlotStore._open_view at" in text
    assert ".map() at tests/lint/coord/fixture_rl008.py:" in \
        text.splitlines()[-1]


def test_rl010_names_both_sides_of_the_inversion():
    result = _analyze([FIXTURES["RL010"]])
    hidden = next(v for v in result.findings
                  if "through _take_delta" in v.message)
    assert "RemoteLock:gamma" in str(hidden)
    assert "RemoteLock:delta" in str(hidden)


def test_rl011_witnesses_the_reachable_fatal():
    result = _analyze([FIXTURES["RL011"]])
    witnessed = next(v for v in result.findings
                     if "QuotaError" in v.message)
    assert "silently retried forever" in witnessed.message


# -- the tree itself --------------------------------------------------------

def test_cli_exits_zero_on_the_tree(capsys):
    assert analyze_main(["--no-cache"]) == 0
    assert "repro-analyze: clean" in capsys.readouterr().out


def test_shipped_baseline_is_empty():
    payload = json.loads((REPO / "analysis-baseline.json").read_text())
    assert payload == {"version": 1, "findings": []}


def test_warm_cache_run_over_the_tree_is_fast():
    scope = [REPO / "src" / "repro"]
    analyze_paths(scope, REPO, use_cache=True)  # populate
    t0 = time.monotonic()
    result = analyze_paths(scope, REPO, use_cache=True)
    elapsed = time.monotonic() - t0
    assert result.cache.misses == 0
    assert result.cache.hits == result.files
    assert elapsed < 2.0, f"warm analyze took {elapsed:.2f}s"


# -- CLI contract -----------------------------------------------------------

def test_cli_json_schema_is_stable(capsys):
    assert analyze_main(
        ["--json", "--no-cache", str(FIXTURES["RL009"])]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["tool"] == "repro-analyze"
    assert payload["findings"]
    for finding in payload["findings"]:
        assert set(finding) == {"rule", "path", "line", "message",
                                "detail", "fingerprint"}
        assert re.fullmatch(r"[0-9a-f]{16}", finding["fingerprint"])
    assert set(payload["stats"]) == {
        "files", "functions", "call_edges", "suppressed", "baselined",
        "cache_hits", "cache_misses",
    }


def test_cli_exits_2_on_empty_scope(tmp_path, capsys):
    assert analyze_main(["--no-cache", str(tmp_path)]) == 2
    assert "nothing was checked" in capsys.readouterr().err


def test_repro_cli_dispatches_analyze(capsys):
    from repro.tools.cli import main as repro_main

    rc = repro_main(["analyze", "--json", "--no-cache",
                     str(FIXTURES["RL010"])])
    assert rc == 1
    payload = json.loads(capsys.readouterr().out)
    assert {f["rule"] for f in payload["findings"]} == {"RL010"}


def test_fingerprints_survive_edits_above_the_finding(tmp_path):
    victim = tmp_path / "victim.py"
    body = ("def go(client):\n"
            "    fut = yield from client.read_async(0, 8)\n")
    victim.write_text(body)
    first = _analyze([victim]).to_json()["findings"]
    victim.write_text("# a new comment shifts every line\n\n" + body)
    second = _analyze([victim]).to_json()["findings"]
    assert [f["line"] for f in first] != [f["line"] for f in second]
    assert ([f["fingerprint"] for f in first]
            == [f["fingerprint"] for f in second])


def test_baseline_round_trip_grandfathers_findings(tmp_path, capsys):
    victim = tmp_path / "victim.py"
    victim.write_text("def go(client):\n"
                      "    fut = yield from client.read_async(0, 8)\n")
    baseline = tmp_path / "baseline.json"
    assert analyze_main(["--no-cache", "--write-baseline",
                         "--baseline", str(baseline), str(victim)]) == 0
    assert "baselined 1 finding(s)" in capsys.readouterr().out
    assert analyze_main(["--no-cache", "--baseline", str(baseline),
                         str(victim)]) == 0
    assert "1 baselined" in capsys.readouterr().out


def test_allow_comment_suppresses_a_finding(tmp_path):
    victim = tmp_path / "victim.py"
    victim.write_text(
        "def go(client):\n"
        "    fut = yield from client.read_async(0, 8)"
        "  # repro-lint: allow[RL009]\n")
    result = _analyze([victim])
    assert not result.findings
    assert result.suppressed == 1


def test_unparsable_file_is_an_rl000_error(tmp_path, capsys):
    victim = tmp_path / "broken.py"
    victim.write_text("def broken(:\n")
    assert analyze_main(["--no-cache", str(victim)]) == 1
    assert "RL000" in capsys.readouterr().out


# -- cache behaviour --------------------------------------------------------

def test_cache_detects_edits_and_reuses_summaries(tmp_path):
    root = tmp_path
    victim = root / "victim.py"
    victim.write_text("def go(client):\n"
                      "    fut = yield from client.read_async(0, 8)\n")
    cold = analyze_paths([victim], root, use_cache=True)
    assert cold.cache.misses == 1 and cold.cache.hits == 0
    assert len(cold.findings) == 1

    warm = analyze_paths([victim], root, use_cache=True)
    assert warm.cache.hits == 1 and warm.cache.misses == 0
    assert [(v.line, v.rule) for v in warm.findings] \
        == [(v.line, v.rule) for v in cold.findings]

    victim.write_text("def go(client):\n"
                      "    fut = yield from client.read_async(0, 8)\n"
                      "    return (yield from fut.wait())\n")
    edited = analyze_paths([victim], root, use_cache=True)
    assert edited.cache.misses == 1
    assert not edited.findings


# -- name resolution over synthetic programs --------------------------------

def _program(modules: dict) -> Program:
    summaries = []
    for rel, text in modules.items():
        source = SourceFile(Path(rel), rel, text, tree=ast.parse(text))
        summaries.append(summarize_source(source))
    return Program(summaries)


def test_resolves_methods_through_base_classes():
    prog = _program({"src/repro/kv/mod.py": (
        "class Base:\n"
        "    def ping(self):\n"
        "        return 1\n"
        "class Child(Base):\n"
        "    def go(self):\n"
        "        return self.ping()\n"
    )})
    assert prog.edges["repro.kv.mod:Child.go"] \
        == [(0, "repro.kv.mod:Base.ping")]


def test_resolves_imported_names_and_constructed_locals():
    prog = _program({
        "src/repro/coord/lock.py": (
            "class RemoteLock:\n"
            "    def acquire(self):\n"
            "        yield None\n"
        ),
        "src/repro/kv/table.py": (
            "from repro.coord.lock import RemoteLock\n"
            "def helper():\n"
            "    return 1\n"
            "def go(client):\n"
            "    lock = RemoteLock()\n"
            "    yield from lock.acquire()\n"
            "    return helper()\n"
        ),
    })
    callees = {callee for _, callee
               in prog.edges["repro.kv.table:go"]}
    assert "repro.coord.lock:RemoteLock.acquire" in callees
    assert "repro.kv.table:helper" in callees


def test_resolves_self_attributes_captured_in_init():
    prog = _program({"src/repro/kv/mod.py": (
        "class Lock:\n"
        "    def acquire(self):\n"
        "        yield None\n"
        "class Table:\n"
        "    def __init__(self):\n"
        "        self._lock = Lock()\n"
        "    def go(self):\n"
        "        yield from self._lock.acquire()\n"
    )})
    callees = {callee for _, callee
               in prog.edges["repro.kv.mod:Table.go"]}
    assert "repro.kv.mod:Lock.acquire" in callees


def test_unresolvable_receivers_contribute_no_edges():
    prog = _program({"src/repro/kv/mod.py": (
        "def go(client):\n"
        "    return client.mystery()\n"
    )})
    assert prog.edges["repro.kv.mod:go"] == []
