"""Fixture: RL006 — master endpoints dial through the shard router.

Bad: naming ``config.master_service`` from ordinary code (the module
pins itself to one shard and bypasses routing).  Good: asking the
shard router for a client, or touching unrelated config fields.
"""


def dials_the_master_directly(client, config):
    return client.connect(config.master_host,
                          config.master_service)  # -> RL006


def builds_an_endpoint_label(self):
    return f"{self.config.master_service}.7"  # -> RL006


def routes_properly(router, shard_id):
    return router.client_for(shard_id)


def reads_other_config_fields(config):
    return (config.master_host, config.control_shards)
