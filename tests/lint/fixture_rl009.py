"""Must-flag / must-pass fixture for RL009 (future-escape).

RL003 only sees a ``*_async`` result dropped on the spot; RL009 chases
the future through assignments and helper returns.  Markers sit on
the line each finding anchors to.
"""


def local_shelved(client):
    fut = yield from client.read_async(0, 64)  # -> RL009
    return None


def _issue(client):
    fut = yield from client.read_async(0, 64)
    return fut


def helper_discarded(client):
    _issue(client)  # -> RL009
    yield from client.flush()


def helper_shelved(client):
    fut = _issue(client)  # -> RL009
    yield from client.flush()


def _issue_indirect(client):
    return _issue(client)


def helper_shelved_deep(client):
    fut = _issue_indirect(client)  # -> RL009
    yield from client.flush()


# must-pass: the future is waited
def consumed(client):
    fut = _issue(client)
    return (yield from fut.wait())


# must-pass: a closure reading the future counts as consumption
def consumed_by_closure(client):
    fut = _issue(client)

    def drain():
        return fut.result()

    return drain
