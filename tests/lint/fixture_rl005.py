"""Fixture: RL005 — unbounded retry loops.

Bad: ``while True`` catching an exception and continuing with no
visible bound.  Good: retry loops bounded by a deadline or an attempt
budget, loops with a real termination condition, and dispatch loops
that never retry.
"""


def naked_retry(call):
    while True:
        try:  # -> RL005
            return call()
        except ValueError:
            continue


def nested_inside_a_branch(call, verbose):
    while True:
        if verbose:
            try:  # -> RL005
                return call()
            except ValueError:
                continue
        return None


def bounded_by_attempts(call):
    attempts = 0
    while True:
        try:
            return call()
        except ValueError:
            attempts += 1
            if attempts > 3:
                raise
            continue


def bounded_by_deadline(sim, call, deadline):
    while True:
        try:
            return call()
        except ValueError:
            if sim.now >= deadline:
                raise
            continue


def real_termination_condition(daemon, call):
    while daemon.alive:
        try:
            return call()
        except ValueError:
            continue
    return None


def dispatcher_never_retries(queue):
    while True:
        item = queue.get()
        if item is None:
            return
        yield item


def inner_loop_continue_belongs_to_the_inner_loop(calls):
    while True:
        for call in calls:
            try:
                call()
            except ValueError:
                continue  # continues the for, not the while
        return
