"""Must-flag / must-pass fixture for RL010 (static lock order).

Two inverted pairs: alpha/beta directly, gamma/delta with one side of
the inversion hidden behind a helper call made while holding.  The
rule reports every edge on a cycle, so both sides carry markers.  The
mu/nu pair is acquired in the same order everywhere — must pass.
"""


class RemoteLock:
    """Stub with the coordination-lock verbs the summary tracks."""

    def __init__(self, client, name):
        self.client = client
        self.name = name

    def acquire(self):
        yield None

    def release(self):
        yield None


def lock_ab(client):
    a = RemoteLock(client, "alpha")
    b = RemoteLock(client, "beta")
    yield from a.acquire()
    yield from b.acquire()  # -> RL010
    yield from b.release()
    yield from a.release()


def lock_ba(client):
    a = RemoteLock(client, "alpha")
    b = RemoteLock(client, "beta")
    yield from b.acquire()
    yield from a.acquire()  # -> RL010
    yield from a.release()
    yield from b.release()


def _take_delta(client):
    d = RemoteLock(client, "delta")
    yield from d.acquire()
    yield from d.release()


def hold_gamma_call_delta(client):
    g = RemoteLock(client, "gamma")
    yield from g.acquire()
    yield from _take_delta(client)  # -> RL010
    yield from g.release()


def lock_dg(client):
    d = RemoteLock(client, "delta")
    g = RemoteLock(client, "gamma")
    yield from d.acquire()
    yield from g.acquire()  # -> RL010
    yield from g.release()
    yield from d.release()


# must-pass: same order at every site — an edge, but no cycle
def lock_mu_nu(client):
    m = RemoteLock(client, "mu")
    n = RemoteLock(client, "nu")
    yield from m.acquire()
    yield from n.acquire()
    yield from n.release()
    yield from m.release()


def lock_mu_nu_again(client):
    m = RemoteLock(client, "mu")
    n = RemoteLock(client, "nu")
    yield from m.acquire()
    yield from n.acquire()
    yield from n.release()
    yield from m.release()
