"""RL003 fixture: futures from ``*_async`` calls thrown away.  Never
imported — repro-lint parses it as text.  ``# -> RLxxx`` markers name
the expected finding on that line."""


def fire_and_forget(mapping, payload):
    yield from mapping.write_async(0, payload)  # -> RL003
    mapping.faa_async(0, 1)                     # -> RL003


def batched(mapping, payload):
    # stored future: no finding
    fut = yield from mapping.write_async(0, payload)
    yield from fut.wait()
