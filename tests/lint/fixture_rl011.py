"""Must-flag / must-pass fixture for RL011 (exception-flow).

A retry loop whose broad handler swallows everything traps Fatal
errors — deterministic failures that retrying cannot fix.  The class
names matter, not the import: the rule keys off the ``FatalError``
base by name.
"""


class FatalError(Exception):
    pass


class RecoverableError(Exception):
    pass


class QuotaError(FatalError):
    pass


def _charge(meter):
    if meter.spent():
        raise QuotaError("over quota")
    return meter.debit()


def retry_forever(meter):
    while True:
        try:
            return _charge(meter)
        except Exception:  # -> RL011
            continue


def retry_bare(meter):
    while True:
        try:
            return meter.debit()
        except:  # -> RL011
            continue


# must-pass: a narrow handler lets fatals propagate
def retry_recoverable(meter):
    while True:
        try:
            return _charge(meter)
        except RecoverableError:
            continue


# must-pass: broad, but re-raises the deterministic failures
def retry_filtering(meter):
    while True:
        try:
            return _charge(meter)
        except Exception as exc:
            if isinstance(exc, FatalError):
                raise
            continue
