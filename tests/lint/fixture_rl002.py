"""RL002 fixture: wall-clock and global-RNG nondeterminism outside
``simnet/``.  Never imported — repro-lint parses it as text.
``# -> RLxxx`` markers name the expected finding on that line."""

import random
import time


def stamp():
    started = time.time()                   # -> RL002
    elapsed = time.monotonic()              # -> RL002
    return started, elapsed


def jitter():
    backoff = random.random()               # -> RL002
    rng = random.Random()                   # -> RL002
    allowed = random.random()  # repro-lint: allow[RL002]
    return backoff, rng, allowed
