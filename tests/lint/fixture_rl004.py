"""RL004 fixture: instrument names off the ``layer.noun_verb``
registry convention.  Never imported — repro-lint parses it as text.
``# -> RLxxx`` markers name the expected finding on that line."""


def measure(metrics, tracer, n):
    metrics.counter("requests")                       # -> RL004
    metrics.gauge("warp.queue_depth").set(n)          # -> RL004
    with tracer.span("data.SortPhase", kind="data"):  # -> RL004
        pass
    metrics.counter("kv.get_total").add(1)  # fine: known layer
    metrics.counter(f"{n}_total").add(1)              # -> RL004
    metrics.gauge(f"txn.{n}_inflight").set(n)  # fine: constant prefix
