"""RL007 fixture: a server-op executor (``server_*.py`` under a
``datapath`` directory) that reaches for control-plane machinery.
Handlers run inside the server's RPC dispatch loop — importing RPC or
shard-map internals, or dialing a master, is a hidden control RPC and
a deadlock waiting to happen.  Never imported — repro-lint parses it
as text.  ``# -> RLxxx`` markers name the expected finding.
"""

from repro.rpc import RpcClient             # -> RL007
import repro.core.master                    # -> RL007
from repro.core.shard import ShardMap       # -> RL007


class LeakyExecutor:
    def execute(self, request):
        # a handler asking the master a question mid-op: forbidden
        reply = yield from self.client._master_call(  # -> RL007
            "lookup", name=request["region"]
        )
        peer = self.registry.client_for(reply["host"])  # -> RL007
        yield from peer.connect_all()                   # -> RL007
        return reply
