"""repro-lint against its fixtures and against the tree.

Each ``fixture_*.py`` file plants known violations, marked in-line
with ``# -> RLxxx`` comments; the test derives the expected
``(line, rule)`` set from those markers, so fixtures can be edited
without chasing hard-coded line numbers.  The tree itself (the
linter's default scope) must be clean — that is the satellite
guarantee that every pre-existing violation got fixed, and CI's
``lint-invariants`` job re-checks it on every push.
"""

import re
from pathlib import Path

import pytest

from repro.tools import lint

HERE = Path(__file__).parent
REPO = HERE.parent.parent
_MARKER = re.compile(r"#\s*->\s*(RL\d{3})")

FIXTURES = {
    "RL001": HERE / "coord" / "fixture_rl001.py",
    "RL002": HERE / "fixture_rl002.py",
    "RL003": HERE / "fixture_rl003.py",
    "RL004": HERE / "fixture_rl004.py",
    "RL005": HERE / "fixture_rl005.py",
    "RL006": HERE / "fixture_rl006.py",
    "RL007": HERE / "datapath" / "server_fixture_rl007.py",
}


def _expected(path: Path) -> set[tuple[int, str]]:
    return {
        (lineno, match.group(1))
        for lineno, text in enumerate(path.read_text().splitlines(), 1)
        for match in [_MARKER.search(text)]
        if match
    }


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_fixture_findings_match_markers(rule):
    path = FIXTURES[rule]
    found = {(v.line, v.rule) for v in lint.lint_paths([path])}
    assert found == _expected(path)
    assert found, f"fixture for {rule} plants no violations"
    assert {r for _, r in found} == {rule}


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_cli_exits_nonzero_with_file_line_rule(rule, capsys):
    path = FIXTURES[rule]
    assert lint.main([str(path)]) == 1
    out = capsys.readouterr().out
    for line, _ in sorted(_expected(path)):
        # paths print relative to the invocation cwd
        assert f"{path.name}:{line}: {rule} " in out
    assert "violation(s)" in out


def test_cli_exits_zero_on_the_tree(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    assert lint.main([]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_default_scope_covers_library_examples_benchmarks():
    scope = {p.name for p in lint.default_paths(REPO)}
    assert scope == {"repro", "examples", "benchmarks"}


def test_suppression_comment_silences_one_line():
    # fixture_rl002 carries one allow[RL002] line; prove it is the
    # suppression doing the work by linting the same draw un-suppressed
    src = HERE / "fixture_rl002.py"
    text = src.read_text()
    assert "# repro-lint: allow[RL002]" in text
    suppressed_line = next(
        i for i, line in enumerate(text.splitlines(), 1)
        if "allow[RL002]" in line
    )
    found_lines = {v.line for v in lint.lint_paths([src])}
    assert suppressed_line not in found_lines


def test_violation_renders_path_line_rule():
    v = lint.Violation("a/b.py", 7, "RL002", "wall-clock read")
    assert str(v) == "a/b.py:7: RL002 wall-clock read"


def test_cli_exits_2_on_empty_scope(tmp_path, capsys):
    assert lint.main([str(tmp_path)]) == 2
    assert "nothing was checked" in capsys.readouterr().err


# -- internals: the helpers the analysis package also leans on -------------

def test_allow_comment_parses_multiple_rules():
    from repro.tools.source import allowed_rules

    assert allowed_rules("x = 1  # repro-lint: allow[RL001, RL005]") \
        == {"RL001", "RL005"}
    assert allowed_rules("# repro-lint: allow[RL010,RL011]") \
        == {"RL010", "RL011"}
    assert allowed_rules("x = 1  # a plain comment") == set()


def test_retrying_trys_sees_nested_try_except_finally():
    import ast
    import textwrap

    tree = ast.parse(textwrap.dedent(
        """
        while True:
            try:
                try:
                    work()
                except ValueError:
                    continue
                finally:
                    cleanup()
            except KeyError:
                pass
            try:
                step()
            finally:
                try:
                    flush()
                except OSError:
                    continue
        """
    ))
    loop = tree.body[0]
    retrying = list(lint._retrying_trys(loop.body))
    # the inner continue-on-ValueError try (behind an outer try whose
    # own handlers do not retry) and the continue-on-OSError try
    # buried in a finally block; never the two non-retrying outer trys
    assert len(retrying) == 2
    calls = {stmt.body[0].value.func.id for stmt in retrying}
    assert calls == {"work", "flush"}


def _lint_snippet(tmp_path, relpath: str, text: str):
    path = tmp_path / relpath
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return lint.lint_paths([path])


def test_rl006_flags_endpoint_deep_in_attribute_chain(tmp_path):
    found = _lint_snippet(
        tmp_path, "registry.py",
        "def dial(cluster):\n"
        "    return cluster.cfg.master_service.host\n")
    assert [(v.line, v.rule) for v in found] == [(2, "RL006")]


def test_rl006_exempts_the_shard_layer_and_master(tmp_path):
    for name in ("master.py", "shard_router.py", "config.py"):
        found = _lint_snippet(
            tmp_path, name,
            f"def dial_{name.split('.')[0]}(cfg):\n"
            "    return cfg.master_service\n")
        assert not found, name


def test_rl007_flags_control_dial_through_attribute_chain(tmp_path):
    found = _lint_snippet(
        tmp_path, "datapath/server_probe.py",
        "def execute(server, args):\n"
        "    return server.node.rpc.client_for(0)\n")
    assert [(v.line, v.rule) for v in found] == [(2, "RL007")]


def test_rl007_scope_is_server_modules_under_datapath_only(tmp_path):
    bad = ("from repro.rpc.frames import Frame\n"
           "def execute(server, args):\n"
           "    return Frame\n")
    found = _lint_snippet(tmp_path, "datapath/server_sum.py", bad)
    assert [(v.line, v.rule) for v in found] == [(1, "RL007")]
    # same text outside the server-op scope: not RL007's business
    assert not _lint_snippet(tmp_path, "datapath/client_sum.py", bad)
    assert not _lint_snippet(tmp_path, "elsewhere/server_sum.py", bad)
