"""repro-lint against its fixtures and against the tree.

Each ``fixture_*.py`` file plants known violations, marked in-line
with ``# -> RLxxx`` comments; the test derives the expected
``(line, rule)`` set from those markers, so fixtures can be edited
without chasing hard-coded line numbers.  The tree itself (the
linter's default scope) must be clean — that is the satellite
guarantee that every pre-existing violation got fixed, and CI's
``lint-invariants`` job re-checks it on every push.
"""

import re
from pathlib import Path

import pytest

from repro.tools import lint

HERE = Path(__file__).parent
REPO = HERE.parent.parent
_MARKER = re.compile(r"#\s*->\s*(RL\d{3})")

FIXTURES = {
    "RL001": HERE / "coord" / "fixture_rl001.py",
    "RL002": HERE / "fixture_rl002.py",
    "RL003": HERE / "fixture_rl003.py",
    "RL004": HERE / "fixture_rl004.py",
    "RL005": HERE / "fixture_rl005.py",
    "RL006": HERE / "fixture_rl006.py",
    "RL007": HERE / "datapath" / "server_fixture_rl007.py",
}


def _expected(path: Path) -> set[tuple[int, str]]:
    return {
        (lineno, match.group(1))
        for lineno, text in enumerate(path.read_text().splitlines(), 1)
        for match in [_MARKER.search(text)]
        if match
    }


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_fixture_findings_match_markers(rule):
    path = FIXTURES[rule]
    found = {(v.line, v.rule) for v in lint.lint_paths([path])}
    assert found == _expected(path)
    assert found, f"fixture for {rule} plants no violations"
    assert {r for _, r in found} == {rule}


@pytest.mark.parametrize("rule", sorted(FIXTURES))
def test_cli_exits_nonzero_with_file_line_rule(rule, capsys):
    path = FIXTURES[rule]
    assert lint.main([str(path)]) == 1
    out = capsys.readouterr().out
    for line, _ in sorted(_expected(path)):
        # paths print relative to the invocation cwd
        assert f"{path.name}:{line}: {rule} " in out
    assert "violation(s)" in out


def test_cli_exits_zero_on_the_tree(capsys, monkeypatch):
    monkeypatch.chdir(REPO)
    assert lint.main([]) == 0
    assert "repro-lint: clean" in capsys.readouterr().out


def test_default_scope_covers_library_examples_benchmarks():
    scope = {p.name for p in lint.default_paths(REPO)}
    assert scope == {"repro", "examples", "benchmarks"}


def test_suppression_comment_silences_one_line():
    # fixture_rl002 carries one allow[RL002] line; prove it is the
    # suppression doing the work by linting the same draw un-suppressed
    src = HERE / "fixture_rl002.py"
    text = src.read_text()
    assert "# repro-lint: allow[RL002]" in text
    suppressed_line = next(
        i for i, line in enumerate(text.splitlines(), 1)
        if "allow[RL002]" in line
    )
    found_lines = {v.line for v in lint.lint_paths([src])}
    assert suppressed_line not in found_lines


def test_violation_renders_path_line_rule():
    v = lint.Violation("a/b.py", 7, "RL002", "wall-clock read")
    assert str(v) == "a/b.py:7: RL002 wall-clock read"
