"""Must-flag / must-pass fixture for RL008 (interprocedural isolation).

Lives under a ``coord`` directory so the data-path scoping applies,
mirroring the RL001 fixture.  Markers sit on the first hop of each
offending chain — the line the finding anchors to.
"""


class SlotStore:
    def __init__(self, client):
        self.client = client

    # seed: the direct control call lives in a control-named helper,
    # which is RL001's contract — RL008 has nothing to say here
    def _open_view(self):
        mapping = yield from self.client.map("kv.slots")
        return mapping

    # an innocuous-named middle hop: itself a 1-hop chain
    def _view(self):
        mapping = yield from self._open_view()  # -> RL008
        return mapping

    def read_slot(self, index):
        mapping = yield from self._open_view()  # -> RL008
        return (yield from mapping.read(index * 64, 64))

    def read_slot_deep(self, index):
        mapping = yield from self._view()  # -> RL008
        return (yield from mapping.read(index * 64, 64))

    # must-pass: a control-named driver may orchestrate setup hops
    def open_slots(self):
        mapping = yield from self._view()
        return mapping

    # must-pass: steady state done right — the mapped state is passed
    # in, nothing here can reach the master
    def read_hot(self, mapping, index):
        return (yield from mapping.read(index * 64, 64))
