"""RL001 fixture: a data-path module (lives under ``coord/``) that
imports master/RPC machinery and uses the control path at steady state.
Never imported — repro-lint parses it as text.  ``# -> RLxxx`` markers
name the expected finding on that line (parsed by ``test_lint.py``).
"""

from repro.rpc import RpcChannel            # -> RL001
import repro.core.master                    # -> RL001


def hot_loop(client):
    # steady-state function name carries no create/open/setup token
    desc = yield from client.lookup("x")    # -> RL001
    mapping = yield from client.map(desc)   # -> RL001
    return mapping


def open_queue(client):
    # a create/open-style function MAY use the control path: no finding
    yield from client.alloc("q", 4096)
    return (yield from client.map("q"))
