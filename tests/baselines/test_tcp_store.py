"""Sockets-store comparator tests."""

import pytest

from repro.baselines import TcpMemoryClient, TcpMemoryServer
from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.rpc.endpoint import RpcRemoteError
from repro.simnet.config import KiB, MiB, us


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(num_machines=3,
                         config=RStoreConfig(stripe_size=256 * KiB),
                         server_capacity=64 * MiB)


def test_read_write_roundtrip(cluster):
    server = TcpMemoryServer(cluster, host_id=2, size=1 * MiB, port=7950)

    def app():
        client = yield from TcpMemoryClient(cluster, 0).connect(server)
        yield from client.write(100, b"socket-store")
        data = yield from client.read(100, 12)
        return data

    assert cluster.run_app(app()) == b"socket-store"


def test_out_of_bounds_rejected(cluster):
    server = TcpMemoryServer(cluster, host_id=2, size=4 * KiB, port=7951)

    def app():
        client = yield from TcpMemoryClient(cluster, 0).connect(server)
        with pytest.raises(RpcRemoteError, match="bounds"):
            yield from client.read(0, 8 * KiB)

    cluster.run_app(app())


def test_slower_than_rstore_small_reads(cluster):
    """E2's qualitative core: sockets-store latency >> RStore latency."""
    server = TcpMemoryServer(cluster, host_id=2, size=1 * MiB, port=7952)
    rstore_client = cluster.client(0)

    def app():
        tcp = yield from TcpMemoryClient(cluster, 0).connect(server)
        region = yield from rstore_client.alloc("lat-cmp", 1 * MiB)
        mapping = yield from rstore_client.map(region)

        t0 = cluster.sim.now
        for _ in range(10):
            yield from mapping.read(0, 64)
        rstore_lat = (cluster.sim.now - t0) / 10

        t1 = cluster.sim.now
        for _ in range(10):
            yield from tcp.read(0, 64)
        tcp_lat = (cluster.sim.now - t1) / 10
        return rstore_lat, tcp_lat

    rstore_lat, tcp_lat = cluster.run_app(app())
    assert rstore_lat < us(5)
    assert tcp_lat > 4 * rstore_lat


def test_server_cpu_burns_under_sockets(cluster):
    server = TcpMemoryServer(cluster, host_id=1, size=8 * MiB, port=7953)
    before = cluster.net.host(1).cpu.busy_seconds

    def app():
        client = yield from TcpMemoryClient(cluster, 0).connect(server)
        for _ in range(20):
            yield from client.read(0, 64 * KiB)

    cluster.run_app(app())
    assert cluster.net.host(1).cpu.busy_seconds - before > 100 * us(1)
