"""Access-pattern generator tests."""

import numpy as np
import pytest

from repro.workloads.access import (
    OpMix,
    generate_ops,
    uniform_keys,
    zipfian_keys,
)


def test_zipfian_is_skewed():
    keys = zipfian_keys(50_000, keyspace=1000, theta=0.99, seed=1)
    counts = np.bincount(keys, minlength=1000)
    # the hottest key draws far more than its uniform share
    assert counts.max() > 20 * (50_000 / 1000)
    # and hotter ranks dominate colder ones on average
    assert counts[:10].sum() > counts[-100:].sum()


def test_zipfian_theta_zero_is_uniform():
    keys = zipfian_keys(50_000, keyspace=100, theta=0.0, seed=2)
    counts = np.bincount(keys, minlength=100)
    assert counts.max() < 2.0 * counts.mean()


def test_zipfian_deterministic_and_in_range():
    a = zipfian_keys(1000, 500, seed=3)
    b = zipfian_keys(1000, 500, seed=3)
    assert (a == b).all()
    assert a.min() >= 0 and a.max() < 500


#: upper critical value of the chi-squared distribution, df=49, at
#: p = 0.001 — the sampler is seeded, so the statistic is a fixed
#: number and this is a regression bound, not a flaky hypothesis test
_CHI2_DF49_P001 = 85.35


@pytest.mark.parametrize("theta", [0.0, 0.9, 1.2])
def test_zipfian_fits_exact_zeta_weights_chi_squared(theta):
    """Goodness of fit against the law the docstring promises.

    The sampler claims inverse-CDF over exact zeta weights, so the
    observed histogram must fit ``w_i = 1/i^theta`` — not merely "be
    skewed".  Manual chi-squared (no scipy): 50 bins and 20k draws
    keep every expected count well above the >=5 validity floor even
    at theta=1.2 (coldest bin expects ~55).
    """
    bins, draws = 50, 20_000
    keys = zipfian_keys(draws, keyspace=bins, theta=theta, seed=11)
    counts = np.bincount(keys, minlength=bins)
    weights = 1.0 / np.power(np.arange(1, bins + 1), theta)
    expected = draws * weights / weights.sum()
    assert expected.min() >= 5.0
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    assert chi2 < _CHI2_DF49_P001, (
        f"theta={theta}: chi2={chi2:.1f} over the df=49 p=0.001 bound"
    )


def test_zipfian_skew_orders_by_theta():
    # the hot key's share must grow with the skew parameter
    shares = []
    for theta in (0.0, 0.9, 1.2):
        keys = zipfian_keys(20_000, keyspace=50, theta=theta, seed=11)
        shares.append(np.bincount(keys, minlength=50)[0] / 20_000)
    assert shares[0] < shares[1] < shares[2]


def test_zipfian_pinned_seed_pins_the_stream():
    # the exact draw sequence is part of the reproducibility contract:
    # benchmark configs name (theta, seed) and expect identical traces
    assert zipfian_keys(8, 1000, theta=0.99, seed=7).tolist() == [
        64, 474, 195, 2, 5, 399, 0, 272,
    ]
    for theta in (0.0, 0.9, 1.2):
        a = zipfian_keys(5000, 300, theta=theta, seed=42)
        b = zipfian_keys(5000, 300, theta=theta, seed=42)
        c = zipfian_keys(5000, 300, theta=theta, seed=43)
        assert (a == b).all()
        assert (a != c).any()


def test_zipfian_validation():
    with pytest.raises(ValueError):
        zipfian_keys(10, 0)
    with pytest.raises(ValueError):
        zipfian_keys(-1, 10)
    with pytest.raises(ValueError):
        zipfian_keys(10, 10, theta=-1)


def test_uniform_keys_range():
    keys = uniform_keys(1000, 50, seed=4)
    assert keys.min() >= 0 and keys.max() < 50


def test_op_mix_presets():
    assert OpMix.ycsb_a().read == 0.5
    assert OpMix.ycsb_b().read == 0.95
    assert OpMix.ycsb_c().read == 1.0


def test_op_mix_must_sum_to_one():
    with pytest.raises(ValueError):
        OpMix(read=0.5, update=0.2, insert=0.1)


def test_generate_ops_respects_mix():
    ops = generate_ops(10_000, keyspace=100, mix=OpMix.ycsb_b(), seed=5)
    reads = sum(1 for kind, _k in ops if kind == OpMix.READ)
    updates = sum(1 for kind, _k in ops if kind == OpMix.UPDATE)
    assert reads + updates == 10_000
    assert 0.93 < reads / 10_000 < 0.97


def test_generate_ops_read_only():
    ops = generate_ops(500, keyspace=10, mix=OpMix.ycsb_c(), seed=6)
    assert all(kind == OpMix.READ for kind, _k in ops)
