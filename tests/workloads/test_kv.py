"""Record-generator edge cases (the bulk is covered in tests/sort)."""

import numpy as np

from repro.workloads.kv import (
    KEY_BYTES,
    RECORD_BYTES,
    VALUE_BYTES,
    generate_records,
    is_sorted,
    keys_of,
    record_bytes,
)


def test_terasort_record_layout():
    assert KEY_BYTES == 10
    assert VALUE_BYTES == 90
    assert RECORD_BYTES == 100


def test_record_bytes_roundtrip():
    records = generate_records(50, seed=1)
    blob = record_bytes(records)
    assert len(blob) == 50 * RECORD_BYTES
    back = np.frombuffer(blob, dtype=np.uint8).reshape(-1, RECORD_BYTES)
    assert (back == records).all()


def test_keys_of_shape():
    records = generate_records(10, seed=2)
    assert keys_of(records).shape == (10, KEY_BYTES)


def test_is_sorted_on_equal_keys():
    records = generate_records(5, seed=3)
    same = np.tile(records[0], (5, 1))
    assert is_sorted(same)


def test_is_sorted_detects_single_inversion():
    records = generate_records(100, seed=4)
    from repro.sort.rsort import sort_order

    ordered = records[sort_order(records)]
    swapped = ordered.copy()
    swapped[[10, 80]] = swapped[[80, 10]]
    assert is_sorted(ordered)
    assert not is_sorted(swapped)


def test_seeds_partition_the_keyspace_statistically():
    a = generate_records(1000, seed=10)
    b = generate_records(1000, seed=11)
    # different streams: identical rows should be essentially impossible
    assert not (a == b).all()
