"""Statistics utilities used by the benchmarks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.stats import Recorder, percentile, summarize
from repro.simnet.kernel import Simulator


def test_percentile_basics():
    data = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(data, 0) == 1.0
    assert percentile(data, 50) == 3.0
    assert percentile(data, 100) == 5.0
    assert percentile(data, 25) == 2.0


def test_percentile_interpolates():
    assert percentile([1.0, 2.0], 50) == pytest.approx(1.5)


def test_percentile_validation():
    with pytest.raises(ValueError):
        percentile([], 50)
    with pytest.raises(ValueError):
        percentile([1.0], 101)


def test_percentile_single_sample():
    assert percentile([7.0], 99) == 7.0


def test_summary_fields():
    s = summarize([1.0, 2.0, 3.0, 4.0])
    assert s.count == 4
    assert s.mean == pytest.approx(2.5)
    assert s.minimum == 1.0
    assert s.maximum == 4.0
    assert s.p50 == pytest.approx(2.5)


def test_summary_scaled():
    s = summarize([1e-6, 3e-6]).scaled(1e6)
    assert s.mean == pytest.approx(2.0)
    assert s.count == 2


def test_recorder_measures_simulated_time():
    sim = Simulator()
    recorder = Recorder(sim)

    def app():
        token = recorder.start()
        yield sim.timeout(0.5)
        recorder.stop(token, nbytes=1000)
        token = recorder.start()
        yield sim.timeout(1.5)
        recorder.stop(token, nbytes=3000)

    sim.run(until=sim.process(app()))
    assert recorder.samples == [0.5, 1.5]
    assert recorder.bytes == 4000
    assert recorder.throughput_bps(2.0) == pytest.approx(16000.0)


def test_recorder_zero_elapsed_throughput():
    sim = Simulator()
    recorder = Recorder(sim)
    assert recorder.throughput_bps(0.0) == 0.0


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_percentile_properties(samples):
    """p0 = min, p100 = max, monotone in q, bounded by extremes."""
    assert percentile(samples, 0) == min(samples)
    assert percentile(samples, 100) == max(samples)
    previous = min(samples)
    for q in (10, 25, 50, 75, 90, 99):
        value = percentile(samples, q)
        assert min(samples) <= value <= max(samples)
        assert value >= previous - 1e-9
        previous = value


def test_empty_recorder_summary_raises():
    recorder = Recorder(Simulator())
    with pytest.raises(ValueError):
        recorder.summary()


def test_single_sample_summary_collapses_to_that_sample():
    recorder = Recorder(Simulator())
    recorder.add(4.2e-6, nbytes=64)
    s = recorder.summary()
    assert s.count == 1
    assert (s.mean == s.p50 == s.p95 == s.p99 == s.minimum
            == s.maximum == 4.2e-6)


def test_percentile_rejects_negative_q():
    with pytest.raises(ValueError):
        percentile([1.0], -0.1)


def test_recorder_stop_without_start_raises():
    recorder = Recorder(Simulator())
    with pytest.raises(KeyError):
        recorder.stop("never-started")


def test_recorder_add_skips_the_open_token_protocol():
    recorder = Recorder(Simulator())
    recorder.add(1.0)
    recorder.add(3.0, nbytes=100)
    assert recorder.samples == [1.0, 3.0]
    assert recorder.bytes == 100
    assert recorder.summary().mean == pytest.approx(2.0)
