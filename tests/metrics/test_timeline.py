"""Timeline bucketing."""

import pytest

from repro.metrics.timeline import Timeline
from repro.simnet.kernel import Simulator


def test_records_land_in_time_buckets():
    sim = Simulator()
    timeline = Timeline(sim, bucket_s=1.0)

    def app():
        timeline.record(100)
        yield sim.timeout(2.5)
        timeline.record(200)
        timeline.record(50, ops=3)

    sim.run(until=sim.process(app()))
    series = timeline.series()
    assert series == [(0.0, 100, 1), (1.0, 0, 0), (2.0, 250, 4)]


def test_bandwidth_series():
    sim = Simulator()
    timeline = Timeline(sim, bucket_s=0.5)

    def app():
        timeline.record(1000)
        yield sim.timeout(0.6)
        timeline.record(4000)

    sim.run(until=sim.process(app()))
    series = timeline.bandwidth_series_bps()
    assert series[0] == (0.0, pytest.approx(16000.0))
    assert series[1] == (0.5, pytest.approx(64000.0))
    assert timeline.peak_bandwidth_bps() == pytest.approx(64000.0)


def test_empty_timeline():
    timeline = Timeline(Simulator())
    assert timeline.series() == []
    assert timeline.peak_bandwidth_bps() == 0.0


def test_origin_is_creation_time():
    sim = Simulator()

    def app():
        yield sim.timeout(5.0)
        timeline = Timeline(sim, bucket_s=1.0)
        timeline.record(10)
        return timeline

    timeline = sim.run(until=sim.process(app()))
    assert timeline.series() == [(0.0, 10, 1)]


def test_invalid_bucket_rejected():
    with pytest.raises(ValueError):
        Timeline(Simulator(), bucket_s=0)


def test_boundary_instant_rolls_into_the_next_bucket():
    sim = Simulator()
    timeline = Timeline(sim, bucket_s=1.0)

    def app():
        timeline.record(10)
        yield sim.timeout(1.0)  # exactly the bucket boundary
        timeline.record(20)

    sim.run(until=sim.process(app()))
    assert timeline.series() == [(0.0, 10, 1), (1.0, 20, 1)]


def test_gap_buckets_zero_fill():
    sim = Simulator()
    timeline = Timeline(sim, bucket_s=1.0)

    def app():
        timeline.record(5)
        yield sim.timeout(3.5)
        timeline.record(7)

    sim.run(until=sim.process(app()))
    assert timeline.series() == [
        (0.0, 5, 1), (1.0, 0, 0), (2.0, 0, 0), (3.0, 7, 1),
    ]


def test_ops_only_records_count_without_bytes():
    sim = Simulator()
    timeline = Timeline(sim, bucket_s=1.0)
    timeline.record()  # defaults: 0 bytes, 1 op
    timeline.record(ops=3)
    assert timeline.series() == [(0.0, 0, 4)]
    assert timeline.peak_bandwidth_bps() == 0.0
