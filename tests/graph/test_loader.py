"""Graph representation, generators and partitioning tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.loader import Graph, partition_ranges
from repro.workloads.graphs import erdos_renyi_edges, rmat_edges


def small_graph():
    # edges (src -> dst): 0->1, 0->2, 1->2, 2->0, 3->2
    src = np.array([0, 0, 1, 2, 3])
    dst = np.array([1, 2, 2, 0, 2])
    return Graph.from_edges(4, src, dst)


def test_in_edges_grouped_by_target():
    g = small_graph()
    assert sorted(g.in_edges_of(2).tolist()) == [0, 1, 3]
    assert g.in_edges_of(0).tolist() == [2]
    assert g.in_edges_of(3).tolist() == []


def test_out_degrees():
    g = small_graph()
    assert g.out_degrees.tolist() == [2, 1, 1, 1]


def test_num_edges_preserved():
    g = small_graph()
    assert g.num_edges == 5


def test_weights_follow_edge_order():
    src = np.array([0, 1, 2])
    dst = np.array([2, 2, 1])
    weights = np.array([10.0, 20.0, 30.0])
    g = Graph.from_edges(3, src, dst, weights)
    indptr, sources, w = g.slice_csr(0, 3)
    # in-edges of 1: from 2 (weight 30); of 2: from 0 and 1 (10, 20)
    for target in (1, 2):
        lo, hi = indptr[target], indptr[target + 1]
        for s, wt in zip(sources[lo:hi], w[lo:hi]):
            expected = {(2, 30.0), (0, 10.0), (1, 20.0)}
            assert (s, wt) in expected


def test_slice_csr_is_consistent():
    g = small_graph()
    indptr, sources, _w = g.slice_csr(1, 3)
    assert len(indptr) == 3
    assert indptr[0] == 0
    assert len(sources) == indptr[-1]
    # slice rows match global rows
    assert sorted(sources[indptr[1]:indptr[2]].tolist()) == sorted(
        g.in_edges_of(2).tolist()
    )


def test_edge_bounds_validated():
    with pytest.raises(ValueError):
        Graph.from_edges(2, np.array([0]), np.array([5]))


def test_partition_ranges_cover_everything():
    parts = partition_ranges(10, 3)
    assert parts[0][0] == 0
    assert parts[-1][1] == 10
    for (_l1, h1), (l2, _h2) in zip(parts, parts[1:]):
        assert h1 == l2


@settings(max_examples=100, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=1000),
    p=st.integers(min_value=1, max_value=16),
)
def test_partition_ranges_properties(n, p):
    parts = partition_ranges(n, p)
    assert len(parts) == p
    assert sum(hi - lo for lo, hi in parts) == n
    sizes = [hi - lo for lo, hi in parts]
    assert max(sizes) - min(sizes) <= 1


def test_rmat_shape_and_determinism():
    s1, d1 = rmat_edges(scale=8, edge_factor=4, seed=1)
    s2, d2 = rmat_edges(scale=8, edge_factor=4, seed=1)
    assert len(s1) == 4 * 256
    assert (s1 == s2).all() and (d1 == d2).all()
    assert s1.max() < 256 and d1.max() < 256


def test_rmat_is_skewed():
    """Power-law check: the top-1% targets receive far more than 1% of edges."""
    src, dst = rmat_edges(scale=12, edge_factor=8, seed=3)
    counts = np.bincount(dst, minlength=1 << 12)
    counts.sort()
    top = counts[-(len(counts) // 100):].sum()
    assert top > 0.1 * len(dst)


def test_erdos_renyi_is_roughly_uniform():
    src, dst = erdos_renyi_edges(1000, 50_000, seed=5)
    counts = np.bincount(dst, minlength=1000)
    assert counts.max() < 10 * counts.mean()


def test_generator_validation():
    with pytest.raises(ValueError):
        rmat_edges(scale=0)
    with pytest.raises(ValueError):
        erdos_renyi_edges(0, 10)
