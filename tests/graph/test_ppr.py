"""Personalized PageRank."""

import numpy as np
import pytest

from repro.graph.algorithms import PersonalizedPageRankProgram
from repro.graph.loader import Graph
from tests.graph.test_algorithms import drive, line_graph


def test_ppr_mass_sums_to_one():
    src = np.array([0, 1, 2, 3, 0])
    dst = np.array([1, 2, 3, 0, 2])
    g = Graph.from_edges(4, src, dst)
    scores, _ = drive(PersonalizedPageRankProgram(source=0, iterations=50), g)
    assert scores.sum() == pytest.approx(1.0, abs=1e-9)


def test_ppr_concentrates_near_source():
    # a long directed line: proximity to the source decays along it
    g = line_graph(8)
    scores, _ = drive(PersonalizedPageRankProgram(source=0, iterations=100), g)
    assert scores[0] > scores[2] > scores[5] > scores[7]


def test_ppr_differs_by_source():
    src = np.array([0, 1, 2, 3])
    dst = np.array([1, 2, 3, 0])
    g = Graph.from_edges(4, src, dst)
    a, _ = drive(PersonalizedPageRankProgram(source=0, iterations=60), g)
    b, _ = drive(PersonalizedPageRankProgram(source=2, iterations=60), g)
    assert a.argmax() == 0
    assert b.argmax() == 2


def test_ppr_matches_networkx():
    networkx = pytest.importorskip("networkx")
    rng = np.random.default_rng(17)
    src = rng.integers(0, 40, 300).astype(np.int64)
    dst = rng.integers(0, 40, 300).astype(np.int64)
    g = Graph.from_edges(40, src, dst)
    scores, _ = drive(
        PersonalizedPageRankProgram(source=5, damping=0.85, iterations=120), g
    )
    nxg = networkx.MultiDiGraph()
    nxg.add_nodes_from(range(40))
    nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
    expected = networkx.pagerank(
        nxg, alpha=0.85, personalization={5: 1.0},
        dangling={5: 1.0}, max_iter=300, tol=1e-12,
    )
    for v in range(40):
        assert scores[v] == pytest.approx(expected[v], abs=1e-6)


def test_ppr_distributed_matches_sequential():
    from repro.cluster import build_cluster
    from repro.core import RStoreConfig
    from repro.graph import RStoreGraphEngine
    from repro.simnet.config import KiB, MiB
    from repro.workloads.graphs import rmat_edges

    src, dst = rmat_edges(scale=9, edge_factor=6, seed=12)
    graph = Graph.from_edges(1 << 9, src, dst)
    cluster = build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )
    program = PersonalizedPageRankProgram(source=3, iterations=6)
    engine = RStoreGraphEngine(cluster, graph, tag="ppr")
    stats = cluster.run_app(engine.run(program))
    expected, _ = drive(
        PersonalizedPageRankProgram(source=3, iterations=6), graph
    )
    np.testing.assert_allclose(stats.values, expected, rtol=1e-12)
