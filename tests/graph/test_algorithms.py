"""Vertex-program correctness against reference implementations.

The programs are pure numpy, so they are tested here without any
simulation: a trivial sequential driver iterates them to convergence.
"""

import numpy as np
import pytest

from repro.graph.algorithms import (
    BfsProgram,
    PageRankProgram,
    SsspProgram,
    WccProgram,
)
from repro.graph.loader import Graph


def drive(program, graph, max_iters=10_000):
    """Single-partition BSP driver."""
    n = graph.num_vertices
    x = program.initial(graph, 0, n)
    iteration = 0
    while True:
        new, changed = program.apply(graph, x, 0, n)
        x = new
        iteration += 1
        if program.done(iteration, changed):
            return x, iteration


def line_graph(n=5):
    """0 -> 1 -> 2 -> ... -> n-1"""
    src = np.arange(n - 1)
    dst = np.arange(1, n)
    return Graph.from_edges(n, src, dst)


def test_bfs_distances_on_line():
    dist, _iters = drive(BfsProgram(source=0), line_graph(5))
    assert dist.tolist() == [0, 1, 2, 3, 4]


def test_bfs_unreachable_stays_infinite():
    g = Graph.from_edges(4, np.array([0]), np.array([1]))
    dist, _ = drive(BfsProgram(source=0), g)
    assert dist[0] == 0 and dist[1] == 1
    assert np.isinf(dist[2]) and np.isinf(dist[3])


def test_sssp_weighted_shortest_path():
    # 0 ->(5) 1, 0 ->(1) 2, 2 ->(1) 1 : best path to 1 costs 2
    src = np.array([0, 0, 2])
    dst = np.array([1, 2, 1])
    w = np.array([5.0, 1.0, 1.0])
    g = Graph.from_edges(3, src, dst, w)
    dist, _ = drive(SsspProgram(source=0), g)
    assert dist.tolist() == [0.0, 2.0, 1.0]


def test_sssp_requires_weights():
    g = line_graph(3)
    with pytest.raises(ValueError, match="weights"):
        drive(SsspProgram(source=0), g)


def test_wcc_on_symmetrized_components():
    # components {0,1,2} and {3,4}; symmetrize edges for weak semantics
    src = np.array([0, 1, 3, 1, 2, 4])
    dst = np.array([1, 2, 4, 0, 1, 3])
    g = Graph.from_edges(5, src, dst)
    labels, _ = drive(WccProgram(), g)
    assert labels[0] == labels[1] == labels[2] == 0
    assert labels[3] == labels[4] == 3


def test_pagerank_sums_to_one():
    src = np.array([0, 1, 2, 3, 0, 2])
    dst = np.array([1, 2, 3, 0, 2, 0])
    g = Graph.from_edges(4, src, dst)
    ranks, iters = drive(PageRankProgram(iterations=20), g)
    assert iters == 20
    assert ranks.sum() == pytest.approx(1.0, abs=1e-9)


def test_pagerank_matches_networkx():
    networkx = pytest.importorskip("networkx")
    rng = np.random.default_rng(11)
    src = rng.integers(0, 50, 400)
    dst = rng.integers(0, 50, 400)
    g = Graph.from_edges(50, src.astype(np.int64), dst.astype(np.int64))
    ranks, _ = drive(PageRankProgram(damping=0.85, iterations=100), g)

    nxg = networkx.MultiDiGraph()
    nxg.add_nodes_from(range(50))
    nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
    expected = networkx.pagerank(nxg, alpha=0.85, max_iter=200, tol=1e-12)
    for v in range(50):
        assert ranks[v] == pytest.approx(expected[v], abs=1e-6)


def test_pagerank_handles_dangling_mass():
    # vertex 1 has no out-edges; total rank must still be 1
    g = Graph.from_edges(3, np.array([0, 2]), np.array([1, 1]))
    ranks, _ = drive(PageRankProgram(iterations=50), g)
    assert ranks.sum() == pytest.approx(1.0, abs=1e-9)


def test_bfs_converges_and_reports_done():
    g = line_graph(10)
    program = BfsProgram(source=0)
    _dist, iters = drive(program, g)
    assert iters <= 11  # diameter + settle round
