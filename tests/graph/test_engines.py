"""Distributed engine tests: RStore BSP vs the message-passing baseline.

Both engines run the same vertex programs; results must match the
sequential driver bit-for-bit (same numpy operations in the same
order), and the RStore engine must beat the sockets baseline — the
paper's Table-level claim, pinned here at small scale.
"""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.graph import (
    BfsProgram,
    MessagePassingEngine,
    PageRankProgram,
    RStoreGraphEngine,
    WccProgram,
)
from repro.graph.loader import Graph
from repro.simnet.config import KiB, MiB
from repro.workloads.graphs import rmat_edges


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=256 * KiB),
        server_capacity=256 * MiB,
    )


@pytest.fixture(scope="module")
def graph():
    src, dst = rmat_edges(scale=10, edge_factor=8, seed=9)
    return Graph.from_edges(1 << 10, src, dst)


def sequential(program, graph):
    n = graph.num_vertices
    x = program.initial(graph, 0, n)
    iteration = 0
    while True:
        x, changed = program.apply(graph, x, 0, n)
        iteration += 1
        if program.done(iteration, changed):
            return x


def test_rstore_engine_matches_sequential_pagerank(cluster, graph):
    engine = RStoreGraphEngine(cluster, graph, tag="pr1")
    stats = cluster.run_app(engine.run(PageRankProgram(iterations=5)))
    expected = sequential(PageRankProgram(iterations=5), graph)
    np.testing.assert_allclose(stats.values, expected, rtol=1e-12)
    assert stats.iterations == 5
    assert stats.elapsed > 0


def test_rstore_engine_matches_sequential_bfs(cluster, graph):
    engine = RStoreGraphEngine(cluster, graph, tag="bfs1")
    stats = cluster.run_app(engine.run(BfsProgram(source=0)))
    expected = sequential(BfsProgram(source=0), graph)
    finite = np.isfinite(expected)
    assert (np.isfinite(stats.values) == finite).all()
    np.testing.assert_array_equal(stats.values[finite], expected[finite])


def test_baseline_engine_matches_sequential_pagerank(cluster, graph):
    engine = MessagePassingEngine(cluster, graph, tag="mp-pr")
    stats = cluster.run_app(engine.run(PageRankProgram(iterations=5)))
    expected = sequential(PageRankProgram(iterations=5), graph)
    np.testing.assert_allclose(stats.values, expected, rtol=1e-12)


def test_engines_agree_with_each_other_wcc(cluster):
    # symmetrized small graph
    src, dst = rmat_edges(scale=9, edge_factor=4, seed=4)
    g = Graph.from_edges(
        1 << 9,
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
    )
    r_engine = RStoreGraphEngine(cluster, g, tag="wcc-r")
    m_engine = MessagePassingEngine(cluster, g, tag="wcc-m")
    r_stats = cluster.run_app(r_engine.run(WccProgram()))
    m_stats = cluster.run_app(m_engine.run(WccProgram()))
    np.testing.assert_array_equal(r_stats.values, m_stats.values)


def test_rstore_engine_outperforms_baseline(cluster, graph):
    """The paper's headline graph claim, at reduced scale: RStore-backed
    processing beats message passing (full 2.6-4.2x margins are checked
    at benchmark scale in E5)."""
    r_engine = RStoreGraphEngine(cluster, graph, tag="perf-r")
    m_engine = MessagePassingEngine(cluster, graph, tag="perf-m")
    program = PageRankProgram(iterations=8)
    r_stats = cluster.run_app(r_engine.run(program))
    m_stats = cluster.run_app(m_engine.run(program))
    assert r_stats.elapsed < m_stats.elapsed


def test_rstore_engine_steady_state_is_rpc_free(cluster, graph):
    """After setup, supersteps coordinate purely on one-sided atomics
    (SenseBarrier + cumulative AtomicCounter): the master serves zero
    RPCs during the whole iteration phase."""
    engine = RStoreGraphEngine(cluster, graph, tag="rpc0")
    stats = cluster.run_app(engine.run(PageRankProgram(iterations=4)))
    assert stats.iterations == 4
    assert stats.steady_state_master_calls == 0


def test_engine_subset_of_hosts(cluster, graph):
    engine = RStoreGraphEngine(cluster, graph, worker_hosts=[1, 2], tag="sub")
    stats = cluster.run_app(engine.run(PageRankProgram(iterations=3)))
    expected = sequential(PageRankProgram(iterations=3), graph)
    np.testing.assert_allclose(stats.values, expected, rtol=1e-12)


def test_load_time_recorded(cluster, graph):
    engine = RStoreGraphEngine(cluster, graph, tag="load")
    cluster.run_app(engine.load())
    assert engine.load_elapsed > 0
