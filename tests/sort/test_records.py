"""Record generation and key-handling tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sort.rsort import key_prefix_u64, sort_order
from repro.workloads.kv import (
    KEY_BYTES,
    RECORD_BYTES,
    generate_records,
    is_sorted,
    keys_of,
)


def test_record_shape_and_determinism():
    a = generate_records(100, seed=3)
    b = generate_records(100, seed=3)
    assert a.shape == (100, RECORD_BYTES)
    assert (a == b).all()
    assert not (a == generate_records(100, seed=4)).all()


def test_negative_count_rejected():
    with pytest.raises(ValueError):
        generate_records(-1)


def test_is_sorted_detects_order():
    records = generate_records(500, seed=1)
    assert not is_sorted(records)  # random data: virtually never sorted
    ordered = records[sort_order(records)]
    assert is_sorted(ordered)


def test_is_sorted_trivial_cases():
    assert is_sorted(generate_records(0))
    assert is_sorted(generate_records(1))


def test_sort_order_is_full_key_lexicographic():
    records = generate_records(300, seed=7)
    ordered = records[sort_order(records)]
    keys = [bytes(k) for k in keys_of(ordered)]
    assert keys == sorted(keys)


def test_key_prefix_preserves_order():
    records = generate_records(1000, seed=5)
    prefixes = key_prefix_u64(records)
    by_prefix = np.argsort(prefixes, kind="stable")
    keys = keys_of(records)
    first8 = [bytes(keys[i][:8]) for i in by_prefix]
    assert first8 == sorted(first8)


@settings(max_examples=50, deadline=None)
@given(count=st.integers(min_value=0, max_value=200),
       seed=st.integers(min_value=0, max_value=1 << 16))
def test_sort_order_is_a_permutation(count, seed):
    records = generate_records(count, seed=seed)
    order = sort_order(records)
    assert sorted(order.tolist()) == list(range(count))
    assert is_sorted(records[order])
