"""Cost-model sensitivity: the sorters respond to their knobs sanely."""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB
from repro.sort import RSort, SortComputeModel, TeraSortBaseline, TeraSortModel
from repro.sort.rsort import SortComputeModel as SCM


def fresh_cluster():
    return build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=128 * MiB,
    )


def test_more_disks_speed_up_terasort():
    def run(disks):
        cluster = fresh_cluster()
        sorter = TeraSortBaseline(
            cluster, records_per_worker=1500, seed=2, scale=100,
            model=TeraSortModel(disks_per_node=disks), tag=f"d{disks}",
        )
        return cluster.run_app(sorter.run()).elapsed

    slow = run(2)
    fast = run(8)
    assert fast < 0.5 * slow


def test_slower_cpu_model_slows_rsort():
    def run(per_compare):
        cluster = fresh_cluster()
        sorter = RSort(
            cluster, records_per_worker=1500, seed=2, scale=100,
            model=SortComputeModel(per_compare_s=per_compare), tag="cpu",
        )
        return cluster.run_app(sorter.run()).elapsed

    base = run(2e-9)
    slow = run(40e-9)
    assert slow > 1.5 * base


def test_sort_cost_model_math():
    model = SCM(per_compare_s=10e-9, cores_used=1)
    assert model.sort_cost(0) == 0.0
    assert model.sort_cost(1) == 0.0
    # n log2 n at n=1024: 1024 * 10 * 10ns
    assert model.sort_cost(1024) == pytest.approx(1024 * 10 * 10e-9)
    halved = SCM(per_compare_s=10e-9, cores_used=2)
    assert halved.sort_cost(1024) == pytest.approx(model.sort_cost(1024) / 2)


def test_terasort_model_math():
    model = TeraSortModel(map_per_record_s=100e-9, cores_used=4)
    assert model.map_cost(4_000_000) == pytest.approx(0.1)
    assert model.sort_cost(1) == 0.0


def test_shuffle_slack_guards_skew():
    """A pathologically small shuffle region must fail loudly, not
    corrupt neighbouring memory."""
    from repro.core import BoundsError, RegionUnavailableError

    cluster = fresh_cluster()
    sorter = RSort(cluster, records_per_worker=1500, seed=2,
                   shuffle_slack=0.05, tag="tiny-slack")
    # client-side bounds checking catches it before any wire traffic;
    # had it slipped through, the remote MR check would NAK the write
    with pytest.raises((BoundsError, RegionUnavailableError)):
        cluster.run_app(sorter.run())


def test_rsort_scales_down_to_one_record_each():
    cluster = fresh_cluster()
    sorter = RSort(cluster, records_per_worker=1, seed=5, tag="tiny")
    stats = cluster.run_app(sorter.run())
    output = cluster.run_app(sorter.collect_output())
    assert len(output) == 3
    assert stats.elapsed > 0
