"""End-to-end sorting: RSort and the TeraSort baseline."""

import numpy as np
import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB
from repro.sort import RSort, TeraSortBaseline
from repro.workloads.kv import RECORD_BYTES, generate_records, is_sorted, keys_of


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=256 * KiB),
        server_capacity=512 * MiB,
    )


def expected_multiset(records_per_worker, workers, seed=0):
    parts = [
        generate_records(records_per_worker, seed=seed + rank)
        for rank in range(workers)
    ]
    return np.concatenate(parts)


class TestRSort:
    def test_produces_globally_sorted_output(self, cluster):
        sorter = RSort(cluster, records_per_worker=3000, seed=0, tag="s1")
        stats = cluster.run_app(sorter.run())
        output = cluster.run_app(sorter.collect_output())
        assert len(output) == sorter.total_records
        assert is_sorted(output)
        assert stats.elapsed > 0
        assert sum(stats.per_worker_output) == sorter.total_records

    def test_output_is_permutation_of_input(self, cluster):
        sorter = RSort(cluster, records_per_worker=2000, seed=3, tag="s2")
        cluster.run_app(sorter.run())
        output = cluster.run_app(sorter.collect_output())
        expected = expected_multiset(2000, sorter.num_workers, seed=3)
        got = np.sort(output.view([("r", np.uint8, RECORD_BYTES)]).ravel())
        want = np.sort(expected.view([("r", np.uint8, RECORD_BYTES)]).ravel())
        assert (got == want).all()

    def test_partition_boundaries_respect_order(self, cluster):
        sorter = RSort(cluster, records_per_worker=2000, seed=5, tag="s3")
        cluster.run_app(sorter.run())
        # each worker's output max key <= next worker's min key
        client = cluster.client(0)

        def read_part(rank):
            mapping = yield from client.map(f"s3.out.{rank}")
            blob = yield from mapping.read(0, mapping.size)
            return np.frombuffer(blob, dtype=np.uint8).reshape(
                -1, RECORD_BYTES
            )

        parts = [
            cluster.run_app(read_part(rank))
            for rank in range(sorter.num_workers)
        ]
        boundary_keys = []
        for part in parts:
            if len(part):
                keys = keys_of(part)
                boundary_keys.append((bytes(keys[0]), bytes(keys[-1])))
        for (_lo1, hi1), (lo2, _hi2) in zip(boundary_keys, boundary_keys[1:]):
            assert hi1 <= lo2

    def test_scaled_run_same_output_more_time(self, cluster):
        plain = RSort(cluster, records_per_worker=1500, seed=9, tag="s4")
        scaled = RSort(cluster, records_per_worker=1500, seed=9, tag="s5",
                       scale=50)
        t_plain = cluster.run_app(plain.run()).elapsed
        t_scaled = cluster.run_app(scaled.run()).elapsed
        out_plain = cluster.run_app(plain.collect_output())
        out_scaled = cluster.run_app(scaled.collect_output())
        assert (out_plain == out_scaled).all()
        assert t_scaled > 10 * t_plain

    def test_validation(self, cluster):
        with pytest.raises(ValueError):
            RSort(cluster, records_per_worker=0)
        with pytest.raises(ValueError):
            RSort(cluster, records_per_worker=10, scale=0)


class TestTeraSortBaseline:
    def test_produces_sorted_permutation(self, cluster):
        sorter = TeraSortBaseline(cluster, records_per_worker=2000, seed=0,
                                  tag="t1")
        stats = cluster.run_app(sorter.run())
        output = sorter.collect_output()
        assert len(output) == sorter.total_records
        assert is_sorted(output)
        expected = expected_multiset(2000, sorter.num_workers, seed=0)
        got = np.sort(output.view([("r", np.uint8, RECORD_BYTES)]).ravel())
        want = np.sort(expected.view([("r", np.uint8, RECORD_BYTES)]).ravel())
        assert (got == want).all()
        assert stats.elapsed > 0

    def test_rsort_beats_terasort(self, cluster):
        """The paper's headline sort claim (full 8x margin checked at
        benchmark scale in E7): in-memory RDMA sort beats the disk-bound
        map-reduce pipeline."""
        scale = 200
        rsort = RSort(cluster, records_per_worker=2000, seed=1, tag="race-r",
                      scale=scale)
        tera = TeraSortBaseline(cluster, records_per_worker=2000, seed=1,
                                tag="race-t", scale=scale)
        r_stats = cluster.run_app(rsort.run())
        t_stats = cluster.run_app(tera.run())
        assert t_stats.elapsed > 3 * r_stats.elapsed

    def test_agrees_with_rsort(self, cluster):
        rsort = RSort(cluster, records_per_worker=1000, seed=4, tag="eq-r")
        tera = TeraSortBaseline(cluster, records_per_worker=1000, seed=4,
                                tag="eq-t")
        cluster.run_app(rsort.run())
        cluster.run_app(tera.run())
        a = cluster.run_app(rsort.collect_output())
        b = tera.collect_output()
        assert (a == b).all()
