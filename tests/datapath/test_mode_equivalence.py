"""Mode equivalence: every data path converges to the same state.

One seeded workload — two clients, single writer per key, counter
bursts, a master crash/restart mid-run — executes once per path policy
on a fresh cluster.  The final observable state (every key's value,
read back both through the mode under test and through a plain
one-sided handle, plus the counter total) must hash identically across
``one_sided``, ``server_op``, ``remote_fetch`` and ``adaptive``, and
every run must finish RSan-clean: the server-op executor's emitted
happens-before edges are exactly the ones the one-sided protocol
produces.
"""

import hashlib
import random

from repro.cluster import build_cluster
from repro.coord.counter import AtomicCounter
from repro.core import RStoreConfig
from repro.kv.hashkv import RKVStore
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

from tests.harness.schedule import harness_seeds

MODES = ("one_sided", "server_op", "remote_fetch", "adaptive")
KEYS = 32
ROUNDS = 3


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        metafunc.parametrize("seed", harness_seeds(metafunc.config))


def _value(key: bytes, round_no: int, seed: int) -> bytes:
    raw = b"%s|r%d|s%d" % (key, round_no, seed)
    return hashlib.blake2b(raw, digest_size=24).digest()


def _run_mode(mode: str, seed: int) -> str:
    """One full workload under *mode*; returns the final-state digest."""
    faults = FaultInjector(seed=seed)
    faults.crash_master(at=0.05, restart_after=0.08)
    config = RStoreConfig(stripe_size=8 * KiB, sanitize=True)
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=32 * MiB,
        faults=faults,
    )
    writers = [cluster.client(1), cluster.client(2)]
    keys = [b"key-%02d" % i for i in range(KEYS)]
    digest = {}

    def owner_of(i):
        return writers[i % 2]

    def writer_app(who):
        rng = random.Random((seed << 2) ^ who)
        client = writers[who]
        store = yield from RKVStore.open(client, "eq", path_policy=mode)
        ctr = yield from AtomicCounter.open(client, "eq-total",
                                            path_policy=mode)
        for round_no in range(ROUNDS):
            for i, key in enumerate(keys):
                if i % 2 != who:
                    continue
                yield from store.put(key, _value(key, round_no, seed))
                yield cluster.sim.timeout(rng.uniform(0.0005, 0.002))
                if rng.random() < 0.4:
                    probe = keys[rng.randrange(KEYS)]
                    yield from store.get(probe)  # cross-client read
                if rng.random() < 0.25:
                    yield from ctr.add_burst([i + 1, round_no + 1])
                    yield cluster.sim.timeout(rng.uniform(0.0005, 0.002))
            batch = [keys[j] for j in
                     rng.sample(range(KEYS), 6)]
            yield from store.multi_get(batch)

    def app():
        setup_client = writers[0]
        yield from RKVStore.create(setup_client, "eq", slots=4 * KEYS,
                                   key_size=16, value_size=32,
                                   path_policy=mode)
        yield from AtomicCounter.create(setup_client, "eq-total",
                                        path_policy=mode)
        procs = [cluster.sim.process(writer_app(who), name=f"writer-{who}")
                 for who in range(2)]
        yield cluster.sim.all_of(procs)

        # -- final state, hashed -----------------------------------------
        hasher = hashlib.sha256()
        mode_store = yield from RKVStore.open(writers[0], "eq",
                                              path_policy=mode)
        raw_store = yield from RKVStore.open(writers[1], "eq",
                                             path_policy="one_sided")
        for key in sorted(keys):
            through_mode = yield from mode_store.get(key)
            one_sided = yield from raw_store.get(key)
            assert through_mode == one_sided, (
                f"{mode}/seed {seed}: {key!r} diverges between the mode "
                "path and the one-sided path"
            )
            assert one_sided == _value(key, ROUNDS - 1, seed)
            hasher.update(key)
            hasher.update(one_sided)
        ctr = yield from AtomicCounter.open(writers[0], "eq-total")
        total = yield from ctr.read()
        hasher.update(total.to_bytes(8, "little"))
        digest["hex"] = hasher.hexdigest()

    cluster.run_app(app())
    races = rsan_for(cluster.sim).races
    assert races == [], f"{mode}/seed {seed}: RSan races: {races}"
    return digest["hex"]


def test_all_modes_reach_the_identical_final_state(seed):
    digests = {mode: _run_mode(mode, seed) for mode in MODES}
    assert len(set(digests.values())) == 1, (
        f"seed {seed}: final states diverge across modes: {digests}"
    )
