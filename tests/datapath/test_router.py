"""Client-side data-path router: planning, dispatch, and recovery."""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.datapath import ops
from repro.datapath.router import _FetchBuffer
from repro.kv.hashkv import KvFullError, RKVStore
from repro.rdma.cm import ConnectError
from repro.rpc.channel import ChannelClosed
from repro.rpc.endpoint import RpcError
from repro.simnet.config import KiB, MiB


def fresh_cluster(**overrides):
    overrides.setdefault("stripe_size", 64 * KiB)
    config = RStoreConfig(**overrides)
    return build_cluster(
        num_machines=4, config=config, server_capacity=64 * MiB,
    )


def test_one_sided_policy_never_ships_a_server_op():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "classic", slots=64,
                                           key_size=16, value_size=64)
        yield from store.put(b"k", b"v")
        value = yield from store.get(b"k")
        assert value == b"v"
        assert client.datapath.server_ops == 0
        assert client.datapath.remote_fetches == 0

    cluster.run_app(app())


def test_server_op_policy_ships_and_skips_the_fetch_buffer():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "shipped", slots=64,
                                           key_size=16, value_size=64,
                                           path_policy="server_op")
        yield from store.put(b"k", b"v")
        value = yield from store.get(b"k")
        assert value == b"v"
        assert client.datapath.server_ops > 0
        assert client.datapath.remote_fetches == 0

    cluster.run_app(app())


def test_remote_fetch_deposits_and_reads_one_sided():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "rfp", slots=64,
                                           key_size=16, value_size=256,
                                           path_policy="remote_fetch")
        payload = b"y" * 256
        yield from store.put(b"k", payload)
        value = yield from store.get(b"k")
        assert value == payload
        router = client.datapath
        assert router.remote_fetches > 0
        assert router._m_bytes_fetched.value > len(payload)  # pickled

    cluster.run_app(app())


def test_miss_and_full_table_verdicts_match_the_one_sided_path():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def fill(store):
        stored = []
        i = 0
        while len(stored) < store.slots:
            key = b"f%d" % i
            i += 1
            try:
                yield from store.put(key, b"x")
            except KvFullError:
                continue
            stored.append(key)
        return stored

    def app():
        for policy in ("one_sided", "server_op"):
            store = yield from RKVStore.create(
                client, f"full-{policy}", slots=4, key_size=16,
                value_size=32, path_policy=policy,
            )
            yield from fill(store)
            # every slot occupied by another key: a get walks the whole
            # window to a definitive miss, a put raises KvFullError
            missing = yield from store.get(b"absent")
            assert missing is None, policy
            with pytest.raises(KvFullError):
                yield from store.put(b"absent", b"z")

    cluster.run_app(app())


def test_multi_get_returns_values_in_key_order_with_misses():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        for policy in ("server_op", "remote_fetch"):
            store = yield from RKVStore.create(
                client, f"batch-{policy}", slots=128, key_size=16,
                value_size=64, path_policy=policy,
            )
            for i in range(12):
                yield from store.put(b"m%d" % i, b"val%d" % i)
            keys = [b"m3", b"nope", b"m7", b"m0", b"also-nope"]
            values = yield from store.multi_get(keys)
            assert values == [b"val3", None, b"val7", b"val0", None], policy

    cluster.run_app(app())


def test_probe_runs_cover_the_window_in_order_and_split_by_host():
    # a table striped across servers: every probe chain must visit
    # probe_limit slots in probe order, grouped into maximal
    # consecutive same-host runs
    cluster = fresh_cluster(stripe_size=8 * KiB)
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "striped", slots=400,
                                           key_size=16, value_size=64)
        router = client.datapath
        desc = store.mapping.desc
        multi = 0
        for base in range(0, 400, 7):
            runs = router._probe_runs(desc, store, base)
            flat = [off for _host, slots in runs for off, _addr in slots]
            expected = [((base + p) % store.slots) * store.slot_size
                        for p in range(store.probe_limit)]
            assert flat == expected
            for (host_a, _), (host_b, _) in zip(runs, runs[1:]):
                assert host_a != host_b  # runs are maximal
            if len(runs) > 1:
                multi += 1
        assert multi > 0, "no probe chain ever straddled a stripe"

    cluster.run_app(app())


def test_chain_straddling_stripes_still_resolves_every_key():
    cluster = fresh_cluster(stripe_size=8 * KiB)
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "spill", slots=400,
                                           key_size=16, value_size=64,
                                           path_policy="server_op")
        keys = [b"s%d" % i for i in range(120)]
        for key in keys:
            yield from store.put(key, b"v-" + key)
        for key in keys:
            value = yield from store.get(key)
            assert value == b"v-" + key

    cluster.run_app(app())


def test_stale_epoch_refreshes_and_retries():
    cluster = fresh_cluster()
    client = cluster.client(1)
    holder = {}

    def setup():
        store = yield from RKVStore.create(client, "fenced", slots=64,
                                           key_size=16, value_size=64,
                                           path_policy="server_op")
        yield from store.put(b"k", b"v")
        holder["store"] = store

    cluster.run_app(setup())
    # the master moves an era forward; the servers' fences rise with it
    # (as they would after a fresh re-registration)
    cluster.crash_master()
    cluster.run_app(cluster.restart_master())
    cluster.run(until=cluster.sim.now + 0.5)
    for server in cluster.servers.values():
        server.nic.set_fence(0, 1)

    def after():
        store = holder["store"]
        fenced_before = client.retries_fenced
        value = yield from store.get(b"k")
        assert value == b"v"
        assert client.retries_fenced > fenced_before

    cluster.run_app(after())


def test_busy_slot_backs_off_and_wins_once_the_writer_leaves():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "contended", slots=64,
                                           key_size=16, value_size=64,
                                           path_policy="server_op")
        yield from store.put(b"k", b"v1")
        index = ops.hash64(b"k") % store.slots
        lock = store.slot_lock(index)
        version, _body = yield from lock.read()
        locked = yield from lock.try_lock(version)
        assert locked

        got = []

        def reader():
            value = yield from store.get(b"k")
            got.append(value)

        proc = cluster.sim.process(reader(), name="busy-reader")
        yield cluster.sim.timeout(0.001)  # let it hit the locked slot
        body = ops.encode_body(b"k", b"v2", store.key_size,
                               store.value_size)
        yield from lock.publish(version + 1, body)
        yield proc
        assert got == [b"v2"]
        assert client.datapath.busy_retries > 0

    cluster.run_app(app())


def test_fetch_buffer_serializes_concurrent_deposits():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "shared-buf", slots=64,
                                           key_size=16, value_size=128,
                                           path_policy="remote_fetch")
        yield from store.put(b"a", b"A" * 128)
        yield from store.put(b"b", b"B" * 128)
        results = {}

        def getter(key):
            value = yield from store.get(key)
            results[key] = value

        procs = [cluster.sim.process(getter(b"a"), name="get-a"),
                 cluster.sim.process(getter(b"b"), name="get-b"),
                 cluster.sim.process(getter(b"a"), name="get-a2")]
        yield cluster.sim.all_of(procs)
        assert results == {b"a": b"A" * 128, b"b": b"B" * 128}

    cluster.run_app(app())


def test_unplaceable_fetch_buffer_degrades_to_server_op():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "degrade", slots=64,
                                           key_size=16, value_size=64,
                                           path_policy="remote_fetch")
        yield from store.put(b"k", b"v")
        router = client.datapath
        # force every host's buffer to "placement hint missed": the op
        # must still complete as a plain server-op, nothing deposited
        for host_id in range(cluster.num_machines):
            mapping = store.mapping  # placeholder mapping, never read
            router._fetch_bufs[host_id] = _FetchBuffer(
                mapping, addr=0, capacity=0, usable=False,
            )
        value = yield from store.get(b"k")
        assert value == b"v"
        assert router.remote_fetches == 0
        assert router.server_ops > 0

    cluster.run_app(app())


def test_dead_server_exhausts_the_redial_budget():
    cluster = fresh_cluster(data_retry_limit=2)
    client = cluster.client(1)

    def app():
        from repro.coord.counter import AtomicCounter
        ctr = yield from AtomicCounter.create(client, "orphan",
                                              preferred_host=3,
                                              path_policy="server_op")
        values = yield from ctr.add_burst([1, 2])
        assert values == [1, 3]
        cluster.kill_server(3)
        # the cached channel dies first, then every redial finds the
        # host unreachable until the data retry budget drains
        with pytest.raises((RpcError, ChannelClosed, ConnectError)):
            yield from ctr.add_burst([4])

    cluster.run_app(app())


def test_multi_get_redrives_busy_keys_individually():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "busy-batch", slots=64,
                                           key_size=16, value_size=64,
                                           path_policy="server_op")
        yield from store.put(b"k", b"v1")
        yield from store.put(b"other", b"w")
        index = ops.hash64(b"k") % store.slots
        lock = store.slot_lock(index)
        version, _body = yield from lock.read()
        locked = yield from lock.try_lock(version)
        assert locked

        got = []

        def batch_reader():
            values = yield from store.multi_get([b"k", b"other"])
            got.append(values)

        proc = cluster.sim.process(batch_reader(), name="busy-batch")
        yield cluster.sim.timeout(0.001)  # let it hit the locked slot
        body = ops.encode_body(b"k", b"v2", store.key_size,
                               store.value_size)
        yield from lock.publish(version + 1, body)
        yield proc
        # the unlocked key resolved in the batch; the busy one was
        # re-driven alone and saw the published value
        assert got == [[b"v2", b"w"]]
        assert client.datapath.busy_retries > 0

    cluster.run_app(app())


def test_counter_burst_refreshes_a_stale_epoch():
    cluster = fresh_cluster()
    client = cluster.client(1)
    holder = {}

    def setup():
        from repro.coord.counter import AtomicCounter
        ctr = yield from AtomicCounter.create(client, "fenced-ctr",
                                              path_policy="server_op")
        values = yield from ctr.add_burst([1])
        assert values == [1]
        holder["ctr"] = ctr

    cluster.run_app(setup())
    cluster.crash_master()
    cluster.run_app(cluster.restart_master())
    cluster.run(until=cluster.sim.now + 0.5)
    for server in cluster.servers.values():
        server.nic.set_fence(0, 1)

    def after():
        fenced_before = client.retries_fenced
        values = yield from holder["ctr"].add_burst([2, 3])
        assert values == [3, 6]
        assert client.retries_fenced > fenced_before

    cluster.run_app(after())


def test_adaptive_policy_converges_and_stays_correct():
    cluster = fresh_cluster(datapath_probe_every=8)
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "adaptive", slots=256,
                                           key_size=16, value_size=64,
                                           path_policy="adaptive")
        for i in range(60):
            yield from store.put(b"a%d" % i, b"v%d" % i)
        for _round in range(3):
            for i in range(60):
                value = yield from store.get(b"a%d" % i)
                assert value == b"v%d" % i
        sel = store._selector
        # every substrate was sampled and a preference emerged
        assert set(sel._classes["get"].ewma) == {
            "one_sided", "server_op", "remote_fetch"}
        assert sel.mode_for("get") in ("one_sided", "server_op",
                                       "remote_fetch")
        # puts never leave their restricted substrate set
        assert set(sel._classes["put"].ewma) <= {"one_sided", "server_op"}

    cluster.run_app(app())
