"""Slot codec unit tests: both ends of the kv data path must agree."""

import pytest

from repro.datapath import ops


def test_pad_rounds_up_to_word():
    assert ops.pad(0) == 0
    assert ops.pad(1) == 8
    assert ops.pad(8) == 8
    assert ops.pad(9) == 16
    assert ops.pad(104) == 104


def test_slot_size_layout_arithmetic():
    # version + key_len + padded key + val_len + padded value
    assert ops.slot_size(16, 64) == 8 + 8 + 16 + 8 + 64
    assert ops.slot_size(10, 30) == 8 + 8 + 16 + 8 + 32
    assert ops.slot_size(1, 1) == 8 + 8 + 8 + 8 + 8


@pytest.mark.parametrize("key,value", [
    (b"k", b"v"),
    (b"a-16-byte-key!!!", b""),
    (b"k2", b"x" * 64),
    (b"\x00odd\xff", b"\x00" * 7),
])
def test_encode_parse_round_trip(key, value):
    body = ops.encode_body(key, value, key_size=16, value_size=64)
    assert len(body) == ops.slot_size(16, 64) - ops.WORD
    key_len, got_key, got_value = ops.parse_body(body, key_size=16)
    assert key_len == len(key)
    assert got_key == key
    assert got_value == value


def test_tombstone_encodes_the_sentinel_and_parses_empty():
    body = ops.encode_body(b"dead", b"", key_size=16, value_size=64,
                           tombstone=True)
    key_len, key, value = ops.parse_body(body, key_size=16)
    assert key_len == ops.TOMBSTONE
    assert key == b""
    assert value == b""


def test_free_slot_parses_as_zero_length():
    blank = bytes(ops.slot_size(16, 64) - ops.WORD)
    key_len, key, value = ops.parse_body(blank, key_size=16)
    assert key_len == 0
    assert key == b""
    assert value == b""


def test_hash64_is_deterministic_64_bit_and_spreads():
    a = ops.hash64(b"alpha")
    assert a == ops.hash64(b"alpha")
    assert 0 <= a < (1 << 64)
    draws = {ops.hash64(b"key-%d" % i) for i in range(1000)}
    assert len(draws) == 1000  # no collisions over a small set


def test_codec_matches_the_tables_inline_layout():
    # the kv store and the server-op executor must speak one layout;
    # RKVStore delegates here, so divergence would break mixed-mode
    # clusters mid-flight
    import repro.core  # noqa: F401 -- kv cannot be the first entry into core
    from repro.kv.hashkv import RKVStore, _hash64

    assert RKVStore._slot_size(32, 128) == ops.slot_size(32, 128)
    assert _hash64(b"same-stream") == ops.hash64(b"same-stream")
