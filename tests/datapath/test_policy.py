"""PathPolicy vocabulary and the adaptive selector's control law."""

import pytest

from repro.datapath.policy import AdaptiveSelector, PathPolicy


def test_policy_vocabulary():
    assert PathPolicy.MODES == ("one_sided", "server_op", "remote_fetch")
    assert PathPolicy.POLICIES == PathPolicy.MODES + ("adaptive",)
    for policy in PathPolicy.POLICIES:
        assert PathPolicy.validate(policy) == policy
    with pytest.raises(ValueError):
        PathPolicy.validate("two_sided")
    with pytest.raises(ValueError):
        PathPolicy.validate(None)


def test_selector_rejects_bad_parameters():
    with pytest.raises(ValueError):
        AdaptiveSelector(probe_every=1)
    with pytest.raises(ValueError):
        AdaptiveSelector(hysteresis=1.0)
    with pytest.raises(ValueError):
        AdaptiveSelector(patience=0)
    with pytest.raises(ValueError):
        AdaptiveSelector(alpha=0.0)
    with pytest.raises(ValueError):
        AdaptiveSelector(alpha=1.5)


def test_cold_start_samples_every_mode_once():
    sel = AdaptiveSelector()
    seen = []
    for _ in range(len(PathPolicy.MODES)):
        mode = sel.choose("get")
        seen.append(mode)
        sel.observe("get", mode, 10e-6)
    assert sorted(seen) == sorted(PathPolicy.MODES)
    assert sel.mode_for("get") is not None


def _warm(sel, op_class, latencies):
    """Sample each mode once with the given per-mode latency."""
    for _ in PathPolicy.MODES:
        mode = sel.choose(op_class)
        sel.observe(op_class, mode, latencies[mode])


def test_selector_settles_on_the_fastest_mode():
    sel = AdaptiveSelector()
    _warm(sel, "get", {"one_sided": 30e-6, "server_op": 8e-6,
                       "remote_fetch": 50e-6})
    assert sel.mode_for("get") == "server_op"
    assert sel.choose("get") == "server_op"


def test_hysteresis_ignores_marginal_improvements():
    sel = AdaptiveSelector(hysteresis=0.2, patience=1)
    _warm(sel, "get", {"one_sided": 10e-6, "server_op": 9.5e-6,
                       "remote_fetch": 40e-6})
    # server_op is best but only ~5% better: inside the 20% band
    current = sel.mode_for("get")
    for _ in range(20):
        sel.observe("get", "server_op", 9.5e-6)
    assert sel.mode_for("get") == current
    assert sel.switches == 0


def test_patience_gates_a_genuine_regime_shift():
    sel = AdaptiveSelector(hysteresis=0.2, patience=3, alpha=1.0)
    _warm(sel, "get", {"one_sided": 10e-6, "server_op": 12e-6,
                       "remote_fetch": 40e-6})
    assert sel.mode_for("get") == "one_sided"
    # the regime flips: server_op now 5x faster.  alpha=1 makes the
    # EWMA jump immediately, so only patience delays the switch.
    for i in range(3):
        sel.observe("get", "server_op", 2e-6)
        if i < 2:
            assert sel.mode_for("get") == "one_sided", f"switched at {i}"
    assert sel.mode_for("get") == "server_op"
    assert sel.switches == 1


def test_interleaved_noise_resets_the_patience_streak():
    sel = AdaptiveSelector(hysteresis=0.2, patience=3, alpha=1.0)
    _warm(sel, "get", {"one_sided": 10e-6, "server_op": 12e-6,
                       "remote_fetch": 40e-6})
    for _ in range(5):
        sel.observe("get", "server_op", 2e-6)   # streak builds...
        sel.observe("get", "server_op", 11e-6)  # ...and collapses
    assert sel.mode_for("get") == "one_sided"
    assert sel.switches == 0


def test_probing_resamples_non_current_modes_round_robin():
    sel = AdaptiveSelector(probe_every=4)
    _warm(sel, "get", {"one_sided": 5e-6, "server_op": 20e-6,
                       "remote_fetch": 30e-6})
    probes = []
    for _ in range(16):
        mode = sel.choose("get")
        if mode != "one_sided":
            probes.append(mode)
        sel.observe("get", mode, {"one_sided": 5e-6, "server_op": 20e-6,
                                  "remote_fetch": 30e-6}[mode])
    # every probe_every-th op samples a non-current mode, alternating
    assert probes, "the selector never probed"
    assert set(probes) == {"server_op", "remote_fetch"}


def test_op_classes_are_independent():
    sel = AdaptiveSelector()
    _warm(sel, "get", {"one_sided": 5e-6, "server_op": 50e-6,
                       "remote_fetch": 60e-6})
    _warm(sel, "burst", {"one_sided": 80e-6, "server_op": 6e-6,
                         "remote_fetch": 70e-6})
    assert sel.mode_for("get") == "one_sided"
    assert sel.mode_for("burst") == "server_op"


def test_restricted_mode_set_never_leaves_the_subset():
    # puts and bursts only run one_sided/server_op; the chooser must
    # respect a per-call restriction even while probing
    sel = AdaptiveSelector(probe_every=2)
    allowed = ("one_sided", "server_op")
    for i in range(40):
        mode = sel.choose("put", modes=allowed)
        assert mode in allowed
        sel.observe("put", mode, 10e-6 if mode == "one_sided" else 8e-6)


def test_cold_observations_are_discarded():
    # an op that paid one-time setup (channel dial, fetch-buffer
    # alloc) must not poison the mode's EWMA — the selector drops the
    # sample and keeps the mode in cold-start until a warm sample lands
    sel = AdaptiveSelector()
    assert sel.choose("get") == "one_sided"
    sel.observe("get", "one_sided", 500e-6, cold=True)
    st = sel._classes["get"]
    assert "one_sided" not in st.ewma
    assert sel.choose("get") == "one_sided"  # still cold: re-sampled
    sel.observe("get", "one_sided", 10e-6)
    assert st.ewma["one_sided"] == pytest.approx(10e-6)


def test_early_samples_average_instead_of_anchoring():
    # bias-corrected smoothing: the first samples fold in with 1/n
    # weight, so one unlucky deep-chain op cannot dominate the estimate
    sel = AdaptiveSelector(alpha=0.3, modes=("one_sided",),
                           probe_every=2)
    for latency in (90e-6, 10e-6, 20e-6):
        sel.observe("get", "one_sided", latency)
    st = sel._classes["get"]
    assert st.ewma["one_sided"] == pytest.approx(40e-6)  # the true mean
    # from the fourth sample on the configured alpha takes over
    sel.observe("get", "one_sided", 40e-6)
    assert st.ewma["one_sided"] == pytest.approx(40e-6)


def test_ewma_smoothing_follows_the_alpha():
    sel = AdaptiveSelector(alpha=0.5, modes=("one_sided",),
                           probe_every=2)
    sel.observe("get", "one_sided", 10e-6)
    sel.observe("get", "one_sided", 20e-6)
    st = sel._classes["get"]
    assert st.ewma["one_sided"] == pytest.approx(15e-6)
