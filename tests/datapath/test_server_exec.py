"""Server-op executor semantics, driven against a live cluster.

These tests talk to the executor both end-to-end (through the client
router) and directly (hand-built ``dp_exec`` requests against the
owning server) where the interesting case — a fenced epoch, a locked
slot, an overflowing deposit — is easier to pin down in isolation.
"""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.errors import RStoreError, StaleEpochError
from repro.datapath import ops
from repro.kv.hashkv import RKVStore
from repro.simnet.config import KiB, MiB


def fresh_cluster(**overrides):
    config = RStoreConfig(stripe_size=64 * KiB, **overrides)
    return build_cluster(
        num_machines=4, config=config, server_capacity=64 * MiB,
    )


def _owner(cluster, client, store, key):
    """The (server, request-skeleton) pair for *key*'s first probe run."""
    router = client.datapath
    runs = router._probe_runs(store.mapping.desc, store,
                              ops.hash64(key))
    host_id, slots = runs[0]
    request = router._request(
        "kv_get", store.mapping, key=key, slots=slots,
        key_size=store.key_size, value_size=store.value_size,
    )
    return cluster.server(host_id), request


def test_fenced_request_raises_before_touching_memory():
    # the executor applies the same epoch test the NIC's WR path does:
    # a fence (installed when a server re-registers fresh, its slice
    # wiped) must bounce server-ops stamped with the older era before
    # they read recycled bytes
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "fence", slots=64,
                                           key_size=16, value_size=64)
        yield from store.put(b"k", b"v")
        server, request = _owner(cluster, client, store, b"k")
        server.nic.set_fence(request["shard"], request["epoch"] + 1)
        assert server.nic.fenced(request["shard"], request["epoch"])
        with pytest.raises(StaleEpochError):
            yield from server._dp.execute(request)
        # a request stamped with the fenced-in era passes
        current = dict(request, epoch=request["epoch"] + 1)
        reply = yield from server._dp.execute(current)
        assert reply == ("hit", b"v")

    cluster.run_app(app())


def test_unknown_op_is_rejected():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "huh", slots=8,
                                           key_size=16, value_size=64)
        server, request = _owner(cluster, client, store, b"k")
        with pytest.raises(RStoreError):
            yield from server._dp.execute(dict(request, op="kv_scan"))

    cluster.run_app(app())


def test_locked_slot_reports_busy_without_waiting():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "locked", slots=64,
                                           key_size=16, value_size=64)
        yield from store.put(b"k", b"v")
        index = ops.hash64(b"k") % store.slots
        lock = store.slot_lock(index)
        version, body = yield from lock.read()
        locked = yield from lock.try_lock(version)
        assert locked
        server, request = _owner(cluster, client, store, b"k")
        reply = yield from server._dp.execute(request)
        assert reply == ("busy",)
        # release, and the same request now validates and hits
        yield from lock.publish(version + 1, body)
        reply = yield from server._dp.execute(request)
        assert reply == ("hit", b"v")

    cluster.run_app(app())


def test_probe_walks_tombstones_and_free_slots():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "walk", slots=64,
                                           key_size=16, value_size=64)
        yield from store.put(b"gone", b"soon")
        deleted = yield from store.delete(b"gone")
        assert deleted
        server, request = _owner(cluster, client, store, b"gone")
        # the chain must step over the tombstone and stop at the free
        # slot behind it — a definitive miss, not busy or continue
        reply = yield from server._dp.execute(request)
        assert reply == ("free",)

    cluster.run_app(app())


def test_deposit_overflow_names_the_knob():
    cluster = fresh_cluster(datapath_fetch_bytes=64)
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "big", slots=64,
                                           key_size=16, value_size=512,
                                           path_policy="remote_fetch")
        yield from store.put(b"k", b"x" * 512)
        with pytest.raises(RStoreError, match="datapath_fetch_bytes"):
            yield from store.get(b"k")

    cluster.run_app(app())


def test_small_results_deposit_fine_in_a_small_buffer():
    cluster = fresh_cluster(datapath_fetch_bytes=256)
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "small", slots=64,
                                           key_size=16, value_size=32,
                                           path_policy="remote_fetch")
        yield from store.put(b"k", b"tiny")
        value = yield from store.get(b"k")
        assert value == b"tiny"

    cluster.run_app(app())


def test_counter_burst_applies_in_order_and_wraps():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        from repro.coord.counter import AtomicCounter
        ctr = yield from AtomicCounter.create(client, "wrap",
                                              path_policy="server_op")
        router = client.datapath
        near_top = (1 << 64) - 3
        values = yield from router.counter_burst(ctr, [near_top, 5])
        assert values == [near_top, 2]  # wrapped at 2^64 like the FAA unit
        # and the word is durably the wrapped value for one-sided readers
        value = yield from ctr.read()
        assert value == 2

    cluster.run_app(app())


def test_busy_status_is_never_deposited():
    # a deposited "busy" would cost the client a pickup READ just to
    # learn it must retry; statuses return inline even in fetch mode
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        store = yield from RKVStore.create(client, "nodep", slots=64,
                                           key_size=16, value_size=64)
        yield from store.put(b"k", b"v")
        index = ops.hash64(b"k") % store.slots
        lock = store.slot_lock(index)
        version, _body = yield from lock.read()
        locked = yield from lock.try_lock(version)
        assert locked
        server, request = _owner(cluster, client, store, b"k")
        request["deposit"] = (0, 4096)  # a deposit target is offered...
        reply = yield from server._dp.execute(request)
        assert reply == ("busy",)      # ...but the status returns inline
        yield from lock.abort(version)

    cluster.run_app(app())
