"""Every example script runs to completion and prints what it promises.

These are subprocess smoke tests — the examples are the first thing a
new user executes, so they must never rot.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "hello, distributed DRAM!" in out
    assert "alloc" in out and "read" in out


def test_pagerank_example():
    out = run_example("pagerank_social_graph.py")
    assert "speedup" in out
    assert "top-5 vertices" in out


def test_sort_example():
    out = run_example("distributed_sort.py")
    assert "RSort" in out and "speedup" in out


def test_producer_consumer_example():
    out = run_example("producer_consumer_notify.py")
    assert "stream complete" in out


def test_kv_cache_example():
    out = run_example("distributed_kv_cache.py")
    assert "kops/s" in out
    assert "server CPUs idle: True" in out


def test_failover_example():
    out = run_example("failover_with_replication.py")
    assert "lost, as expected" in out
    assert "intact" in out


def test_bank_transfer_example():
    out = run_example("bank_transfer.py")
    assert "while the master was DOWN" in out
    assert "balance conserved" in out
    assert "all ridden out" in out


def test_master_failover_example():
    out = run_example("master_failover.py")
    assert "alloc failed fast" in out
    assert "replayed from the WAL" in out
    assert "no committed region lost" in out


def test_multi_tenant_example():
    out = run_example("multi_tenant.py")
    assert "denied at allocation" in out
    assert "unaffected by acme's quota" in out
    assert "re-map cost 0 master RPCs" in out
    assert "ledger : shard 1" in out
