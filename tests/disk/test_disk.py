"""Unit tests for the spindle model."""

import pytest

from repro.disk.disk import Disk, DiskModel
from repro.simnet.kernel import Simulator


def run(sim, gen):
    return sim.run(until=sim.process(gen))


def test_sequential_read_time_is_bandwidth_bound():
    sim = Simulator()
    disk = Disk(sim, DiskModel(read_bandwidth_Bps=100e6))

    def scenario():
        yield from disk.read(100_000_000)

    run(sim, scenario())
    assert sim.now == pytest.approx(1.0)


def test_random_access_pays_seek():
    sim = Simulator()
    disk = Disk(sim, DiskModel(read_bandwidth_Bps=100e6, seek_s=0.01))

    def scenario():
        yield from disk.read(1_000_000, sequential=False)

    run(sim, scenario())
    assert sim.now == pytest.approx(0.02)
    assert disk.seeks == 1


def test_concurrent_accesses_serialize_on_spindle():
    sim = Simulator()
    disk = Disk(sim, DiskModel(write_bandwidth_Bps=100e6))
    finished = []

    def writer():
        yield from disk.write(50_000_000)
        finished.append(sim.now)

    sim.process(writer())
    sim.process(writer())
    sim.run()
    assert finished == [pytest.approx(0.5), pytest.approx(1.0)]


def test_accounting():
    sim = Simulator()
    disk = Disk(sim)

    def scenario():
        yield from disk.read(1000)
        yield from disk.write(2000)

    run(sim, scenario())
    assert disk.bytes_read == 1000
    assert disk.bytes_written == 2000


def test_negative_size_rejected():
    sim = Simulator()
    disk = Disk(sim)

    def scenario():
        yield from disk.read(-1)

    with pytest.raises(ValueError):
        run(sim, scenario())
