"""Unit tests for channels, hosts and the single-switch fabric."""

import pytest

from repro.simnet.config import Gbps, KiB, MiB, NetworkConfig
from repro.simnet.kernel import Simulator
from repro.simnet.link import Channel
from repro.simnet.topology import Network


def make_net(num_hosts=2, **overrides):
    sim = Simulator()
    cfg = NetworkConfig(**overrides)
    return sim, Network(sim, num_hosts, cfg)


def test_channel_serialization_time():
    sim = Simulator()
    ch = Channel(sim, rate_bps=8e9)  # 1 GB/s
    assert ch.serialization_time(1_000_000) == pytest.approx(1e-3)


def test_channel_back_to_back_frames_queue():
    sim = Simulator()
    ch = Channel(sim, rate_bps=8e9)
    f1 = ch.reserve(1_000_000, earliest=0.0)
    f2 = ch.reserve(1_000_000, earliest=0.0)
    assert f1 == pytest.approx(1e-3)
    assert f2 == pytest.approx(2e-3)
    assert ch.bytes_sent == 2_000_000


def test_channel_respects_earliest_arrival():
    sim = Simulator()
    ch = Channel(sim, rate_bps=8e9)
    finish = ch.reserve(1_000_000, earliest=5.0)
    assert finish == pytest.approx(5.001)


def test_channel_rejects_bad_rate_and_size():
    sim = Simulator()
    with pytest.raises(ValueError):
        Channel(sim, rate_bps=0)
    ch = Channel(sim, rate_bps=1e9)
    with pytest.raises(ValueError):
        ch.reserve(-1, earliest=0.0)


def test_network_point_to_point_delivery_time():
    sim, net = make_net(link_rate_bps=Gbps(8), link_prop_delay_s=1e-6,
                        switch_latency_s=1e-6)
    # 1 MB at 1 GB/s: two serializations (egress + ingress) pipeline but a
    # single frame pays both, plus 3 us of propagation/switch.
    done = net.transmit_frame(net.host(0), net.host(1), 1_000_000)
    sim.run()
    expected = 1e-3 + 3e-6 + 1e-3
    assert sim.now == pytest.approx(expected)
    assert done.processed


def test_network_stream_throughput_is_link_limited():
    sim, net = make_net(link_rate_bps=Gbps(8), link_prop_delay_s=0.0,
                        switch_latency_s=0.0)
    # 100 frames of 1 MB: steady-state throughput must be ~1 GB/s, i.e.
    # finish at ~100 ms + one extra ingress serialization.
    for _ in range(100):
        net.transmit_frame(net.host(0), net.host(1), 1_000_000)
    sim.run()
    assert sim.now == pytest.approx(0.101, rel=1e-6)


def test_network_incast_serializes_on_receiver_ingress():
    sim, net = make_net(num_hosts=3, link_rate_bps=Gbps(8),
                        link_prop_delay_s=0.0, switch_latency_s=0.0)
    # Two senders each push 10 MB to host 2 simultaneously: receiver link
    # carries 20 MB at 1 GB/s -> ~20 ms total, not ~10 ms.
    for _ in range(10):
        net.transmit_frame(net.host(0), net.host(2), 1_000_000)
        net.transmit_frame(net.host(1), net.host(2), 1_000_000)
    sim.run()
    # 20 ms of ingress serialization plus one frame of pipeline fill.
    assert 0.020 <= sim.now <= 0.0215


def test_network_disjoint_pairs_do_not_contend():
    sim, net = make_net(num_hosts=4, link_rate_bps=Gbps(8),
                        link_prop_delay_s=0.0, switch_latency_s=0.0)
    for _ in range(10):
        net.transmit_frame(net.host(0), net.host(1), 1_000_000)
        net.transmit_frame(net.host(2), net.host(3), 1_000_000)
    sim.run()
    # Both flows complete in parallel: ~10 ms + pipeline tail, not 20 ms.
    assert sim.now < 0.0115


def test_network_local_delivery_bypasses_fabric():
    sim, net = make_net()
    net.transmit_frame(net.host(0), net.host(0), 1_000_000)
    sim.run()
    assert net.host(0).egress.bytes_sent == 0
    # local copies run at memory bandwidth, far faster than the link
    assert sim.now < 1e-3


def test_network_accounting():
    sim, net = make_net()
    net.transmit_frame(net.host(0), net.host(1), 64 * KiB)
    net.transmit_frame(net.host(1), net.host(0), 64 * KiB)
    sim.run()
    assert net.bytes_carried == 128 * KiB
    assert net.frames_carried == 2


def test_host_cpu_and_channels_exist():
    _sim, net = make_net(cores_per_host=4)
    host = net.host(0)
    assert host.cpu.cores == 4
    assert host.egress.rate_bps == host.ingress.rate_bps


def test_network_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, 0)


def test_delivery_callback_runs():
    sim, net = make_net()
    hits = []
    net.transmit_frame(net.host(0), net.host(1), 1024,
                       on_delivered=lambda: hits.append(sim.now))
    sim.run()
    assert len(hits) == 1 and hits[0] > 0


def test_default_config_matches_fdr():
    cfg = NetworkConfig()
    assert cfg.link_rate_bps == pytest.approx(Gbps(54.3))
    assert cfg.frame_size == 64 * KiB
