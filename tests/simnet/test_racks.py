"""Multi-rack topology with oversubscribed uplinks."""

import pytest

from repro.simnet.config import Gbps, NetworkConfig
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Network


def make_net(num_hosts, **overrides):
    sim = Simulator()
    return sim, Network(sim, num_hosts, NetworkConfig(**overrides))


def test_single_rack_is_default():
    _sim, net = make_net(4)
    assert len(net.racks) == 1
    assert net.rack_of(net.host(0)) is net.rack_of(net.host(3))


def test_hosts_assigned_round_robin():
    _sim, net = make_net(6, racks=2)
    assert net.rack_of(net.host(0)) is net.racks[0]
    assert net.rack_of(net.host(1)) is net.racks[1]
    assert net.rack_of(net.host(2)) is net.racks[0]


def test_config_validation():
    with pytest.raises(ValueError):
        NetworkConfig(racks=0)
    with pytest.raises(ValueError):
        NetworkConfig(oversubscription=0.5)


def test_cross_rack_pays_extra_latency():
    sim1, net1 = make_net(4, racks=2, link_prop_delay_s=1e-6,
                          switch_latency_s=1e-6)
    net1.transmit_frame(net1.host(0), net1.host(2), 1000)  # same rack
    sim1.run()
    same_rack = sim1.now

    sim2, net2 = make_net(4, racks=2, link_prop_delay_s=1e-6,
                          switch_latency_s=1e-6)
    net2.transmit_frame(net2.host(0), net2.host(1), 1000)  # cross rack
    sim2.run()
    cross_rack = sim2.now
    # two extra propagation hops + one switch, plus store-and-forward
    # serialization on the uplink and downlink channels
    uplink_rate = net2.racks[0].up.rate_bps
    extra_ser = 2 * 1000 * 8 / uplink_rate
    assert cross_rack == pytest.approx(same_rack + 3e-6 + extra_ser)


def test_full_bisection_uplink_does_not_throttle():
    # 4 hosts, 2 racks, 1:1 oversubscription: uplink carries 2x link rate
    sim, net = make_net(4, racks=2, oversubscription=1.0,
                        link_rate_bps=Gbps(8), link_prop_delay_s=0.0,
                        switch_latency_s=0.0)
    # hosts 0,2 in rack 0 each stream to their cross-rack peer
    for _ in range(10):
        net.transmit_message(net.host(0), net.host(1), 1_000_000)
        net.transmit_message(net.host(2), net.host(3), 1_000_000)
    sim.run()
    # both flows run at link rate: ~10 ms + pipeline tail
    assert sim.now < 0.013


def test_oversubscribed_uplink_throttles_cross_rack():
    sim, net = make_net(4, racks=2, oversubscription=2.0,
                        link_rate_bps=Gbps(8), link_prop_delay_s=0.0,
                        switch_latency_s=0.0)
    for _ in range(10):
        net.transmit_message(net.host(0), net.host(1), 1_000_000)
        net.transmit_message(net.host(2), net.host(3), 1_000_000)
    sim.run()
    # 2:1 oversubscription: the shared uplink halves aggregate rate
    assert 0.0195 < sim.now < 0.024


def test_same_rack_traffic_unaffected_by_oversubscription():
    sim, net = make_net(4, racks=2, oversubscription=4.0,
                        link_rate_bps=Gbps(8), link_prop_delay_s=0.0,
                        switch_latency_s=0.0)
    for _ in range(10):
        net.transmit_message(net.host(0), net.host(2), 1_000_000)
    sim.run()
    assert sim.now < 0.013
