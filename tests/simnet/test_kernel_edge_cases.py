"""Kernel corner cases beyond the basics."""

import pytest

from repro.simnet.kernel import (
    AllOf,
    AnyOf,
    Interrupt,
    SimulationError,
    Simulator,
)
from repro.simnet.resources import Store


def test_all_of_fails_fast_on_first_failure():
    sim = Simulator()
    caught = []

    def failer():
        yield sim.timeout(1.0)
        raise RuntimeError("early failure")

    def proc():
        slow = sim.timeout(10.0, value="never-needed")
        bad = sim.process(failer())
        try:
            yield sim.all_of([bad, slow])
        except RuntimeError as exc:
            caught.append((str(exc), sim.now))

    sim.process(proc())
    sim.run()
    assert caught == [("early failure", 1.0)]


def test_any_of_with_failure_first_propagates():
    sim = Simulator()

    def failer():
        yield sim.timeout(0.5)
        raise KeyError("lost")

    def proc():
        ok = sim.timeout(2.0)
        bad = sim.process(failer())
        with pytest.raises(KeyError):
            yield sim.any_of([bad, ok])
        return sim.now

    assert sim.run(until=sim.process(proc())) == 0.5


def test_nested_conditions():
    sim = Simulator()

    def proc():
        inner = sim.all_of([sim.timeout(1.0), sim.timeout(2.0)])
        outer = yield sim.any_of([inner, sim.timeout(10.0)])
        return sim.now

    assert sim.run(until=sim.process(proc())) == 2.0


def test_interrupting_a_process_waiting_on_a_store():
    sim = Simulator()
    store = Store(sim)
    outcome = []

    def consumer():
        try:
            yield store.get()
        except Interrupt as intr:
            outcome.append(intr.cause)

    def canceller(proc):
        yield sim.timeout(1.0)
        proc.interrupt("shutdown")

    proc = sim.process(consumer())
    sim.process(canceller(proc))
    sim.run()
    assert outcome == ["shutdown"]


def test_interrupted_process_can_keep_running():
    sim = Simulator()
    trace = []

    def resilient():
        try:
            yield sim.timeout(100.0)
        except Interrupt:
            trace.append(("interrupted", sim.now))
        yield sim.timeout(1.0)
        trace.append(("done", sim.now))

    def attacker(proc):
        yield sim.timeout(2.0)
        proc.interrupt()

    proc = sim.process(resilient())
    sim.process(attacker(proc))
    sim.run()
    assert trace == [("interrupted", 2.0), ("done", 3.0)]


def test_process_value_available_after_completion():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)
        return {"answer": 42}

    proc = sim.process(quick())
    sim.run()
    assert proc.triggered and proc.ok
    assert proc.value == {"answer": 42}


def test_zero_delay_timeouts_preserve_order():
    sim = Simulator()
    order = []

    def maker(tag):
        def proc():
            yield sim.timeout(0)
            order.append(tag)
        return proc

    for tag in range(10):
        sim.process(maker(tag)())
    sim.run()
    assert order == list(range(10))


def test_event_value_before_trigger_raises():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_fail_requires_an_exception():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_simulation_time_never_goes_backwards():
    sim = Simulator()
    stamps = []

    def proc(delay):
        yield sim.timeout(delay)
        stamps.append(sim.now)

    import random

    rng = random.Random(3)
    for _ in range(100):
        sim.process(proc(rng.uniform(0, 10)))
    sim.run()
    assert stamps == sorted(stamps)
