"""Unit tests for the discrete-event kernel."""

import pytest

from repro.simnet.kernel import (
    Interrupt,
    SimulationError,
    Simulator,
)


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_timeout_advances_clock():
    sim = Simulator()
    sim.timeout(1.5)
    sim.run()
    assert sim.now == 1.5


def test_negative_timeout_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_advances_clock_even_without_events():
    sim = Simulator()
    sim.run(until=3.0)
    assert sim.now == 3.0


def test_run_until_time_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.timeout(5.0).add_callback(lambda e: fired.append(sim.now))
    sim.run(until=2.0)
    assert sim.now == 2.0
    assert fired == []
    sim.run()
    assert fired == [5.0]


def test_process_sequences_timeouts():
    sim = Simulator()
    trace = []

    def proc():
        trace.append(sim.now)
        yield sim.timeout(1.0)
        trace.append(sim.now)
        yield sim.timeout(2.0)
        trace.append(sim.now)

    sim.process(proc())
    sim.run()
    assert trace == [0.0, 1.0, 3.0]


def test_process_return_value_via_run_until():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return 42

    result = sim.run(until=sim.process(proc()))
    assert result == 42


def test_yield_from_subprocess_propagates_value():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "child-result"

    def parent():
        value = yield from child()
        return value + "!"

    assert sim.run(until=sim.process(parent())) == "child-result!"


def test_waiting_on_spawned_process():
    sim = Simulator()

    def child():
        yield sim.timeout(2.0)
        return 7

    def parent():
        proc = sim.process(child())
        value = yield proc
        return value * 2

    assert sim.run(until=sim.process(parent())) == 14


def test_waiting_on_already_finished_process():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        return "done"

    def parent():
        proc = sim.process(child())
        yield sim.timeout(5.0)
        # child finished long ago; waiting must still return its value
        value = yield proc
        return value

    assert sim.run(until=sim.process(parent())) == "done"
    assert sim.now == 5.0


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event()
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(3.0)
        gate.succeed("open")

    sim.process(waiter())
    sim.process(opener())
    sim.run()
    assert log == [(3.0, "open")]


def test_event_cannot_trigger_twice():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_failed_event_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()
    caught = []

    def waiter():
        try:
            yield gate
        except RuntimeError as exc:
            caught.append(str(exc))

    sim.process(waiter())
    gate.fail(RuntimeError("boom"))
    sim.run()
    assert caught == ["boom"]


def test_uncaught_process_exception_surfaces_from_run():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise ValueError("exploded")

    sim.process(bad())
    with pytest.raises(ValueError, match="exploded"):
        sim.run()


def test_run_until_process_reraises_its_failure():
    sim = Simulator()

    def bad():
        yield sim.timeout(1.0)
        raise KeyError("gone")

    proc = sim.process(bad())
    with pytest.raises(KeyError):
        sim.run(until=proc)


def test_same_time_events_run_fifo():
    sim = Simulator()
    order = []

    def make(tag):
        def proc():
            yield sim.timeout(1.0)
            order.append(tag)

        return proc

    for tag in "abcde":
        sim.process(make(tag)())
    sim.run()
    assert order == list("abcde")


def test_all_of_waits_for_every_event():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(1.0, value="a")
        t2 = sim.timeout(3.0, value="b")
        values = yield sim.all_of([t1, t2])
        return (sim.now, values)

    when, values = sim.run(until=sim.process(proc()))
    assert when == 3.0
    assert values == ["a", "b"]


def test_any_of_returns_at_first_event():
    sim = Simulator()

    def proc():
        t1 = sim.timeout(5.0, value="slow")
        t2 = sim.timeout(1.0, value="fast")
        values = yield sim.any_of([t1, t2])
        return (sim.now, values)

    when, values = sim.run(until=sim.process(proc()))
    assert when == 1.0
    assert values == ["fast"]


def test_all_of_empty_list_triggers_immediately():
    sim = Simulator()

    def proc():
        values = yield sim.all_of([])
        return values

    assert sim.run(until=sim.process(proc())) == []


def test_interrupt_delivers_cause():
    sim = Simulator()
    seen = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as intr:
            seen.append((sim.now, intr.cause))

    def attacker(proc):
        yield sim.timeout(2.0)
        proc.interrupt("stop it")

    proc = sim.process(victim())
    sim.process(attacker(proc))
    sim.run()
    assert seen == [(2.0, "stop it")]


def test_interrupt_after_completion_is_an_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    proc = sim.process(quick())
    sim.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_yielding_non_event_is_an_error():
    sim = Simulator()

    def bad():
        yield 42

    sim.process(bad())
    with pytest.raises(SimulationError, match="yield"):
        sim.run()


def test_deadlock_detected_when_running_until_unreachable_event():
    sim = Simulator()

    def stuck():
        yield sim.event()  # nobody will ever trigger this

    proc = sim.process(stuck())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run(until=proc)


def test_peek_reports_next_event_time():
    sim = Simulator()
    assert sim.peek() == float("inf")
    sim.timeout(4.0)
    assert sim.peek() == 0.0 or sim.peek() == 4.0  # timeout schedules at 4.0
    sim.run()
    assert sim.peek() == float("inf")


def test_many_processes_complete():
    sim = Simulator()
    done = []

    def worker(i):
        yield sim.timeout(i * 0.001)
        done.append(i)

    for i in range(500):
        sim.process(worker(i))
    sim.run()
    assert sorted(done) == list(range(500))
