"""Unit tests for Resource and Store."""

import pytest

from repro.simnet.kernel import SimulationError, Simulator
from repro.simnet.resources import Resource, Store


def test_resource_grants_up_to_capacity_immediately():
    sim = Simulator()
    res = Resource(sim, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_len == 1


def test_resource_release_wakes_fifo_order():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    order = []

    def user(tag, hold):
        req = res.request()
        yield req
        order.append(("acquire", tag, sim.now))
        yield sim.timeout(hold)
        res.release(req)

    sim.process(user("a", 1.0))
    sim.process(user("b", 1.0))
    sim.process(user("c", 1.0))
    sim.run()
    assert order == [
        ("acquire", "a", 0.0),
        ("acquire", "b", 1.0),
        ("acquire", "c", 2.0),
    ]


def test_resource_release_unheld_request_rejected():
    sim = Simulator()
    res = Resource(sim)
    req = res.request()
    res.release(req)
    with pytest.raises(SimulationError):
        res.release(req)


def test_resource_occupy_serializes():
    sim = Simulator()
    res = Resource(sim, capacity=1)
    finish = []

    def worker():
        yield from res.occupy(2.0)
        finish.append(sim.now)

    sim.process(worker())
    sim.process(worker())
    sim.run()
    assert finish == [2.0, 4.0]


def test_resource_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_store_put_then_get():
    sim = Simulator()
    store = Store(sim)
    store.put("x")
    got = []

    def getter():
        item = yield store.get()
        got.append(item)

    sim.process(getter())
    sim.run()
    assert got == ["x"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    got = []

    def getter():
        item = yield store.get()
        got.append((sim.now, item))

    def putter():
        yield sim.timeout(2.0)
        store.put("late")

    sim.process(getter())
    sim.process(putter())
    sim.run()
    assert got == [(2.0, "late")]


def test_store_fifo_ordering():
    sim = Simulator()
    store = Store(sim)
    for i in range(5):
        store.put(i)
    got = []

    def getter():
        for _ in range(5):
            item = yield store.get()
            got.append(item)

    sim.process(getter())
    sim.run()
    assert got == [0, 1, 2, 3, 4]


def test_store_bounded_put_blocks():
    sim = Simulator()
    store = Store(sim, capacity=1)
    events = []

    def producer():
        yield store.put("a")
        events.append(("put-a", sim.now))
        yield store.put("b")
        events.append(("put-b", sim.now))

    def consumer():
        yield sim.timeout(3.0)
        item = yield store.get()
        events.append(("got", item, sim.now))

    sim.process(producer())
    sim.process(consumer())
    sim.run()
    assert ("put-a", 0.0) in events
    assert ("put-b", 3.0) in events
    assert ("got", "a", 3.0) in events


def test_store_try_get():
    sim = Simulator()
    store = Store(sim)
    assert store.try_get() is None
    store.put(9)
    assert store.try_get() == 9
    assert store.try_get() is None


def test_store_len_and_items():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert len(store) == 2
    assert store.items == (1, 2)


def test_store_capacity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        Store(sim, capacity=0)


def test_store_hands_item_directly_to_waiting_getter():
    sim = Simulator()
    store = Store(sim, capacity=1)
    got = []

    def getter():
        item = yield store.get()
        got.append(item)

    sim.process(getter())
    sim.run()  # getter now parked
    store.put("direct")
    sim.run()
    assert got == ["direct"]
    assert len(store) == 0
