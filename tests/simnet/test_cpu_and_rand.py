"""CPU cost model and deterministic-randomness helpers."""

import pytest

from repro.simnet.cpu import Cpu
from repro.simnet.kernel import Simulator
from repro.simnet.rand import derive_rng, derive_seed


class TestCpu:
    def test_run_charges_time(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)

        def app():
            yield from cpu.run(1.5)

        sim.run(until=sim.process(app()))
        assert sim.now == 1.5
        assert cpu.busy_seconds == 1.5

    def test_cores_limit_parallelism(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=2)
        finished = []

        def worker(tag):
            yield from cpu.run(1.0)
            finished.append((tag, sim.now))

        for tag in "abc":
            sim.process(worker(tag))
        sim.run()
        # two run in parallel; the third waits for a free core
        assert [t for _tag, t in finished] == [1.0, 1.0, 2.0]

    def test_copy_uses_bandwidth(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1, copy_bandwidth_Bps=1e9)

        def app():
            yield from cpu.copy(500_000_000)

        sim.run(until=sim.process(app()))
        assert sim.now == pytest.approx(0.5)

    def test_negative_time_rejected(self):
        sim = Simulator()
        cpu = Cpu(sim)

        def app():
            yield from cpu.run(-1)

        with pytest.raises(ValueError):
            sim.run(until=sim.process(app()))

    def test_utilization(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=4)

        def app():
            yield from cpu.run(1.0)
            yield sim.timeout(1.0)

        sim.run(until=sim.process(app()))
        assert cpu.utilization() == pytest.approx(1.0 / (2.0 * 4))

    def test_active_and_backlog(self):
        sim = Simulator()
        cpu = Cpu(sim, cores=1)

        def worker():
            yield from cpu.run(1.0)

        sim.process(worker())
        sim.process(worker())
        sim.run(until=0.5)
        assert cpu.active == 1
        assert cpu.runnable_backlog == 1


class TestRand:
    def test_same_inputs_same_stream(self):
        a = derive_rng(42, "nic-0")
        b = derive_rng(42, "nic-0")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_labels_different_streams(self):
        a = derive_rng(42, "nic-0")
        b = derive_rng(42, "nic-1")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_seed_is_64_bit(self):
        seed = derive_seed(1, "x")
        assert 0 <= seed < (1 << 64)
