"""NIC cost-model sanity: the calibrated asymmetries hold by construction."""

from repro.rdma.device import PAGE_SIZE, NicModel
from repro.simnet.config import us


def test_page_size_is_4k():
    assert PAGE_SIZE == 4096


def test_control_path_dwarfs_data_path():
    model = NicModel()
    data_path_op = (
        model.doorbell_s + model.wqe_processing_s + model.remote_dma_s
        + model.completion_s
    )
    assert model.create_qp_s > 20 * data_path_op
    assert model.reg_mr_base_s > 10 * data_path_op
    assert model.cm_setup_s > 30 * data_path_op


def test_registration_scales_per_page():
    model = NicModel()
    one_gib_pages = (1 << 30) // PAGE_SIZE
    cost = model.reg_mr_base_s + one_gib_pages * model.reg_mr_per_page_s
    # pinning a GiB takes on the order of 100 ms — the cost RStore pays
    # once at server boot, never on the data path
    assert 0.01 < cost < 1.0


def test_small_read_budget_close_to_hardware():
    """The latency decomposition lands in the published 2-3 us window."""
    model = NicModel()
    one_way = 2 * 0.25e-6 + 0.25e-6  # two hops + switch, from NetworkConfig
    read = (
        model.doorbell_s
        + model.wqe_processing_s
        + one_way                       # request
        + model.remote_dma_s
        + one_way                       # response
        + model.completion_s
    )
    assert us(1.5) < read < us(3.5)


def test_retry_timeout_far_above_rtt():
    model = NicModel()
    assert model.retry_timeout_s > 1000 * us(3)
