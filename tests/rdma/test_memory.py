"""Unit tests for buffers, host memory and memory regions."""

import pytest

from repro.rdma.device import PAGE_SIZE
from repro.rdma.memory import Buffer, HostMemory, MemoryRegion
from repro.rdma.types import Access, RdmaError


def test_alloc_is_page_aligned_and_disjoint():
    mem = HostMemory(host_id=0)
    a = mem.alloc(100)
    b = mem.alloc(100)
    assert a.addr % PAGE_SIZE == 0
    assert b.addr % PAGE_SIZE == 0
    assert b.addr >= a.addr + PAGE_SIZE


def test_alloc_rejects_non_positive():
    mem = HostMemory(host_id=0)
    with pytest.raises(ValueError):
        mem.alloc(0)


def test_buffer_read_write_roundtrip():
    buf = Buffer(addr=0x1000, length=64, host_id=0)
    buf.write(10, b"abcdef")
    assert buf.read(10, 6) == b"abcdef"
    assert buf.read(0, 10) == bytes(10)


def test_buffer_bounds_checked():
    buf = Buffer(addr=0x1000, length=16, host_id=0)
    with pytest.raises(RdmaError):
        buf.write(10, b"toolongpayload")
    with pytest.raises(RdmaError):
        buf.read(12, 8)
    with pytest.raises(RdmaError):
        buf.read(-1, 4)


def test_mr_keys_are_unique():
    buf = Buffer(0x1000, 64, 0)
    mr1 = MemoryRegion(buf, Access.LOCAL_WRITE)
    mr2 = MemoryRegion(buf, Access.LOCAL_WRITE)
    keys = {mr1.lkey, mr1.rkey, mr2.lkey, mr2.rkey}
    assert len(keys) == 4


def test_mr_check_remote_permissions():
    buf = Buffer(0x1000, 4096, 0)
    mr = MemoryRegion(buf, Access.REMOTE_READ)
    assert mr.check_remote(0x1000, 100, Access.REMOTE_READ) is None
    assert "permission" in mr.check_remote(0x1000, 100, Access.REMOTE_WRITE)


def test_mr_check_remote_bounds():
    buf = Buffer(0x1000, 4096, 0)
    mr = MemoryRegion(buf, Access.all_remote())
    assert "outside region" in mr.check_remote(0x0800, 100, Access.REMOTE_READ)
    assert "outside region" in mr.check_remote(0x1F00, 4096, Access.REMOTE_READ)


def test_mr_deregistered_is_invalid():
    buf = Buffer(0x1000, 4096, 0)
    mr = MemoryRegion(buf, Access.all_remote())
    mr.deregister()
    assert "deregistered" in mr.check_remote(0x1000, 1, Access.REMOTE_READ)


def test_mr_page_count():
    buf = Buffer(0x1000, PAGE_SIZE * 3 + 1, 0)
    mr = MemoryRegion(buf, Access.LOCAL_WRITE)
    assert mr.pages == 4


def test_allocated_bytes_accounting():
    mem = HostMemory(host_id=2)
    mem.alloc(100)
    mem.alloc(200)
    assert mem.allocated_bytes == 300
