"""Doorbell batching and selective signaling at the verbs layer."""

import pytest

from repro.rdma.types import Opcode, QpError, QpState, RdmaError
from repro.rdma.wr import SendWR

from tests.rdma.helpers import connected_pair, make_world, run


def write_wr(pair, payload_offset, length, remote_offset, **kw):
    return SendWR(
        opcode=Opcode.RDMA_WRITE,
        local_mr=pair.client_mr,
        local_addr=pair.client_mr.addr + payload_offset,
        length=length,
        remote_addr=pair.server_mr.addr + remote_offset,
        rkey=pair.server_mr.rkey,
        **kw,
    )


def test_post_send_many_rings_one_doorbell():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.client_mr.buffer.write(0, bytes(range(64)))
        bells0 = pair.client_nic.doorbells_rung
        ops0 = pair.client_nic.ops_posted
        wrs = [
            write_wr(pair, i * 8, 8, remote_offset=i * 8, wr_id=i,
                     signaled=(i == 7))
            for i in range(8)
        ]
        pair.qp.post_send_many(wrs)
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.ok and wc.wr_id == 7
        assert pair.client_nic.doorbells_rung - bells0 == 1
        assert pair.client_nic.ops_posted - ops0 == 8
        assert pair.server_mr.buffer.read(0, 64) == bytes(range(64))

    run(world, scenario())


def test_unsignaled_successes_never_reach_the_cq():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        wrs = [
            write_wr(pair, 0, 16, remote_offset=i * 16, wr_id=i,
                     signaled=(i == 5))
            for i in range(6)
        ]
        pair.qp.post_send_many(wrs)
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.wr_id == 5
        # let any stragglers land: still nothing besides the tail
        yield world.sim.timeout(1.0)
        assert pair.client_cq.poll() == []
        # the send queue fully drained — all six slots free again
        for i in range(6):
            pair.qp.post_send(write_wr(pair, 0, 8, remote_offset=0,
                                       signaled=(i == 5)))
        yield from pair.client_cq.wait_for(1)

    run(world, scenario())


def test_unsignaled_error_still_completes():
    """Error completions ignore the signaled flag; RC order holds."""
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        good_before = write_wr(pair, 0, 8, remote_offset=0, wr_id=1,
                               signaled=False)
        bad = write_wr(pair, 0, 8, remote_offset=0, wr_id=2, signaled=False)
        bad.rkey = pair.server_mr.rkey + 999  # remote access fault
        tail = write_wr(pair, 0, 8, remote_offset=8, wr_id=3, signaled=True)
        pair.qp.post_send_many([good_before, bad, tail])
        wcs = yield from pair.client_cq.wait_for(2)
        # in-order delivery: the unsignaled error surfaces before the tail
        assert [w.wr_id for w in wcs] == [2, 3]
        assert not wcs[0].ok
        assert pair.qp.state is QpState.ERROR
        with pytest.raises(QpError):
            pair.qp.post_send(write_wr(pair, 0, 8, remote_offset=0))

    run(world, scenario())


def test_overfull_batch_rejected_atomically():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        # fill 126 of 128 slots, then offer a 3-WR batch: none may post
        fillers = [
            write_wr(pair, 0, 8, remote_offset=0, wr_id=i, signaled=False)
            for i in range(126)
        ]
        pair.qp.post_send_many(fillers)
        ops_before = pair.client_nic.ops_posted
        batch = [
            write_wr(pair, 0, 8, remote_offset=64 + i * 8, wr_id=200 + i,
                     signaled=(i == 2))
            for i in range(3)
        ]
        with pytest.raises(RdmaError, match="cannot admit"):
            pair.qp.post_send_many(batch)
        assert pair.client_nic.ops_posted == ops_before
        # a batch that fits the remaining two slots still goes through
        pair.qp.post_send_many([
            write_wr(pair, 0, 8, remote_offset=0, wr_id=300, signaled=False),
            write_wr(pair, 0, 8, remote_offset=8, wr_id=301, signaled=True),
        ])
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.ok and wc.wr_id == 301

    run(world, scenario())


def test_cq_overrun_moves_qp_to_error():
    """An unpolled CQ that fills up is a fatal, visible failure."""
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        small_cq = yield from world.nics[0].create_cq(depth=2)
        qp2 = yield from world.cm.connect(
            world.nics[0], 1, "test", pair.client_pd, small_cq
        )
        for i in range(4):  # all signaled, never polled
            qp2.post_send(write_wr(pair, 0, 8, remote_offset=i * 8,
                                   wr_id=i, signaled=True))
        yield world.sim.timeout(1.0)
        assert small_cq.overflowed
        assert small_cq.dropped >= 1
        assert len(small_cq.poll(100)) <= 2
        assert qp2.state is QpState.ERROR
        with pytest.raises(QpError, match="CQ overrun"):
            qp2.post_send(write_wr(pair, 0, 8, remote_offset=0))

    run(world, scenario())


def test_batching_saves_doorbells_without_slowing_the_engine():
    """One list post matches N singles on latency at 1/N the doorbells.

    The engine pipelines the MMIO delay for same-instant posts, so the
    batch must never be *slower*; the saving batching buys lives in the
    posting CPU (one issue per doorbell) and shows up in the metric.
    """
    world = make_world()
    n, size = 8, 8

    def scenario():
        pair = yield from connected_pair(world)

        bells0 = pair.client_nic.doorbells_rung
        t0 = world.sim.now
        for i in range(n):
            pair.qp.post_send(write_wr(pair, 0, size, remote_offset=i * size,
                                       signaled=(i == n - 1)))
        yield from pair.client_cq.wait_for(1)
        singles = world.sim.now - t0
        single_bells = pair.client_nic.doorbells_rung - bells0

        bells1 = pair.client_nic.doorbells_rung
        t1 = world.sim.now
        pair.qp.post_send_many([
            write_wr(pair, 0, size, remote_offset=i * size,
                     signaled=(i == n - 1))
            for i in range(n)
        ])
        yield from pair.client_cq.wait_for(1)
        batched = world.sim.now - t1
        batch_bells = pair.client_nic.doorbells_rung - bells1

        assert batched <= singles
        assert single_bells == n
        assert batch_bells == 1

    run(world, scenario())
