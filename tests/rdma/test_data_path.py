"""Data-path tests: one-sided READ/WRITE, atomics, SEND/RECV."""

import pytest

from repro.rdma.types import Access, Opcode, QpError, RdmaError, WcStatus
from repro.rdma.wr import RecvWR, SendWR
from repro.simnet.config import MiB, us

from tests.rdma.helpers import connected_pair, make_world, run


def write_wr(pair, payload_offset, length, remote_offset, **kw):
    return SendWR(
        opcode=Opcode.RDMA_WRITE,
        local_mr=pair.client_mr,
        local_addr=pair.client_mr.addr + payload_offset,
        length=length,
        remote_addr=pair.server_mr.addr + remote_offset,
        rkey=pair.server_mr.rkey,
        **kw,
    )


def read_wr(pair, local_offset, length, remote_offset, **kw):
    return SendWR(
        opcode=Opcode.RDMA_READ,
        local_mr=pair.client_mr,
        local_addr=pair.client_mr.addr + local_offset,
        length=length,
        remote_addr=pair.server_mr.addr + remote_offset,
        rkey=pair.server_mr.rkey,
        **kw,
    )


def test_rdma_write_moves_bytes():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.client_mr.buffer.write(0, b"hello rstore")
        pair.qp.post_send(write_wr(pair, 0, 12, remote_offset=100))
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.ok and wc.opcode is Opcode.RDMA_WRITE and wc.byte_len == 12
        assert pair.server_mr.buffer.read(100, 12) == b"hello rstore"

    run(world, scenario())


def test_rdma_read_fetches_bytes():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.server_mr.buffer.write(500, b"remote-data")
        pair.qp.post_send(read_wr(pair, 0, 11, remote_offset=500))
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.ok
        assert pair.client_mr.buffer.read(0, 11) == b"remote-data"

    run(world, scenario())


def test_one_sided_ops_never_touch_remote_cpu():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        for i in range(50):
            pair.qp.post_send(write_wr(pair, 0, 4096, remote_offset=0, wr_id=i))
        yield from pair.client_cq.wait_for(50)
        assert pair.server_nic.host.cpu.busy_seconds == 0.0

    run(world, scenario())


def test_small_read_latency_close_to_hardware():
    """The paper's headline: data-path latency in the ~2-3 us range."""
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        start = world.sim.now
        pair.qp.post_send(read_wr(pair, 0, 8, remote_offset=0))
        yield from pair.client_cq.wait_for(1)
        return world.sim.now - start

    latency = run(world, scenario())
    assert us(1.5) < latency < us(4.0)


def test_write_latency_lower_than_read():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        t0 = world.sim.now
        pair.qp.post_send(write_wr(pair, 0, 8, remote_offset=0))
        yield from pair.client_cq.wait_for(1)
        write_lat = world.sim.now - t0
        t1 = world.sim.now
        pair.qp.post_send(read_wr(pair, 0, 8, remote_offset=0))
        yield from pair.client_cq.wait_for(1)
        read_lat = world.sim.now - t1
        return write_lat, read_lat

    write_lat, read_lat = run(world, scenario())
    # A write's payload travels with the request; a read pays the request
    # hop before any data flows, so it cannot be faster.
    assert write_lat <= read_lat


def test_large_write_achieves_near_line_rate():
    world = make_world()
    size = 64 * MiB

    def scenario():
        pair = yield from connected_pair(world, client_mr_len=size,
                                         server_mr_len=size)
        start = world.sim.now
        pair.qp.post_send(write_wr(pair, 0, size, remote_offset=0))
        yield from pair.client_cq.wait_for(1)
        elapsed = world.sim.now - start
        return size * 8 / elapsed

    goodput = run(world, scenario())
    rate = world.net.config.link_rate_bps
    assert 0.90 * rate < goodput <= rate


def test_writes_complete_in_post_order():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        for i in range(10):
            pair.qp.post_send(write_wr(pair, 0, 1000, remote_offset=0, wr_id=i))
        wcs = yield from pair.client_cq.wait_for(10)
        assert [wc.wr_id for wc in wcs] == list(range(10))

    run(world, scenario())


def test_atomic_faa_accumulates_and_returns_old():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        olds = []
        for _ in range(3):
            pair.qp.post_send(
                SendWR(
                    opcode=Opcode.ATOMIC_FAA,
                    remote_addr=pair.server_mr.addr,  # aligned
                    rkey=pair.server_mr.rkey,
                    compare=5,  # the addend
                )
            )
            (wc,) = yield from pair.client_cq.wait_for(1)
            assert wc.ok
            olds.append(wc.atomic_result)
        counter = int.from_bytes(pair.server_mr.buffer.read(0, 8), "little")
        return olds, counter

    olds, counter = run(world, scenario())
    assert olds == [0, 5, 10]
    assert counter == 15


def test_atomic_cas_swaps_only_on_match():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.server_mr.buffer.write(0, (42).to_bytes(8, "little"))

        pair.qp.post_send(
            SendWR(opcode=Opcode.ATOMIC_CAS, remote_addr=pair.server_mr.addr,
                   rkey=pair.server_mr.rkey, compare=41, swap=99)
        )
        (wc1,) = yield from pair.client_cq.wait_for(1)
        value_after_miss = int.from_bytes(pair.server_mr.buffer.read(0, 8), "little")

        pair.qp.post_send(
            SendWR(opcode=Opcode.ATOMIC_CAS, remote_addr=pair.server_mr.addr,
                   rkey=pair.server_mr.rkey, compare=42, swap=99)
        )
        (wc2,) = yield from pair.client_cq.wait_for(1)
        value_after_hit = int.from_bytes(pair.server_mr.buffer.read(0, 8), "little")
        return wc1.atomic_result, value_after_miss, wc2.atomic_result, value_after_hit

    old1, miss, old2, hit = run(world, scenario())
    assert old1 == 42 and miss == 42  # compare failed: untouched
    assert old2 == 42 and hit == 99   # compare matched: swapped


def test_unaligned_atomic_fails():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.qp.post_send(
            SendWR(opcode=Opcode.ATOMIC_FAA, remote_addr=pair.server_mr.addr + 3,
                   rkey=pair.server_mr.rkey, compare=1)
        )
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.status is WcStatus.REM_ACCESS_ERR
        assert "aligned" in wc.detail

    run(world, scenario())


def test_send_recv_delivers_payload():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.server_qp.post_recv(RecvWR(local_mr=pair.server_mr, wr_id="r0"))
        pair.qp.post_send(
            SendWR(opcode=Opcode.SEND, inline_data=b"ping!", wr_id="s0")
        )
        (rwc,) = yield from pair.server_cq.wait_for(1)
        (swc,) = yield from pair.client_cq.wait_for(1)
        assert rwc.ok and rwc.opcode is Opcode.RECV and rwc.byte_len == 5
        assert swc.ok and swc.opcode is Opcode.SEND
        assert pair.server_mr.buffer.read(0, 5) == b"ping!"

    run(world, scenario())


def test_send_parks_until_recv_posted():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.qp.post_send(SendWR(opcode=Opcode.SEND, inline_data=b"early"))
        yield world.sim.timeout(1e-3)  # message long since arrived
        assert len(pair.server_cq) == 0
        pair.server_qp.post_recv(RecvWR(local_mr=pair.server_mr))
        (rwc,) = yield from pair.server_cq.wait_for(1)
        assert rwc.ok
        assert pair.server_mr.buffer.read(0, 5) == b"early"

    run(world, scenario())


def test_send_larger_than_recv_buffer_errors_both_sides():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.server_qp.post_recv(
            RecvWR(local_mr=pair.server_mr, length=4, wr_id="small")
        )
        pair.qp.post_send(SendWR(opcode=Opcode.SEND, inline_data=b"way too big"))
        (rwc,) = yield from pair.server_cq.wait_for(1)
        (swc,) = yield from pair.client_cq.wait_for(1)
        assert rwc.status is WcStatus.LOC_LEN_ERR
        assert swc.status is WcStatus.REM_INV_REQ_ERR

    run(world, scenario())


def test_unsignaled_write_produces_no_completion():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.qp.post_send(write_wr(pair, 0, 64, remote_offset=0, signaled=False))
        pair.qp.post_send(write_wr(pair, 0, 64, remote_offset=64, wr_id="last"))
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.wr_id == "last"
        assert len(pair.client_cq) == 0
        assert pair.qp.inflight == 0  # unsignaled WR still retired

    run(world, scenario())


def test_bad_rkey_fails_and_errors_qp():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        wr = write_wr(pair, 0, 8, remote_offset=0)
        wr.rkey = 0xDEAD
        pair.qp.post_send(wr)
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.status is WcStatus.REM_ACCESS_ERR
        with pytest.raises(QpError):
            pair.qp.post_send(write_wr(pair, 0, 8, remote_offset=0))

    run(world, scenario())


def test_write_without_remote_permission_fails():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world, access=Access.REMOTE_READ)
        pair.qp.post_send(write_wr(pair, 0, 8, remote_offset=0))
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.status is WcStatus.REM_ACCESS_ERR

    run(world, scenario())


def test_out_of_bounds_write_fails():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world, server_mr_len=4096)
        pair.qp.post_send(write_wr(pair, 0, 128, remote_offset=4000))
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.status is WcStatus.REM_ACCESS_ERR
        assert "outside region" in wc.detail

    run(world, scenario())


def test_send_queue_overflow_raises():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        with pytest.raises(RdmaError, match="full"):
            for _ in range(pair.qp.sq_depth + 1):
                pair.qp.post_send(write_wr(pair, 0, 8, remote_offset=0))

    run(world, scenario())


def test_dead_host_read_times_out_with_retry_error():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.server_nic.kill()
        t0 = world.sim.now
        pair.qp.post_send(read_wr(pair, 0, 8, remote_offset=0))
        (wc,) = yield from pair.client_cq.wait_for(1)
        assert wc.status is WcStatus.RETRY_EXC_ERR
        assert world.sim.now - t0 >= pair.client_nic.model.retry_timeout_s

    run(world, scenario())


def test_wire_length_scales_transfer_time():
    world = make_world()

    def timed_write(pair, wire_length):
        t0 = world.sim.now
        pair.qp.post_send(
            write_wr(pair, 0, 64 * 1024, remote_offset=0, wire_length=wire_length)
        )
        yield from pair.client_cq.wait_for(1)
        return world.sim.now - t0

    def scenario():
        pair = yield from connected_pair(world)
        t_real = yield from timed_write(pair, wire_length=None)
        t_scaled = yield from timed_write(pair, wire_length=64 * 1024 * 100)
        return t_real, t_scaled

    t_real, t_scaled = run(world, scenario())
    # 100x the wire bytes: ~44x the time (the unscaled single-frame
    # message pays egress+ingress serialization; the scaled 100-frame
    # message pipelines the two channels).
    assert t_scaled > 40 * t_real
