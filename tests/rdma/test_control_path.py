"""Control-path tests: PDs, MR registration cost, CM handshakes.

These pin down the asymmetry the paper exploits: setup operations cost
tens to hundreds of microseconds, data-path operations cost ~2 us.
"""

import pytest

from repro.rdma.cm import ConnectError
from repro.rdma.device import PAGE_SIZE
from repro.rdma.types import Access, Opcode, RdmaError
from repro.rdma.wr import SendWR
from repro.simnet.config import MiB, us

from tests.rdma.helpers import connected_pair, make_world, run


def test_reg_mr_cost_grows_with_size():
    world = make_world()
    nic = world.nics[0]

    def register(length):
        pd = yield from nic.alloc_pd()
        t0 = world.sim.now
        yield from nic.reg_mr(pd, length=length)
        return world.sim.now - t0

    def scenario():
        small = yield from register(PAGE_SIZE)
        large = yield from register(64 * MiB)
        return small, large

    small, large = run(world, scenario())
    assert small < large
    # 64 MiB = 16384 pages at ~0.35us/page dominates the base cost
    assert large > 100 * small


def test_reg_mr_requires_buffer_or_length():
    world = make_world()
    nic = world.nics[0]

    def scenario():
        pd = yield from nic.alloc_pd()
        with pytest.raises(RdmaError):
            yield from nic.reg_mr(pd)

    run(world, scenario())


def test_reg_mr_rejects_foreign_buffer():
    world = make_world()
    nic0, nic1 = world.nics[0], world.nics[1]

    def scenario():
        pd = yield from nic0.alloc_pd()
        foreign = nic1.memory.alloc(4096)
        with pytest.raises(RdmaError, match="another host"):
            yield from nic0.reg_mr(pd, buffer=foreign)

    run(world, scenario())


def test_dereg_mr_removes_rkey():
    world = make_world()
    nic = world.nics[0]

    def scenario():
        pd = yield from nic.alloc_pd()
        mr = yield from nic.reg_mr(pd, length=4096)
        assert mr.rkey in nic.mr_by_rkey
        yield from nic.dereg_mr(mr)
        assert mr.rkey not in nic.mr_by_rkey
        assert not mr.valid

    run(world, scenario())


def test_connect_establishes_usable_qp_pair():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        assert pair.qp.remote is pair.server_qp
        assert pair.server_qp.remote is pair.qp
        return pair

    run(world, scenario())


def test_connect_without_listener_raises():
    world = make_world()
    nic = world.nics[0]

    def scenario():
        pd = yield from nic.alloc_pd()
        cq = yield from nic.create_cq()
        with pytest.raises(ConnectError, match="no listener"):
            yield from world.cm.connect(nic, 1, "ghost-service", pd, cq)

    run(world, scenario())


def test_connect_to_dead_host_raises():
    world = make_world()

    def scenario():
        snic = world.nics[1]
        spd = yield from snic.alloc_pd()
        scq = yield from snic.create_cq()
        world.cm.listen(snic, "svc", spd, scq)
        snic.kill()
        cnic = world.nics[0]
        cpd = yield from cnic.alloc_pd()
        ccq = yield from cnic.create_cq()
        with pytest.raises(ConnectError, match="unreachable"):
            yield from world.cm.connect(cnic, 1, "svc", cpd, ccq)

    run(world, scenario())


def test_duplicate_listen_rejected():
    world = make_world()
    nic = world.nics[1]

    def scenario():
        pd = yield from nic.alloc_pd()
        cq = yield from nic.create_cq()
        world.cm.listen(nic, "svc", pd, cq)
        with pytest.raises(RdmaError, match="already listening"):
            world.cm.listen(nic, "svc", pd, cq)

    run(world, scenario())


def test_setup_vs_data_path_asymmetry():
    """Connection setup must be orders of magnitude above one IO."""
    world = make_world()

    def scenario():
        t0 = world.sim.now
        pair = yield from connected_pair(world)
        setup = world.sim.now - t0
        t1 = world.sim.now
        pair.qp.post_send(
            SendWR(
                opcode=Opcode.RDMA_READ,
                local_mr=pair.client_mr,
                local_addr=pair.client_mr.addr,
                length=8,
                remote_addr=pair.server_mr.addr,
                rkey=pair.server_mr.rkey,
            )
        )
        yield from pair.client_cq.wait_for(1)
        io = world.sim.now - t1
        return setup, io

    setup, io = run(world, scenario())
    assert setup > 50 * io


def test_pd_mismatch_between_qp_and_mr_rejected():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        other_pd = yield from pair.client_nic.alloc_pd()
        rogue_mr = yield from pair.client_nic.reg_mr(other_pd, length=4096)
        with pytest.raises(RdmaError, match="protection domain"):
            pair.qp.post_send(
                SendWR(
                    opcode=Opcode.RDMA_WRITE,
                    local_mr=rogue_mr,
                    local_addr=rogue_mr.addr,
                    length=8,
                    remote_addr=pair.server_mr.addr,
                    rkey=pair.server_mr.rkey,
                )
            )

    run(world, scenario())


def test_connection_count_metric():
    world = make_world(num_hosts=3)

    def scenario():
        snic = world.nics[2]
        spd = yield from snic.alloc_pd()
        scq = yield from snic.create_cq()
        world.cm.listen(snic, "svc", spd, scq)
        for client in (0, 1):
            cnic = world.nics[client]
            cpd = yield from cnic.alloc_pd()
            ccq = yield from cnic.create_cq()
            yield from world.cm.connect(cnic, 2, "svc", cpd, ccq)
        return world.cm.connections

    assert run(world, scenario()) == 2


def test_inline_send_is_not_slower():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        from repro.rdma.wr import RecvWR

        pair.server_qp.post_recv(RecvWR(local_mr=pair.server_mr))
        pair.server_qp.post_recv(RecvWR(local_mr=pair.server_mr))

        t0 = world.sim.now
        pair.qp.post_send(SendWR(opcode=Opcode.SEND, inline_data=b"x" * 64))
        yield from pair.client_cq.wait_for(1)
        inline_lat = world.sim.now - t0

        payload_mr = pair.client_mr
        payload_mr.buffer.write(0, b"x" * 64)
        t1 = world.sim.now
        pair.qp.post_send(
            SendWR(
                opcode=Opcode.SEND,
                local_mr=payload_mr,
                local_addr=payload_mr.addr,
                length=64,
            )
        )
        yield from pair.client_cq.wait_for(1)
        dma_lat = world.sim.now - t1
        return inline_lat, dma_lat

    inline_lat, dma_lat = run(world, scenario())
    assert inline_lat < dma_lat
