"""RDMA WRITE with immediate: one-sided data plus a doorbell."""

from repro.rdma.types import Opcode
from repro.rdma.wr import RecvWR, SendWR

from tests.rdma.helpers import connected_pair, make_world, run


def imm_write(pair, payload, remote_offset, imm):
    pair.client_mr.buffer.write(0, payload)
    return SendWR(
        opcode=Opcode.RDMA_WRITE_IMM,
        local_mr=pair.client_mr,
        local_addr=pair.client_mr.addr,
        length=len(payload),
        remote_addr=pair.server_mr.addr + remote_offset,
        rkey=pair.server_mr.rkey,
        imm_data=imm,
    )


def test_write_imm_moves_data_and_raises_recv_completion():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.server_qp.post_recv(RecvWR(local_mr=pair.server_mr, wr_id="n0"))
        pair.qp.post_send(imm_write(pair, b"payload!", 256, imm=0xBEEF))
        (rwc,) = yield from pair.server_cq.wait_for(1)
        (swc,) = yield from pair.client_cq.wait_for(1)
        assert rwc.ok and rwc.opcode is Opcode.RECV_RDMA_WITH_IMM
        assert rwc.imm_data == 0xBEEF
        assert rwc.byte_len == 8
        assert rwc.wr_id == "n0"
        assert swc.ok and swc.opcode is Opcode.RDMA_WRITE_IMM
        # the data landed at the target address, not in the recv buffer
        assert pair.server_mr.buffer.read(256, 8) == b"payload!"

    run(world, scenario())


def test_write_imm_parks_until_recv_posted():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.qp.post_send(imm_write(pair, b"early", 0, imm=7))
        yield world.sim.timeout(1e-3)
        # the write itself is one-sided: data is already there...
        assert pair.server_mr.buffer.read(0, 5) == b"early"
        # ...but the notification waits for a receive
        assert len(pair.server_cq) == 0
        pair.server_qp.post_recv(RecvWR(local_mr=pair.server_mr))
        (rwc,) = yield from pair.server_cq.wait_for(1)
        assert rwc.imm_data == 7

    run(world, scenario())


def test_write_imm_ordering_with_plain_writes():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        pair.server_qp.post_recv(RecvWR(local_mr=pair.server_mr))
        # distinct local offsets: the NIC DMA-reads payloads at WQE
        # processing time, so reusing a local buffer region between
        # posts would be an application bug
        pair.client_mr.buffer.write(64, b"A")
        pair.qp.post_send(SendWR(
            opcode=Opcode.RDMA_WRITE, local_mr=pair.client_mr,
            local_addr=pair.client_mr.addr + 64, length=1,
            remote_addr=pair.server_mr.addr + 100, rkey=pair.server_mr.rkey,
        ))
        pair.qp.post_send(imm_write(pair, b"Z", 101, imm=1))
        (rwc,) = yield from pair.server_cq.wait_for(1)
        # by RC ordering, seeing the immediate implies the earlier plain
        # write has landed too
        assert rwc.ok
        assert pair.server_mr.buffer.read(100, 2) == b"AZ"

    run(world, scenario())


def test_write_imm_no_remote_cpu():
    world = make_world()

    def scenario():
        pair = yield from connected_pair(world)
        for _ in range(10):
            pair.server_qp.post_recv(RecvWR(local_mr=pair.server_mr))
        for i in range(10):
            pair.qp.post_send(imm_write(pair, b"tick", 0, imm=i))
        yield from pair.server_cq.wait_for(10)
        assert pair.server_nic.host.cpu.busy_seconds == 0.0

    run(world, scenario())
