"""Completion-queue mechanics and work-request validation."""

import pytest

from repro.rdma.cq import CompletionQueue, WorkCompletion
from repro.rdma.memory import Buffer, MemoryRegion
from repro.rdma.types import Access, Opcode, RdmaError, WcStatus
from repro.rdma.wr import RecvWR, SendWR
from repro.simnet.kernel import Simulator


def wc(i=0):
    return WorkCompletion(wr_id=i, status=WcStatus.SUCCESS,
                          opcode=Opcode.RDMA_WRITE)


class TestCompletionQueue:
    def test_poll_drains_fifo(self):
        cq = CompletionQueue(Simulator())
        for i in range(5):
            cq.push(wc(i))
        assert [w.wr_id for w in cq.poll(3)] == [0, 1, 2]
        assert [w.wr_id for w in cq.poll(10)] == [3, 4]
        assert cq.poll() == []

    def test_next_completion_immediate_and_deferred(self):
        sim = Simulator()
        cq = CompletionQueue(sim)
        cq.push(wc(1))
        got = []

        def app():
            first = yield cq.next_completion()
            got.append(first.wr_id)
            second = yield cq.next_completion()  # parks
            got.append(second.wr_id)

        sim.process(app())
        sim.run()
        assert got == [1]
        cq.push(wc(2))
        sim.run()
        assert got == [1, 2]

    def test_wait_for_collects_n(self):
        sim = Simulator()
        cq = CompletionQueue(sim)

        def producer():
            for i in range(3):
                yield sim.timeout(1.0)
                cq.push(wc(i))

        def consumer():
            wcs = yield from cq.wait_for(3)
            return [w.wr_id for w in wcs]

        sim.process(producer())
        result = sim.run(until=sim.process(consumer()))
        assert result == [0, 1, 2]

    def test_overflow_flagged(self):
        cq = CompletionQueue(Simulator(), depth=2)
        for i in range(3):
            cq.push(wc(i))
        assert cq.overflowed

    def test_overrun_drops_and_errors_owner_qp(self):
        class StubQp:
            reason = None

            def set_error(self, reason):
                self.reason = reason

        qp = StubQp()
        cq = CompletionQueue(Simulator(), depth=2)
        for i in range(4):
            entry = wc(i)
            entry.qp = qp
            cq.push(entry)
        assert cq.overflowed
        assert cq.dropped == 2
        # overrun entries are dropped, not silently appended
        assert [w.wr_id for w in cq.poll(10)] == [0, 1]
        assert "CQ overrun" in qp.reason

    def test_total_completions_counter(self):
        cq = CompletionQueue(Simulator())
        for i in range(7):
            cq.push(wc(i))
        cq.poll(7)
        assert cq.total_completions == 7


class TestWorkRequestValidation:
    def make_mr(self, length=4096):
        return MemoryRegion(Buffer(0x1000, length, 0), Access.LOCAL_WRITE)

    def test_recv_opcode_rejected_on_send_queue(self):
        with pytest.raises(RdmaError, match="post_recv"):
            SendWR(opcode=Opcode.RECV).validate()

    def test_atomic_length_forced_to_8(self):
        wr = SendWR(opcode=Opcode.ATOMIC_FAA, remote_addr=0, rkey=1)
        wr.validate()
        assert wr.length == 8

    def test_atomic_wrong_length_rejected(self):
        wr = SendWR(opcode=Opcode.ATOMIC_CAS, length=16, remote_addr=0, rkey=1)
        with pytest.raises(RdmaError, match="8 bytes"):
            wr.validate()

    def test_inline_with_mr_rejected(self):
        wr = SendWR(opcode=Opcode.SEND, inline_data=b"x",
                    local_mr=self.make_mr())
        with pytest.raises(RdmaError, match="inline"):
            wr.validate()

    def test_payload_without_mr_rejected(self):
        wr = SendWR(opcode=Opcode.RDMA_WRITE, length=100, remote_addr=0,
                    rkey=1)
        with pytest.raises(RdmaError, match="local MR"):
            wr.validate()

    def test_local_range_outside_mr_rejected(self):
        mr = self.make_mr(4096)
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_mr=mr,
                    local_addr=mr.addr + 4000, length=200,
                    remote_addr=0, rkey=1)
        with pytest.raises(RdmaError, match="outside region"):
            wr.validate()

    def test_wire_length_smaller_than_payload_rejected(self):
        mr = self.make_mr()
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_mr=mr,
                    local_addr=mr.addr, length=100, wire_length=50,
                    remote_addr=0, rkey=1)
        with pytest.raises(RdmaError, match="wire_length"):
            wr.validate()

    def test_bytes_on_wire_defaults_to_length(self):
        mr = self.make_mr()
        wr = SendWR(opcode=Opcode.RDMA_WRITE, local_mr=mr,
                    local_addr=mr.addr, length=100, remote_addr=0, rkey=1)
        assert wr.bytes_on_wire == 100
        wr.wire_length = 1000
        assert wr.bytes_on_wire == 1000

    def test_recv_wr_defaults_to_whole_mr(self):
        mr = self.make_mr(4096)
        rwr = RecvWR(local_mr=mr)
        assert rwr.local_addr == mr.addr
        assert rwr.length == 4096

    def test_recv_wr_outside_mr_rejected(self):
        mr = self.make_mr(4096)
        with pytest.raises(RdmaError):
            RecvWR(local_mr=mr, local_addr=mr.addr + 4000, length=200)
