"""Shared scaffolding for RDMA-layer tests."""

from types import SimpleNamespace

from repro.rdma.cm import ConnectionManager
from repro.rdma.nic import RNic
from repro.rdma.types import Access
from repro.simnet.config import NetworkConfig
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Network


def make_world(num_hosts: int = 2, **net_overrides) -> SimpleNamespace:
    """A cluster with one RNIC per host and a connection manager."""
    sim = Simulator()
    net = Network(sim, num_hosts, NetworkConfig(**net_overrides))
    nics = [RNic(sim, host, net) for host in net.hosts]
    cm = ConnectionManager(sim, net)
    return SimpleNamespace(sim=sim, net=net, nics=nics, cm=cm)


def run(world, gen):
    """Run a generator as a process to completion; return its value."""
    return world.sim.run(until=world.sim.process(gen))


def connected_pair(
    world,
    client: int = 0,
    server: int = 1,
    server_mr_len: int = 1 << 20,
    client_mr_len: int = 1 << 20,
    access: Access | None = None,
    service: str = "test",
):
    """Generator: full control-path setup between two hosts.

    Returns a namespace with the client QP, both MRs, CQs and the
    server-side QP — everything a data-path test needs.
    """
    if access is None:
        access = Access.all_remote()
    cnic, snic = world.nics[client], world.nics[server]
    accepted = []

    spd = yield from snic.alloc_pd()
    scq = yield from snic.create_cq()
    server_mr = yield from snic.reg_mr(spd, length=server_mr_len, access=access)
    world.cm.listen(
        snic, service, spd, scq, on_connect=accepted.append
    )

    cpd = yield from cnic.alloc_pd()
    ccq = yield from cnic.create_cq()
    client_mr = yield from cnic.reg_mr(
        cpd, length=client_mr_len, access=Access.LOCAL_WRITE
    )
    qp = yield from world.cm.connect(cnic, server, service, cpd, ccq)

    return SimpleNamespace(
        qp=qp,
        server_qp=accepted[0],
        client_mr=client_mr,
        server_mr=server_mr,
        client_cq=ccq,
        server_cq=scq,
        client_nic=cnic,
        server_nic=snic,
        client_pd=cpd,
        server_pd=spd,
    )
