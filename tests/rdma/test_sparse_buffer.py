"""SparseBuffer: the lazy backing store for multi-GiB server arenas."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rdma.memory import Buffer, HostMemory, SparseBuffer
from repro.rdma.types import RdmaError
from repro.simnet.config import GiB, MiB


def test_large_alloc_is_sparse_small_is_dense():
    mem = HostMemory(host_id=0)
    small = mem.alloc(1 * MiB)
    large = mem.alloc(64 * MiB)
    assert type(small) is Buffer
    assert isinstance(large, SparseBuffer)


def test_untouched_reads_are_zero():
    buf = SparseBuffer(0x1000, 16 * MiB, host_id=0)
    assert buf.read(12345, 100) == bytes(100)
    assert buf.materialized_bytes == 0


def test_write_read_roundtrip_within_block():
    buf = SparseBuffer(0, 1 * MiB, host_id=0)
    buf.write(1000, b"hello")
    assert buf.read(1000, 5) == b"hello"
    assert buf.read(990, 25) == bytes(10) + b"hello" + bytes(10)


def test_write_spanning_blocks():
    buf = SparseBuffer(0, 1 * MiB, host_id=0)
    block = SparseBuffer.BLOCK
    payload = bytes(range(256)) * 1024  # 256 KiB, crosses 4 blocks
    buf.write(block - 100, payload)
    assert buf.read(block - 100, len(payload)) == payload


def test_materialization_is_block_granular():
    buf = SparseBuffer(0, 1 * GiB, host_id=0)
    buf.write(0, b"x")
    assert buf.materialized_bytes == SparseBuffer.BLOCK
    buf.write(500 * MiB, b"y")
    assert buf.materialized_bytes == 2 * SparseBuffer.BLOCK


def test_multi_gib_buffer_costs_nothing_until_written():
    buf = SparseBuffer(0, 64 * GiB, host_id=0)
    assert len(buf) == 64 * GiB
    assert buf.materialized_bytes == 0


def test_bounds_enforced():
    buf = SparseBuffer(0, 1000, host_id=0)
    with pytest.raises(RdmaError):
        buf.write(990, b"far too long")
    with pytest.raises(RdmaError):
        buf.read(500, 501)
    with pytest.raises(RdmaError):
        buf.read(-1, 10)


def test_dense_data_accessor_rejected():
    buf = SparseBuffer(0, 1000, host_id=0)
    with pytest.raises(RdmaError):
        _ = buf.data


@settings(max_examples=100, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=300_000),
            st.binary(min_size=1, max_size=2000),
        ),
        max_size=20,
    ),
)
def test_sparse_matches_dense_reference(writes):
    """Property: a sparse buffer behaves exactly like a bytearray."""
    size = 302_000
    sparse = SparseBuffer(0, size, host_id=0)
    dense = bytearray(size)
    for offset, payload in writes:
        if offset + len(payload) > size:
            continue
        sparse.write(offset, payload)
        dense[offset : offset + len(payload)] = payload
    assert sparse.read(0, size) == bytes(dense)
