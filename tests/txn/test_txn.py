"""The OCC transaction runtime: commit, conflict, abort, bounds."""

import pytest

from repro.cluster import build_cluster
from repro.coord import SeqLock
from repro.core import RStoreConfig
from repro.core.errors import (
    DeadlineExceededError,
    RetryBudgetExceededError,
)
from repro.kv import KvFullError, RKVStore
from repro.kv.hashkv import _hash64
from repro.simnet.config import KiB, MiB
from repro.txn import TxnConflictError, TxnMisuseError


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )


def make_store(cluster, name, slots=256, **kw):
    client = cluster.client(1)

    def setup():
        return (yield from RKVStore.create(client, name, slots, **kw))

    return cluster.run_app(setup())


# -- commits ------------------------------------------------------------------


def test_multi_key_commit_is_atomic_and_visible(cluster):
    store = make_store(cluster, "commit")

    def app():
        yield from store.put(b"a", b"100")
        yield from store.put(b"b", b"200")
        runtime = store.txn()

        def transfer(txn):
            a = int((yield from txn.get(store, b"a")))
            b = int((yield from txn.get(store, b"b")))
            yield from txn.put(store, b"a", str(a - 30).encode())
            yield from txn.put(store, b"b", str(b + 30).encode())
            return a + b

        total = yield from runtime.run(transfer)
        a = yield from store.get(b"a")
        b = yield from store.get(b"b")
        return total, a, b, runtime.commits, runtime.aborts

    total, a, b, commits, aborts = cluster.run_app(app())
    assert (total, a, b) == (300, b"70", b"230")
    assert (commits, aborts) == (1, 0)


def test_read_your_writes_insert_and_delete(cluster):
    store = make_store(cluster, "ryw")

    def app():
        yield from store.put(b"old", b"1")
        runtime = store.txn()

        def mixed(txn):
            yield from txn.put(store, b"new", b"2")
            assert (yield from txn.get(store, b"new")) == b"2"
            assert (yield from txn.delete(store, b"old"))
            assert (yield from txn.get(store, b"old")) is None
            # deleting our own insert cancels it
            assert (yield from txn.delete(store, b"new"))
            assert not (yield from txn.delete(store, b"missing"))
            yield from txn.put(store, b"back", b"3")

        yield from runtime.run(mixed)
        return (
            (yield from store.get(b"old")),
            (yield from store.get(b"new")),
            (yield from store.get(b"back")),
        )

    assert cluster.run_app(app()) == (None, None, b"3")


def test_read_only_transaction_commits(cluster):
    store = make_store(cluster, "readonly")

    def app():
        yield from store.put(b"k", b"v")
        runtime = store.txn()

        def audit(txn):
            return (yield from txn.get(store, b"k"))

        value = yield from runtime.run(audit)
        return value, runtime.commits

    assert cluster.run_app(app()) == (b"v", 1)


def test_transaction_spans_tables_and_raw_records(cluster):
    store_a = make_store(cluster, "multi-a")
    store_b = make_store(cluster, "multi-b")
    client = cluster.client(1)

    def app():
        yield from store_a.put(b"src", b"500")
        record = yield from SeqLock.create(client, "txn-journal",
                                          body_size=16)
        yield from record.write(b"\0" * 16)
        runtime = store_a.txn(label="multi")

        def move(txn):
            amount = int((yield from txn.get(store_a, b"src")))
            yield from txn.put(store_a, b"src", b"0")
            yield from txn.put(store_b, b"dst", str(amount).encode())
            journal = yield from txn.read_record(record)
            assert journal == b"\0" * 16
            yield from txn.write_record(record, b"moved".ljust(16, b"\0"))

        yield from runtime.run(move)
        _version, body = yield from record.read()
        return (
            (yield from store_a.get(b"src")),
            (yield from store_b.get(b"dst")),
            body,
        )

    src, dst, journal = cluster.run_app(app())
    assert (src, dst) == (b"0", b"500")
    assert journal == b"moved".ljust(16, b"\0")


# -- conflicts and aborts -----------------------------------------------------


def test_stale_snapshot_conflicts_and_releases_locks(cluster):
    store = make_store(cluster, "stale")

    def app():
        yield from store.put(b"w", b"1")
        yield from store.put(b"r", b"1")
        runtime = store.txn()
        txn = runtime.begin()
        yield from txn.get(store, b"r")
        yield from txn.put(store, b"w", b"2")
        # invalidate the read-set member after the snapshot: commit
        # takes the intent lock on "w", then validation must fail and
        # the abort path must restore "w"'s word
        yield from store.put(b"r", b"changed")
        with pytest.raises(TxnConflictError, match="invalidated"):
            yield from txn.commit()
        assert txn.phase == "aborted"
        # the intent lock on "w" was released: a plain writer gets in
        # immediately and the buffered write never landed
        yield from store.put(b"w", b"3")
        return (yield from store.get(b"w")), runtime.aborts

    assert cluster.run_app(app()) == (b"3", 1)


def test_lost_write_intent_conflicts(cluster):
    store = make_store(cluster, "intent")

    def app():
        yield from store.put(b"k", b"1")
        runtime = store.txn()
        txn = runtime.begin()
        yield from txn.get(store, b"k")
        yield from txn.put(store, b"k", b"2")
        yield from store.put(b"k", b"raced")  # bump the version first
        with pytest.raises(TxnConflictError, match="write intent"):
            yield from txn.commit()
        return (yield from store.get(b"k")), runtime.conflicts

    assert cluster.run_app(app()) == (b"raced", 1)


def test_phantom_insert_invalidates_lookup(cluster):
    store = make_store(cluster, "phantom")

    def app():
        yield from store.put(b"x", b"1")
        runtime = store.txn()
        txn = runtime.begin()
        ghost = yield from txn.get(store, b"ghost")
        assert ghost is None
        yield from txn.put(store, b"x", b"2")
        # another writer materializes the key the lookup missed: the
        # probed empty slot is in the read-set, so commit must conflict
        yield from store.put(b"ghost", b"now-real")
        with pytest.raises(TxnConflictError):
            yield from txn.commit()

    cluster.run_app(app())


def test_concurrent_transfers_conserve_total(cluster):
    sim = cluster.sim
    store = make_store(cluster, "bank", slots=128)
    keys = [f"acct-{i}".encode() for i in range(6)]

    def app():
        for key in keys:
            yield from store.put(key, b"1000")

        def worker(host, rounds):
            view = yield from RKVStore.open(cluster.client(host), "bank")
            runtime = view.txn(label=f"worker-{host}")
            for i in range(rounds):
                src = keys[(host + i) % len(keys)]
                dst = keys[(host * 2 + i + 1) % len(keys)]
                if src == dst:
                    continue

                def transfer(txn, src=src, dst=dst):
                    a = int((yield from txn.get(view, src)))
                    b = int((yield from txn.get(view, dst)))
                    yield from txn.put(view, src, str(a - 7).encode())
                    yield from txn.put(view, dst, str(b + 7).encode())

                yield from runtime.run(transfer)
            return runtime

        procs = [cluster.spawn(worker(h, 12)) for h in (1, 2, 3)]
        yield sim.all_of(procs)
        total = 0
        for key in keys:
            total += int((yield from store.get(key)))
        runtimes = [p.value for p in procs]
        return total, sum(rt.commits for rt in runtimes)

    total, commits = cluster.run_app(app())
    assert total == 6 * 1000
    assert commits > 0


# -- bounds and misuse --------------------------------------------------------


def test_passed_deadline_raises_typed_error(cluster):
    store = make_store(cluster, "deadline")

    def app():
        yield from store.put(b"k", b"v")
        runtime = store.txn()

        def touch(txn):
            yield from txn.put(store, b"k", b"w")

        with pytest.raises(DeadlineExceededError):
            yield from runtime.run(touch, deadline=cluster.sim.now)
        # the aborted attempt left no lock behind
        yield from store.put(b"k", b"after")
        return (yield from store.get(b"k"))

    assert cluster.run_app(app()) == b"after"


def test_retry_budget_exhaustion_is_typed(cluster):
    store = make_store(cluster, "budget")

    def app():
        yield from store.put(b"k", b"0")
        runtime = store.txn(retries=3)

        def always_conflicts(txn):
            value = int((yield from txn.get(store, b"k")))
            # a plain writer invalidates the snapshot on every attempt
            yield from store.put(b"k", str(value + 1).encode())
            yield from txn.put(store, b"k", b"-1")

        with pytest.raises(RetryBudgetExceededError):
            yield from runtime.run(always_conflicts)
        return runtime.aborts

    assert cluster.run_app(app()) >= 3


def test_finished_transaction_refuses_reuse(cluster):
    store = make_store(cluster, "misuse")

    def app():
        yield from store.put(b"k", b"v")
        runtime = store.txn()
        txn = runtime.begin()
        yield from txn.get(store, b"k")
        yield from txn.commit()
        with pytest.raises(TxnMisuseError, match="already committed"):
            yield from txn.get(store, b"k")
        with pytest.raises(TxnMisuseError):
            yield from txn.commit()
        other = runtime.begin()
        other.abort()
        with pytest.raises(TxnMisuseError, match="already aborted"):
            yield from other.put(store, b"k", b"x")

    cluster.run_app(app())


def test_colliding_inserts_never_share_a_slot(cluster):
    # a 4-slot table guarantees overlapping probe chains
    store = make_store(cluster, "collide", slots=4)
    a, b = None, None
    candidates = [f"key-{i}".encode() for i in range(64)]
    for key in candidates:
        if a is None:
            a = key
        elif _hash64(key) % 4 == _hash64(a) % 4:
            b = key
            break
    assert b is not None

    def app():
        runtime = store.txn()
        txn = runtime.begin()
        yield from txn.put(store, a, b"first")
        # both chains start at the same empty slot; the second insert
        # must not silently target the slot the first one claimed
        with pytest.raises(KvFullError):
            yield from txn.put(store, b, b"second")
        txn.abort()

    cluster.run_app(app())
