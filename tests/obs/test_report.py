"""Rendering: layer breakdowns, the call census, span dumps."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.report import (
    call_census,
    format_counters,
    format_spans,
    format_table,
    layer_breakdown,
    trace_report,
)
from repro.obs.trace import Tracer
from repro.simnet.kernel import Simulator


def _registry_with_layers():
    reg = MetricsRegistry()
    reg.histogram("span.data.qp.post").observe(0.5e-6)
    reg.histogram("span.data.nic.wire").observe(2e-6)
    # two op kinds fold into the single "op" row
    reg.histogram("span.data.op.read").observe(5e-6)
    reg.histogram("span.data.op.write").observe(7e-6)
    return reg


def test_layer_breakdown_folds_op_kinds_and_skips_empty_layers():
    rows = layer_breakdown(_registry_with_layers())
    layers = [row[0] for row in rows]
    assert layers == ["qp", "wire", "op"]  # pipeline order, empties gone
    op_row = rows[-1]
    assert op_row[1] == "2"  # read + write envelopes
    assert op_row[-1] == "7.00"  # max in microseconds


def test_layer_breakdown_empty_registry():
    assert layer_breakdown(MetricsRegistry()) == []


def test_call_census_and_baseline_delta():
    reg = MetricsRegistry()
    reg.counter("client.master_calls").inc(4)
    reg.counter("rnic.ops_posted").inc(100)
    before = call_census(reg)
    assert before == {"master_rpcs": 4, "data_ops": 100, "doorbells": 0,
                      "bytes_moved": 0}
    reg.counter("rnic.ops_posted").inc(50)
    steady = call_census(reg, baseline=before)
    assert steady["master_rpcs"] == 0
    assert steady["data_ops"] == 50


def test_format_table_aligns_columns():
    text = format_table("t", ["a", "bb"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert lines[0] == "t"
    assert all(len(line) == len(lines[1]) for line in lines[1:])


def test_format_table_headers_only():
    text = format_table("t", ["col"], [])
    assert "col" in text


def test_format_spans_orders_and_limits():
    sim = Simulator()
    tracer = Tracer(sim, registry=MetricsRegistry()).enable()
    tracer.record("late", start=0.0)
    for i in range(3):
        tracer.record("early", start=0.0, idx=i)
    # spans sort by start time regardless of record order
    text = format_spans(tracer.spans, limit=2)
    assert "... 2 more spans" in text
    assert "name" in text.splitlines()[0]


def test_trace_report_mentions_drops():
    tracer = Tracer(Simulator(), registry=MetricsRegistry(), max_spans=1)
    tracer.enable()
    tracer.record("x", start=0.0)
    tracer.record("y", start=0.0)
    assert "1 spans dropped" in trace_report(tracer)


def test_format_counters_skips_spans_and_histograms():
    reg = MetricsRegistry()
    reg.counter("rnic.ops_posted", host=0).inc(2)
    reg.histogram("other.lat").observe(1e-6)
    reg.histogram("span.data.qp.post").observe(1e-6)
    text = format_counters(reg)
    assert "rnic.ops_posted = 2" in text
    assert "span." not in text
    assert "other.lat" not in text
    assert format_counters(reg, prefixes=("nope.",)) == ""
