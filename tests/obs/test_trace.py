"""The tracer: spans on simulated time, zero-cost when disabled."""

import pytest

from repro.obs import NULL_SPAN, Observability, obs_for
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.simnet.kernel import Simulator


def test_disabled_tracer_hands_out_the_shared_null_span():
    tracer = Tracer(Simulator())
    span = tracer.span("data.op.read")
    assert span is NULL_SPAN
    assert span is tracer.span("data.op.write")  # no allocation per call
    span.finish(ok=True)  # a no-op, never raises
    assert not span
    assert tracer.spans == []


def test_disabled_tracer_records_and_events_are_no_ops():
    registry = MetricsRegistry()
    tracer = Tracer(Simulator(), registry=registry)
    tracer.record("data.qp.post", start=0.0)
    tracer.event("data.retry.replay")
    assert tracer.spans == []
    assert len(registry) == 0  # not even a histogram was registered


def test_span_measures_simulated_time():
    sim = Simulator()
    tracer = Tracer(sim, registry=MetricsRegistry()).enable()

    def app():
        span = tracer.span("data.op.read", trace_id=tracer.next_trace_id(),
                           nbytes=64)
        yield sim.timeout(2.5e-6)
        span.finish(ok=True)

    sim.run(until=sim.process(app()))
    (span,) = tracer.spans
    assert span.duration == pytest.approx(2.5e-6)
    assert span.attrs == {"nbytes": 64, "ok": True}
    assert span.trace_id == 1
    # the duration fed the span histogram
    hist = tracer.registry.merged("span.data.op.read")
    assert hist.count == 1


def test_finish_is_idempotent():
    sim = Simulator()
    tracer = Tracer(sim, registry=MetricsRegistry()).enable()
    span = tracer.span("x")
    span.finish()
    first_end = span.end
    span.finish(late=True)
    assert span.end == first_end
    assert "late" not in span.attrs
    assert len(tracer.spans) == 1


def test_unfinished_span_has_no_duration():
    tracer = Tracer(Simulator()).enable()
    span = tracer.span("x")
    with pytest.raises(ValueError):
        _ = span.duration


def test_buffer_cap_drops_spans_but_keeps_feeding_histograms():
    tracer = Tracer(Simulator(), registry=MetricsRegistry(), max_spans=3)
    tracer.enable()
    for _ in range(5):
        tracer.record("x", start=0.0)
    assert len(tracer.spans) == 3
    assert tracer.dropped == 2
    assert tracer.registry.merged("span.x").count == 5
    tracer.clear()
    assert tracer.spans == [] and tracer.dropped == 0


def test_obs_for_is_one_context_per_simulator():
    sim_a, sim_b = Simulator(), Simulator()
    ctx_a = obs_for(sim_a)
    assert obs_for(sim_a) is ctx_a
    assert obs_for(sim_b) is not ctx_a
    assert isinstance(ctx_a, Observability)
    # the tracer feeds that same simulation's registry
    assert ctx_a.tracer.registry is ctx_a.metrics
