"""The metrics registry: counters, gauges, log-bucketed histograms."""

import math

import pytest

from repro.obs.metrics import Histogram, MetricsRegistry


def test_counter_counts_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("x.ops", host=1)
    c.inc()
    c.inc(5)
    assert c.value == 6
    with pytest.raises(ValueError):
        c.inc(-1)


def test_same_name_and_labels_share_one_instrument():
    reg = MetricsRegistry()
    assert reg.counter("x.ops", host=1) is reg.counter("x.ops", host=1)
    assert reg.counter("x.ops", host=1) is not reg.counter("x.ops", host=2)


def test_name_is_usable_as_a_label_key():
    reg = MetricsRegistry()
    c = reg.counter("lock.acquisitions", name="mutex", host=0)
    c.inc()
    assert reg.total("lock.acquisitions") == 1


def test_total_sums_across_label_sets():
    reg = MetricsRegistry()
    reg.counter("x.ops", host=1).inc(3)
    reg.counter("x.ops", host=2).inc(4)
    assert reg.total("x.ops") == 7
    assert len(reg.series("x.ops")) == 2


def test_kind_conflict_rejected():
    reg = MetricsRegistry()
    reg.counter("x.ops")
    with pytest.raises(TypeError):
        reg.gauge("x.ops")
    with pytest.raises(TypeError):
        reg.histogram("x.ops")


def test_total_of_histogram_rejected():
    reg = MetricsRegistry()
    reg.histogram("x.lat").observe(1.0)
    with pytest.raises(TypeError):
        reg.total("x.lat")


def test_gauge_moves_both_ways():
    reg = MetricsRegistry()
    g = reg.gauge("x.inflight")
    g.add(5)
    g.add(-2)
    assert g.value == 3
    g.set(0)
    assert g.value == 0


def test_get_never_creates():
    reg = MetricsRegistry()
    assert reg.get("x.ops") is None
    made = reg.counter("x.ops")
    assert reg.get("x.ops") is made
    assert len(reg) == 1


def test_histogram_quantiles_within_relative_error():
    h = Histogram("lat", ())
    values = [i * 1e-6 for i in range(1, 1001)]
    for v in values:
        h.observe(v)
    # exact extremes, bounded relative error in between
    assert h.percentile(0) == 1e-6
    assert h.percentile(100) == 1000e-6
    for q in (50, 95, 99):
        exact = values[math.ceil(len(values) * q / 100) - 1]
        assert h.percentile(q) == pytest.approx(exact, rel=0.05)
    assert h.count == 1000
    assert h.mean == pytest.approx(sum(values) / len(values))


def test_histogram_empty_and_tiny_values():
    h = Histogram("lat", ())
    with pytest.raises(ValueError):
        h.percentile(50)
    with pytest.raises(ValueError):
        h.summary()
    h.observe(0.0)  # at/below the smallest bound: bucket 0
    assert h.percentile(50) == 0.0
    with pytest.raises(ValueError):
        h.observe(-1.0)


def test_histogram_single_sample_summary():
    h = Histogram("lat", ())
    h.observe(3e-6)
    s = h.summary()
    assert s.count == 1
    assert s.minimum == s.maximum == 3e-6
    # quantiles clamp to the observed extremes
    assert s.p50 == s.p99 == 3e-6


def test_merged_folds_label_sets():
    reg = MetricsRegistry()
    reg.histogram("x.lat", host=1).observe(1e-6)
    reg.histogram("x.lat", host=2).observe(2e-6)
    merged = reg.merged("x.lat")
    assert merged.count == 2
    assert merged.minimum == 1e-6
    assert merged.maximum == 2e-6
    with pytest.raises(KeyError):
        reg.merged("nope")


def test_merge_rejects_different_scales():
    a = Histogram("x", (), smallest=1e-9)
    b = Histogram("x", (), smallest=1e-6)
    with pytest.raises(ValueError):
        a.merge(b)


def test_snapshot_is_plain_data():
    reg = MetricsRegistry()
    reg.counter("x.ops", host=1).inc(2)
    reg.histogram("x.lat").observe(5e-6)
    snap = reg.snapshot()
    assert snap["x.ops"]["host=1"] == 2
    count, mean, _p50, _p99, maximum = snap["x.lat"]["-"]
    assert count == 1 and mean == 5e-6 and maximum == 5e-6
