"""Clean-run guarantees over the pinned harness seed matrix.

Two promises, checked per seed:

* the randomized schedule (single sequential client) produces **zero**
  race reports under the sanitizer;
* enabling the sanitizer is observationally free — results, final
  store image, and the simulated clock are bit-identical with it on
  and off.  RSan only reads the simulation (it keeps its own clocks in
  vector space, never the sim's), so it must not perturb anything.
"""

import pytest

from tests.harness.schedule import SEEDS, run_schedule


@pytest.mark.parametrize("seed", SEEDS)
def test_schedule_is_race_free(seed):
    digest = run_schedule(seed, sanitize=True)
    assert digest["races"] == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_sanitizer_is_observationally_free(seed):
    plain = run_schedule(seed, sanitize=False)
    sanitized = run_schedule(seed, sanitize=True)
    assert sanitized["results"] == plain["results"]
    assert sanitized["final"] == plain["final"]
    assert sanitized["now"] == plain["now"]
    assert sanitized["ops"] == plain["ops"]
