"""Shadow-state teardown: unmap and free must retire RSan intervals.

The arena is a first-fit free list with coalescing, so a freed
region's addresses ARE handed to the next allocation.  Without the
teardown hooks in ``Mapping.unmap`` and ``Master._free``, stale shadow
records from the old region's writers would collide with the new
region's writers — a false race on recycled bytes.
"""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB


@pytest.fixture
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=8 * KiB, sanitize=True),
        server_capacity=16 * MiB,
    )


def _shadow_records(rsan, actor=None):
    records = [a for accesses in rsan.shadow.values() for a in accesses]
    if actor is not None:
        records = [a for a in records if a.actor == actor]
    return records


def test_unmap_clears_only_that_clients_records(cluster):
    rsan = rsan_for(cluster.sim)

    def app():
        c1, c2 = cluster.client(1), cluster.client(2)
        yield from c1.alloc("shared", 64 * KiB)
        m1 = yield from c1.map("shared")
        m2 = yield from c2.map("shared")
        yield from m1.write(0, b"a" * 256)
        yield from m2.write(4096, b"b" * 256)
        assert _shadow_records(rsan, actor=1)
        assert _shadow_records(rsan, actor=2)
        m1.unmap()
        assert not _shadow_records(rsan, actor=1)
        assert _shadow_records(rsan, actor=2)  # untouched
        return True

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()


def test_unmap_silences_would_be_race(cluster):
    """Behavioral check: after client 1 unmaps, client 2 may write the
    same bytes client 1 wrote — the region handoff is via unmap, not a
    sync edge, and the sanitizer must honor it."""
    rsan = rsan_for(cluster.sim)

    def app():
        c1, c2 = cluster.client(1), cluster.client(2)
        yield from c1.alloc("handoff", 64 * KiB)
        m1 = yield from c1.map("handoff")
        m2 = yield from c2.map("handoff")
        yield from m1.write(0, b"a" * 256)
        m1.unmap()
        yield from m2.write(0, b"b" * 256)
        return True

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()


def test_free_and_realloc_recycled_range_is_silent(cluster):
    rsan = rsan_for(cluster.sim)

    def app():
        c1, c2, c3 = (cluster.client(i) for i in (1, 2, 3))
        yield from c1.alloc("a", 64 * KiB)
        m2 = yield from c2.map("a")
        yield from m2.write(0, b"x" * 8192)
        assert _shadow_records(rsan)
        yield from c1.free("a")
        assert not _shadow_records(rsan)  # _free swept every actor
        # first-fit: "b" reuses the exact address range "a" occupied
        yield from c1.alloc("b", 64 * KiB)
        m3 = yield from c3.map("b")
        yield from m3.write(0, b"y" * 8192)
        return True

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()


def test_race_before_free_is_still_kept(cluster):
    """Teardown retires *shadow* state, not already-filed reports."""
    rsan = rsan_for(cluster.sim)

    def app():
        c1, c2 = cluster.client(1), cluster.client(2)
        yield from c1.alloc("r", 64 * KiB)
        m1 = yield from c1.map("r")
        m2 = yield from c2.map("r")
        yield from m1.write(0, b"a" * 64)
        yield from m2.write(0, b"b" * 64)
        m1.unmap()
        m2.unmap()
        yield from c1.free("r")
        return True

    cluster.run_app(app())
    assert len(rsan.races) == 1, rsan.report()
