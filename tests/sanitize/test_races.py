"""The seeded-race matrix: RSan must catch every planted race.

Each test builds a small sanitized cluster, drives a deliberately
unsynchronized (or deliberately synchronized) access pattern from two
clients, and asserts on ``rsan.races``: planted races are reported
**exactly once** with both access sites, and properly synchronized
variants of the same pattern stay silent.

Why a sequential driver still races: happens-before only flows through
real synchronization.  Client 1's last control-path call (its ``map``)
precedes its writes, so nothing it later does is published to client 2
— issuing the accesses one after another from one test generator does
not order them.
"""

import pytest

from repro.cluster import build_cluster
from repro.coord import RemoteLock, SenseBarrier
from repro.core import RStoreConfig
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB


@pytest.fixture
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=8 * KiB, sanitize=True),
        server_capacity=16 * MiB,
    )


def _two_mappings(cluster, size=64 * KiB, name="race"):
    c1, c2 = cluster.client(1), cluster.client(2)
    yield from c1.alloc(name, size)
    m1 = yield from c1.map(name)
    m2 = yield from c2.map(name)
    return c1, c2, m1, m2


def test_write_write_race_reported_once_with_both_sites(cluster):
    rsan = rsan_for(cluster.sim)

    def app():
        _c1, _c2, m1, m2 = yield from _two_mappings(cluster)
        yield from m1.write(0, b"a" * 100)
        yield from m2.write(50, b"b" * 100)  # overlaps, no sync
        return True

    cluster.run_app(app())
    assert len(rsan.races) == 1, rsan.report()
    race = rsan.races[0]
    assert {race.first.kind, race.second.kind} == {"write"}
    assert {race.first.actor, race.second.actor} == {1, 2}
    sites = {race.first.site, race.second.site}
    assert all("test_races.py" in site for site in sites)
    assert len(sites) == 2  # two distinct source lines


def test_striped_race_still_reported_exactly_once(cluster):
    """One logical race spanning several stripes/hosts is one report."""
    rsan = rsan_for(cluster.sim)

    def app():
        # 40 KiB writes at 8 KiB stripes span 5+ stripes across hosts
        _c1, _c2, m1, m2 = yield from _two_mappings(cluster)
        yield from m1.write(0, b"a" * 40_000)
        yield from m2.write(1_000, b"b" * 40_000)
        return True

    cluster.run_app(app())
    assert len(rsan.races) == 1, rsan.report()


def test_read_write_race_under_missing_barrier(cluster):
    rsan = rsan_for(cluster.sim)

    def app():
        _c1, _c2, m1, m2 = yield from _two_mappings(cluster)
        yield from m1.write(64, b"x" * 64)
        yield from m2.read(64, 64)  # nothing orders this after the write
        return True

    cluster.run_app(app())
    assert len(rsan.races) == 1, rsan.report()
    kinds = {rsan.races[0].first.kind, rsan.races[0].second.kind}
    assert kinds == {"read", "write"}


def test_barrier_orders_the_same_read_write(cluster):
    """The same pattern with a barrier between the phases is silent."""
    rsan = rsan_for(cluster.sim)
    sim = cluster.sim

    def writer(c1, m1, barrier):
        yield from m1.write(64, b"x" * 64)
        yield from barrier.wait()

    def reader(c2, m2, barrier):
        yield from barrier.wait()
        data = yield from m2.read(64, 64)
        assert data == b"x" * 64

    def app():
        c1, c2, m1, m2 = yield from _two_mappings(cluster)
        b1 = yield from SenseBarrier.create(c1, "phase", parties=2)
        b2 = yield from SenseBarrier.open(c2, "phase", parties=2)
        procs = [sim.process(writer(c1, m1, b1)),
                 sim.process(reader(c2, m2, b2))]
        yield sim.all_of(procs)
        return True

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()


def test_faa_vs_plain_write_race(cluster):
    rsan = rsan_for(cluster.sim)

    def app():
        _c1, _c2, m1, m2 = yield from _two_mappings(cluster)
        yield from m1.faa(0, 1)        # raw atomic on word 0
        yield from m2.write(0, b"\x00" * 8)  # plain write, same word
        return True

    cluster.run_app(app())
    assert len(rsan.races) == 1, rsan.report()
    kinds = {rsan.races[0].first.kind, rsan.races[0].second.kind}
    assert kinds == {"atomic", "write"}


def test_atomic_atomic_is_not_a_race(cluster):
    """Concurrent FAAs serialize in the remote NIC: never a race."""
    rsan = rsan_for(cluster.sim)

    def app():
        _c1, _c2, m1, m2 = yield from _two_mappings(cluster)
        yield from m1.faa(0, 1)
        yield from m2.faa(0, 1)
        return True

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()


def test_lock_protected_writes_are_silent(cluster):
    rsan = rsan_for(cluster.sim)

    def app():
        c1, c2, m1, m2 = yield from _two_mappings(cluster)
        lock1 = yield from RemoteLock.create(c1, "mutex")
        lock2 = yield from RemoteLock.open(c2, "mutex")
        yield from lock1.acquire()
        yield from m1.write(0, b"a" * 100)
        yield from lock1.release()
        yield from lock2.acquire()
        yield from m2.write(50, b"b" * 100)
        yield from lock2.release()
        return True

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()


def test_future_dropped_under_lock_still_races(cluster):
    """A lock release does NOT cover an op nobody waited on.

    This is the dynamic twin of repro-lint RL003: the release
    publishes only the *acked* watermark, so a ``write_async`` whose
    future was not awaited before ``release()`` stays concurrent with
    the next holder's accesses — and is reported.
    """
    rsan = rsan_for(cluster.sim)

    def app():
        c1, c2, m1, m2 = yield from _two_mappings(cluster)
        lock1 = yield from RemoteLock.create(c1, "mutex")
        lock2 = yield from RemoteLock.open(c2, "mutex")
        yield from lock1.acquire()
        fut = yield from m1.write_async(0, b"a" * 100)
        yield from lock1.release()  # BUG: fut not awaited
        yield from lock2.acquire()
        yield from m2.write(50, b"b" * 100)
        yield from lock2.release()
        yield from fut.wait()  # drained after the damage is done
        return True

    cluster.run_app(app())
    assert len(rsan.races) == 1, rsan.report()


def test_future_waited_under_lock_is_silent(cluster):
    """The fixed variant: wait before release, and the race is gone."""
    rsan = rsan_for(cluster.sim)

    def app():
        c1, c2, m1, m2 = yield from _two_mappings(cluster)
        lock1 = yield from RemoteLock.create(c1, "mutex")
        lock2 = yield from RemoteLock.open(c2, "mutex")
        yield from lock1.acquire()
        fut = yield from m1.write_async(0, b"a" * 100)
        yield from fut.wait()
        yield from lock1.release()
        yield from lock2.acquire()
        yield from m2.write(50, b"b" * 100)
        yield from lock2.release()
        return True

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()


def test_same_client_never_races_itself(cluster):
    rsan = rsan_for(cluster.sim)

    def app():
        c1 = cluster.client(1)
        yield from c1.alloc("solo", 64 * KiB)
        m1 = yield from c1.map("solo")
        yield from m1.write(0, b"a" * 100)
        yield from m1.write(50, b"b" * 100)
        data = yield from m1.read(0, 150)
        assert data == b"a" * 50 + b"b" * 100
        return True

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()


def test_report_formats_both_sites(cluster):
    rsan = rsan_for(cluster.sim)

    def app():
        _c1, _c2, m1, m2 = yield from _two_mappings(cluster)
        yield from m1.write(0, b"a" * 16)
        yield from m2.write(0, b"b" * 16)
        return True

    cluster.run_app(app())
    text = rsan.report()
    assert "1 data race(s)" in text
    assert text.count("test_races.py") == 2
    assert "write by client 1" in text and "write by client 2" in text
