"""RSan learns transaction commits as happens-before edges.

A committed transaction orders memory: its validated snapshot
happens-after the writers that published it, and everything its client
did before the commit point is published to later validated readers.
An *aborted* transaction orders nothing — its snapshot never became
part of any history.

Each test plants the same raw-write/raw-write pair on a scratch
region and varies only the transactional traffic between them: with a
commit edge in the middle the pair is ordered (silence), without one
it races (exactly one report).
"""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.kv import RKVStore
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB
from repro.txn import TxnConflictError


@pytest.fixture
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=8 * KiB, sanitize=True),
        server_capacity=16 * MiB,
    )


def _scene(cluster):
    """Scratch mappings for clients 1/2 plus a table owned by client 1."""
    c1, c2 = cluster.client(1), cluster.client(2)
    yield from c1.alloc("scratch", 8 * KiB)
    m1 = yield from c1.map("scratch")
    m2 = yield from c2.map("scratch")
    store = yield from RKVStore.create(c1, "edges", slots=32)
    yield from store.put(b"k1", b"0")
    view = yield from RKVStore.open(c2, "edges")
    return c1, c2, m1, m2, store, view


def test_commit_edge_orders_raw_accesses(cluster):
    """Writer commits, reader's transaction validates the published
    version: the read-set join carries the writer's *whole* clock, so
    the raw writes on either side are ordered."""
    rsan = rsan_for(cluster.sim)

    def app():
        _c1, _c2, m1, m2, store, view = yield from _scene(cluster)
        yield from m1.write(0, b"A" * 64)  # client 1, before its commit

        def bump(txn):
            value = int((yield from txn.get(store, b"k1")))
            yield from txn.put(store, b"k1", str(value + 1).encode())

        yield from store.txn(label="writer").run(bump)

        def audit(txn):
            return (yield from txn.get(view, b"k1"))

        value = yield from view.txn(label="reader").run(audit)
        assert value == b"1"
        yield from m2.write(32, b"B" * 64)  # overlaps; ordered via txn

    cluster.run_app(app())
    assert rsan.races == [], rsan.report()
    assert rsan.txn_commits == 2
    assert rsan.txn_aborts == 0


def test_without_the_txn_read_the_same_pair_races(cluster):
    """Control: drop the reader's transaction and the raw pair has no
    ordering edge — exactly one report, same sites as ever."""
    rsan = rsan_for(cluster.sim)

    def app():
        _c1, _c2, m1, m2, store, _view = yield from _scene(cluster)
        yield from m1.write(0, b"A" * 64)

        def bump(txn):
            value = int((yield from txn.get(store, b"k1")))
            yield from txn.put(store, b"k1", str(value + 1).encode())

        yield from store.txn(label="writer").run(bump)
        yield from m2.write(32, b"B" * 64)  # nobody joined the commit

    cluster.run_app(app())
    assert len(rsan.races) == 1, rsan.report()
    race = rsan.races[0]
    assert {race.first.actor, race.second.actor} == {1, 2}
    assert rsan.txn_commits == 1


def test_aborted_transaction_publishes_no_edges(cluster):
    """An aborted commit must not order anything: the intent lock was
    rolled back and the snapshot discarded, so the surrounding raw
    writes still race."""
    rsan = rsan_for(cluster.sim)

    def app():
        _c1, _c2, m1, m2, store, view = yield from _scene(cluster)
        yield from m1.write(0, b"A" * 64)
        runtime = store.txn(label="loser")
        txn = runtime.begin()
        value = yield from txn.get(store, b"k1")
        yield from txn.put(store, b"k1", value + b"!")
        # client 2 beats the commit to the slot: the CAS must fail and
        # the transaction abort without publishing an edge
        yield from view.put(b"k1", b"raced")
        with pytest.raises(TxnConflictError):
            yield from txn.commit()
        yield from m2.write(32, b"B" * 64)

    cluster.run_app(app())
    assert len(rsan.races) == 1, rsan.report()
    assert rsan.txn_commits == 0
    assert rsan.txn_aborts == 1
