"""RStoreConfig validation and defaults."""

import pytest

from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB


def test_defaults_match_design_doc():
    config = RStoreConfig()
    assert config.master_host == 0
    assert config.stripe_size == 1 * MiB
    assert config.allocation_policy == "round_robin"
    assert config.default_replication == 1
    assert not config.resolve_per_io
    assert not config.two_sided_data_path


def test_invalid_stripe_size_rejected():
    with pytest.raises(ValueError):
        RStoreConfig(stripe_size=0)
    with pytest.raises(ValueError):
        RStoreConfig(stripe_size=-4096)


def test_invalid_policy_rejected():
    with pytest.raises(ValueError, match="policy"):
        RStoreConfig(allocation_policy="first-touch")


def test_all_policies_accepted():
    for policy in ("round_robin", "random", "spread"):
        assert RStoreConfig(allocation_policy=policy).allocation_policy == policy


def test_ablation_flags_independent():
    config = RStoreConfig(resolve_per_io=True)
    assert config.resolve_per_io and not config.two_sided_data_path
    config = RStoreConfig(two_sided_data_path=True)
    assert config.two_sided_data_path and not config.resolve_per_io


def test_window_and_chunk_defaults():
    config = RStoreConfig()
    assert config.data_window_per_qp == 8
    assert config.max_wire_chunk == 1 * MiB
    assert config.issue_overhead_s > 0
