"""Replication extension: fan-out writes, replica promotion, failover.

Replication is this reproduction's availability extension (the paper's
store is volatile, single-copy).  Semantics pinned here:

* writes land on every replica, reads on the primary;
* when a server dies, stripes with surviving replicas are promoted and
  the region stays available (new descriptor version);
* data written before the failure is readable after re-mapping;
* a region loses availability only when some stripe loses *all* copies.
"""

import pytest

from repro.core import RegionUnavailableError, RStoreConfig, RStoreError
from repro.cluster import build_cluster
from repro.simnet.config import KiB, MiB


def fresh_cluster(machines=5):
    return build_cluster(
        num_machines=machines,
        config=RStoreConfig(stripe_size=64 * KiB, heartbeat_interval_s=0.02,
                            lease_timeout_s=0.07),
        server_capacity=64 * MiB,
    )


def test_replicated_alloc_places_distinct_copies():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("r2", 256 * KiB, replication=2)
        return region

    region = cluster.run_app(app())
    assert region.replication == 2
    for stripe in region.stripes:
        hosts = [r.host_id for r in stripe.replicas]
        assert len(set(hosts)) == 2


def test_write_lands_on_every_replica():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("mirrored", 64 * KiB, replication=2)
        mapping = yield from client.map(region)
        yield from mapping.write(100, b"both-copies")
        stripe = region.stripes[0]
        views = []
        for replica in stripe.replicas:
            arena_mr = cluster.servers[replica.host_id].arena_mr
            offset = arena_mr.offset_of(replica.addr)
            views.append(arena_mr.buffer.read(offset + 100, 11))
        return views

    views = cluster.run_app(app())
    assert views == [b"both-copies", b"both-copies"]


def test_read_after_primary_death_via_promotion():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def setup():
        # 4 stripes -> primaries land on hosts 0..3, so a victim that is
        # neither master (0) nor an involved client (1, 2) always exists
        region = yield from client.alloc("durable", 256 * KiB, replication=2)
        mapping = yield from client.map(region)
        yield from mapping.write(0, b"survives failure")
        return region

    region = cluster.run_app(setup())
    victim = next(
        h for h in (s.primary.host_id for s in region.stripes)
        if h not in (cluster.config.master_host, 1, 2)
    )
    cluster.kill_server(victim)
    cluster.run(until=cluster.sim.now + 0.5)

    master_copy = cluster.master.regions["durable"]
    assert master_copy.available
    # promotion bumps the version once; background repair of the
    # degraded stripes bumps it again per re-replicated copy
    assert master_copy.version > region.version
    assert all(
        victim not in [r.host_id for r in s.replicas]
        for s in master_copy.stripes
    )

    def read_back():
        mapping = yield from cluster.client(2).map("durable")
        data = yield from mapping.read(0, 16)
        return data

    assert cluster.run_app(read_back()) == b"survives failure"


def test_unreplicated_region_still_dies_with_its_server():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def setup():
        region = yield from client.alloc("fragile", 192 * KiB)
        return region

    region = cluster.run_app(setup())
    victim = next(
        h for h in region.hosts if h not in (cluster.config.master_host, 1)
    )
    cluster.kill_server(victim)
    cluster.run(until=cluster.sim.now + 0.5)
    assert not cluster.master.regions["fragile"].available


def test_atomics_rejected_on_replicated_regions():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("no-atomics", 64 * KiB,
                                         replication=2)
        mapping = yield from client.map(region)
        with pytest.raises(RStoreError, match="atomic"):
            yield from mapping.faa(0, 1)

    cluster.run_app(app())


def test_replicated_write_costs_more_than_single():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        r1 = yield from client.alloc("w1", 1 * MiB)
        r2 = yield from client.alloc("w2", 1 * MiB, replication=3)
        m1 = yield from client.map(r1)
        m2 = yield from client.map(r2)
        local = yield from client.alloc_local(1 * MiB)

        t0 = cluster.sim.now
        yield from m1.write_from(local, local.addr, 0, 1 * MiB)
        single = cluster.sim.now - t0
        t1 = cluster.sim.now
        yield from m2.write_from(local, local.addr, 0, 1 * MiB)
        triple = cluster.sim.now - t1
        return single, triple

    single, triple = cluster.run_app(app())
    # three copies leave the same egress link: ~3x the wire time
    assert 2.0 * single < triple < 4.5 * single


def test_read_cost_unaffected_by_replication():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        r1 = yield from client.alloc("rd1", 1 * MiB)
        r2 = yield from client.alloc("rd2", 1 * MiB, replication=2)
        m1 = yield from client.map(r1)
        m2 = yield from client.map(r2)
        local = yield from client.alloc_local(1 * MiB)
        yield from m1.read_into(local, local.addr, 0, 1 * MiB)  # warm
        yield from m2.read_into(local, local.addr, 0, 1 * MiB)  # warm

        t0 = cluster.sim.now
        yield from m1.read_into(local, local.addr, 0, 1 * MiB)
        single = cluster.sim.now - t0
        t1 = cluster.sim.now
        yield from m2.read_into(local, local.addr, 0, 1 * MiB)
        replicated = cluster.sim.now - t1
        return single, replicated

    single, replicated = cluster.run_app(app())
    assert replicated == pytest.approx(single, rel=0.5)


def test_free_returns_capacity_for_all_copies():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        before = yield from client._master_call("cluster_stats")
        yield from client.alloc("acct", 256 * KiB, replication=2)
        during = yield from client._master_call("cluster_stats")
        yield from client.free("acct")
        after = yield from client._master_call("cluster_stats")
        return before, during, after

    before, during, after = cluster.run_app(app())
    assert before["total_free"] - during["total_free"] == 2 * 256 * KiB
    assert after["total_free"] == before["total_free"]
