"""Unit and property tests for the server arena allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arena import Arena
from repro.core.errors import OutOfMemoryError, RStoreError


def test_reserve_release_roundtrip():
    arena = Arena(base=0x1000, capacity=1000, alignment=1)
    addr = arena.reserve(100)
    assert addr == 0x1000
    assert arena.free_bytes == 900
    assert arena.release(addr) == 100
    assert arena.free_bytes == 1000


def test_reservations_are_aligned():
    arena = Arena(base=0x1000, capacity=4096, alignment=64)
    a = arena.reserve(100)  # rounds to 128
    b = arena.reserve(10)
    assert a % 64 == 0 and b % 64 == 0
    assert b == a + 128


def test_misaligned_base_rejected():
    with pytest.raises(ValueError):
        Arena(base=3, capacity=100, alignment=64)


def test_reservations_do_not_overlap():
    arena = Arena(base=0, capacity=1000, alignment=1)
    spans = []
    for _ in range(10):
        addr = arena.reserve(100)
        spans.append((addr, addr + 100))
    spans.sort()
    for (_s1, e1), (s2, _e2) in zip(spans, spans[1:]):
        assert e1 <= s2


def test_out_of_memory_raises():
    arena = Arena(base=0, capacity=100, alignment=1)
    arena.reserve(60)
    with pytest.raises(OutOfMemoryError):
        arena.reserve(50)


def test_fragmentation_then_coalesce():
    arena = Arena(base=0, capacity=300, alignment=1)
    a = arena.reserve(100)
    b = arena.reserve(100)
    c = arena.reserve(100)
    arena.release(a)
    arena.release(c)
    # two 100-byte holes, not adjacent: a 200-byte reservation must fail
    with pytest.raises(OutOfMemoryError):
        arena.reserve(200)
    arena.release(b)
    # now everything coalesced back into one extent
    assert arena.reserve(300) == 0


def test_release_unknown_address_rejected():
    arena = Arena(base=0, capacity=100, alignment=1)
    with pytest.raises(RStoreError):
        arena.release(50)


def test_double_release_rejected():
    arena = Arena(base=0, capacity=100, alignment=1)
    addr = arena.reserve(10)
    arena.release(addr)
    with pytest.raises(RStoreError):
        arena.release(addr)


def test_invalid_sizes_rejected():
    with pytest.raises(ValueError):
        Arena(base=0, capacity=0)
    arena = Arena(base=0, capacity=10, alignment=1)
    with pytest.raises(ValueError):
        arena.reserve(0)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=64)),
        max_size=60,
    )
)
def test_arena_invariants_hold_under_any_sequence(ops):
    """Property: accounting exact, no overlap, full coalescing on drain."""
    capacity = 1024
    arena = Arena(base=0x10, capacity=capacity, alignment=1)
    live: list[int] = []
    expected_used = 0
    for is_alloc, size in ops:
        if is_alloc:
            try:
                addr = arena.reserve(size)
            except OutOfMemoryError:
                continue
            live.append(addr)
            expected_used += size
        elif live:
            addr = live.pop()
            expected_used -= arena.release(addr)
        assert arena.used_bytes == expected_used
        assert arena.free_bytes == capacity - expected_used
    for addr in live:
        arena.release(addr)
    assert arena.free_bytes == capacity
    assert arena.live_allocations == 0
    # fully coalesced: the whole capacity is reservable again
    assert arena.reserve(capacity) == 0x10
