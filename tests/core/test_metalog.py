"""The metadata write-ahead log: append, checkpoint, replay.

Unit-level guarantees the crash-recovery protocol leans on:

* records are serialized **at append time** — mutating the live object
  afterwards cannot reach the log, which is what makes append-before-
  reply a real commit point;
* replay folds the tail over the checkpoint: region upserts, frees
  that delete (and never resurrect), server membership upserts, and a
  monotonic epoch;
* checkpointing truncates the tail and survives replay;
* ``next_region_id`` is re-derived past every replayed region so a
  restarted master never reuses an id;
* every append charges its fsync latency on the simulated clock.
"""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.metalog import MetaLog, RecoveredState
from repro.core.region import RegionDesc, StripeDesc, StripeReplica
from repro.simnet.config import KiB, MiB
from repro.simnet.kernel import Simulator

APPEND_S = 5e-6


def _region(name: str, region_id: int = 1, epoch: int = 0) -> RegionDesc:
    return RegionDesc(
        region_id=region_id,
        name=name,
        size=64,
        stripe_size=64,
        stripes=[
            StripeDesc(
                index=0, length=64,
                replicas=(StripeReplica(host_id=1, addr=4096, rkey=7),),
            )
        ],
        epoch=epoch,
    )


def _drive(sim: Simulator, generator):
    return sim.run(until=sim.process(generator))


def test_append_replay_round_trip():
    sim = Simulator()
    log = MetaLog(sim, append_latency_s=APPEND_S)

    def writer():
        yield from log.append("region", _region("a", region_id=3))
        yield from log.append("server", (2, 4096, 11, 0, True))
        yield from log.append("epoch", 1)
        yield from log.append("server", (2, 4096, 11, 1, False))
        yield from log.append("epoch", 2)

    _drive(sim, writer())
    state = log.replay()
    assert sorted(state.regions) == ["a"]
    assert state.regions["a"].region_id == 3
    assert state.servers == {2: (4096, 11, 1, False)}
    assert state.epoch == 2
    assert state.next_region_id == 4
    assert log.appends == 5 and log.replays == 1


def test_records_are_serialized_at_append_time():
    sim = Simulator()
    log = MetaLog(sim)
    region = _region("mutable", epoch=0)

    def writer():
        yield from log.append("region", region)

    _drive(sim, writer())
    # the master moves on after replying; the log must not follow
    region.epoch = 9
    region.available = False
    replayed = log.replay().regions["mutable"]
    assert replayed.epoch == 0
    assert replayed.available
    # and the replayed copy is safe to mutate without touching the log
    replayed.version = 99
    assert log.replay().regions["mutable"].version == 1


def test_replay_upserts_the_latest_region_snapshot():
    sim = Simulator()
    log = MetaLog(sim)
    old = _region("r", epoch=0)
    new = _region("r", epoch=2)
    new.version = 4

    def writer():
        yield from log.append("region", old)
        yield from log.append("region", new)

    _drive(sim, writer())
    state = log.replay()
    assert state.regions["r"].epoch == 2
    assert state.regions["r"].version == 4


def test_free_deletes_and_never_resurrects():
    sim = Simulator()
    log = MetaLog(sim, checkpoint_every=1)

    def writer():
        yield from log.append("region", _region("doomed"))
        # checkpoint captures the region...
        yield from log.maybe_checkpoint(
            RecoveredState(regions={"doomed": _region("doomed")})
        )
        # ...and the free lands in the tail afterwards
        yield from log.append("free", "doomed")

    _drive(sim, writer())
    state = log.replay()
    assert "doomed" not in state.regions


def test_checkpoint_truncates_the_tail():
    sim = Simulator()
    log = MetaLog(sim, checkpoint_every=2)

    def writer():
        yield from log.append("region", _region("a", region_id=1))
        yield from log.append("region", _region("b", region_id=2))
        yield from log.maybe_checkpoint(RecoveredState(
            regions={"a": _region("a", region_id=1),
                     "b": _region("b", region_id=2)},
            epoch=1,
        ))
        # below the threshold: no new checkpoint
        yield from log.append("region", _region("c", region_id=3))
        yield from log.maybe_checkpoint(RecoveredState())

    _drive(sim, writer())
    assert log.checkpoints == 1
    assert len(log) == 1  # only the post-checkpoint tail survives
    state = log.replay()
    assert sorted(state.regions) == ["a", "b", "c"]
    assert state.epoch == 1
    assert state.next_region_id == 4


def test_append_charges_fsync_latency():
    sim = Simulator()
    log = MetaLog(sim, append_latency_s=APPEND_S)

    def writer():
        before = sim.now
        yield from log.append("epoch", 1)
        return sim.now - before

    elapsed = _drive(sim, writer())
    assert elapsed == pytest.approx(APPEND_S)


def test_replay_of_an_empty_log_is_a_clean_boot():
    log = MetaLog(Simulator())
    state = log.replay()
    assert state.regions == {} and state.servers == {}
    assert state.epoch == 0 and state.next_region_id == 1
    # an empty log is still falsy by length — the master must adopt it
    # anyway (regression guard for the shared-log wiring)
    assert len(log) == 0 and not log._tail


def test_checkpoint_at_the_commit_point_loses_no_region():
    """Regression: the checkpoint must not eat the record that trips it.

    ``_alloc`` appends the region record *before* inserting it into
    ``self.regions``.  The master used to checkpoint right after each
    append — so a checkpoint tripped by an alloc's own record would
    snapshot state without that region and then truncate its record:
    one region silently lost per checkpoint boundary.  Checkpointing
    before the append closes the window.
    """
    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB,
                            metalog_checkpoint_every=4),
        server_capacity=16 * MiB,
    )
    names = [f"r{i}" for i in range(12)]

    def app():
        client = cluster.client(1)
        for name in names:
            yield from client.alloc(name, 64 * KiB)
        assert cluster.metalog.checkpoints >= 2  # truncation happened
        cluster.master.crash()
        yield from cluster.restart_master()
        survivors = yield from client.list_regions()
        assert survivors == sorted(names)

    cluster.run_app(app())


def test_note_records_replay_as_rendezvous_state():
    sim = Simulator()
    log = MetaLog(sim)

    def writer():
        yield from log.append("note", ("kv.t.meta", {"slots": 8}))
        yield from log.append("note", ("kv.t.meta", {"slots": 16}))

    _drive(sim, writer())
    state = log.replay()
    assert state.notes == {"kv.t.meta": {"slots": 16}}  # last write wins


def test_notes_survive_a_master_crash():
    """Regression: notes used to live only in master memory, so a
    crash silently dropped every published rendezvous payload —
    ``RKVStore.open`` after a restart then waited on ``kv.<name>.meta``
    forever.  A note is a logged mutation like any descriptor: replay
    must restore it, and the checkpoint path must carry it too."""
    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB,
                            metalog_checkpoint_every=4),
        server_capacity=16 * MiB,
    )

    def app():
        client = cluster.client(1)
        yield from client.notify("early", {"k": 1})
        # push the early note through a checkpoint + truncation
        for i in range(8):
            yield from client.alloc(f"r{i}", 64 * KiB)
        yield from client.notify("late", {"k": 2})
        cluster.master.crash()
        yield from cluster.restart_master()
        # both eras of note — checkpointed and tail-replayed — serve
        early = yield from client.wait_note("early")
        late = yield from client.wait_note("late")
        assert early == {"k": 1}
        assert late == {"k": 2}

    cluster.run_app(app())


def test_unknown_record_kind_is_rejected():
    sim = Simulator()
    log = MetaLog(sim)

    def writer():
        yield from log.append("gibberish", 42)

    _drive(sim, writer())
    with pytest.raises(ValueError, match="unknown metalog record"):
        log.replay()
