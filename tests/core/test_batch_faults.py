"""Fault injection on the batched data path.

A wire fault inside a doorbell batch errors one work request; RC
ordering flushes everything behind it in the same batch.  The client
must replay only the failed/flushed pieces, leave already-retired ops
untouched, and resolve every future — deterministically under a fixed
seed.
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

_N = 64
_OP_BYTES = 2 * KiB


def _run_faulted_batch():
    """One full scenario; returns everything a caller might assert on."""
    faults = FaultInjector(seed=23)
    # faults on the *client's* NIC hit every data QP it owns
    faults.fail_wire(1, start=1.0, duration=30.0, probability=0.2, times=5)
    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=4 * KiB),
        server_capacity=16 * MiB,
        faults=faults,
    )
    client = cluster.client(1)

    def app():
        yield from client.alloc("faulted-batch", 512 * KiB)
        mapping = yield from client.map("faulted-batch")
        blob = bytes((i * 37 + 11) % 256 for i in range(512 * KiB))
        yield from mapping.write(0, blob)
        # move past the quiet prefix so the batch lands in the window
        yield cluster.sim.timeout(2.0)
        batch = client.batch()
        for i in range(_N):
            yield from batch.read(mapping, i * 8 * KiB, _OP_BYTES)
        yield from batch.flush()
        values = yield from batch.wait_all()
        expected = [blob[i * 8 * KiB : i * 8 * KiB + _OP_BYTES]
                    for i in range(_N)]
        order = [f.resolve_index for f in batch.futures]
        attempts = [f._attempts for f in batch.futures]
        return values == expected, order, attempts

    correct, order, attempts = cluster.run_app(app())
    return correct, order, attempts, client.retries, client.pieces_replayed


def test_batch_survives_wire_faults():
    correct, order, attempts, retries, replayed = _run_faulted_batch()
    # every byte of every op came back right despite the faults
    assert correct
    # the faults really fired and forced replays ...
    assert retries >= 1
    assert replayed >= 1
    assert max(attempts) >= 1
    # ... but ops retired before the error were never replayed
    assert attempts.count(0) > 0
    # every future resolved
    assert all(idx is not None for idx in order)


def test_faulted_batch_is_deterministic():
    """Two identical runs resolve the futures in the identical order."""
    first = _run_faulted_batch()
    second = _run_faulted_batch()
    assert first == second
