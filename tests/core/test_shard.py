"""Shard map, tenancy, and quota-splitting unit tests.

The ring must be a pure function of the shard count — every client,
server and master derives the identical map with no exchange — and the
tenancy helpers must agree on where a namespace boundary sits.
"""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.shard import (
    DEFAULT_TENANT,
    ShardMap,
    shard_service,
    split_quota,
    tenant_of,
)
from repro.simnet.config import KiB, MiB


def test_tenant_of_namespace_qualified_names():
    assert tenant_of("acme/table") == "acme"
    assert tenant_of("acme/a/b") == "acme"
    assert tenant_of("bare") == DEFAULT_TENANT
    # a degenerate separator does not make an empty tenant or name
    assert tenant_of("/x") == DEFAULT_TENANT
    assert tenant_of("x/") == DEFAULT_TENANT


def test_shard_service_keeps_shard0_wire_compatible():
    assert shard_service("rstore-master", 0) == "rstore-master"
    assert shard_service("rstore-master", 3) == "rstore-master.3"


def test_split_quota_ceils_and_keeps_unlimited():
    assert split_quota(None, 4) is None
    assert split_quota(100, 1) == 100
    assert split_quota(100, 3) == 34
    assert split_quota(99, 3) == 33


def test_single_shard_map_owns_everything():
    ring = ShardMap(1)
    assert all(ring.shard_of(f"n{i}") == 0 for i in range(100))


def test_shard_map_is_deterministic_across_instances():
    a, b = ShardMap(4), ShardMap(4)
    names = [f"tenant{i % 3}/region-{i}" for i in range(200)]
    assert [a.shard_of(n) for n in names] == [b.shard_of(n) for n in names]


def test_shard_map_spreads_names_across_all_shards():
    ring = ShardMap(4)
    names = [f"t{i % 5}/r{i}" for i in range(1000)]
    owned = {s: ring.names_owned(names, s) for s in range(4)}
    # ownership partitions the namespace
    assert sorted(n for names_ in owned.values() for n in names_) == (
        sorted(names)
    )
    # consistent hashing with 64 vnodes keeps the split roughly even
    for shard, share in owned.items():
        assert len(share) > 100, (
            f"shard {shard} owns only {len(share)}/1000 names"
        )


def test_shard_map_rejects_out_of_range_ids():
    ring = ShardMap(2)
    with pytest.raises(ValueError):
        ShardMap(0)
    assert set(ring.shard_of(f"k{i}") for i in range(50)) <= {0, 1}


def test_sharded_cluster_routes_each_name_to_its_owner():
    config = RStoreConfig(stripe_size=64 * KiB, control_shards=3)
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=48 * MiB,
    )
    client = cluster.client(1)
    names = [f"t{i % 2}/r{i}" for i in range(12)]

    def app():
        for name in names:
            yield from client.alloc(name, 64 * KiB)
        listed = yield from client.list_regions()
        assert sorted(listed) == sorted(names)

    cluster.run_app(app())
    # every shard holds exactly the names the ring assigns it
    ring = ShardMap(3)
    for shard, master in enumerate(cluster.masters):
        expected = set(ring.names_owned(names, shard))
        assert set(master.regions) == expected
