"""Shard map, tenancy, and quota-splitting unit tests.

The ring must be a pure function of the shard count — every client,
server and master derives the identical map with no exchange — and the
tenancy helpers must agree on where a namespace boundary sits.
"""

import math

import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.shard import (
    DEFAULT_TENANT,
    ShardMap,
    shard_service,
    split_quota,
    tenant_of,
)
from repro.simnet.config import KiB, MiB


def test_tenant_of_namespace_qualified_names():
    assert tenant_of("acme/table") == "acme"
    assert tenant_of("acme/a/b") == "acme"
    assert tenant_of("bare") == DEFAULT_TENANT
    # a degenerate separator does not make an empty tenant or name
    assert tenant_of("/x") == DEFAULT_TENANT
    assert tenant_of("x/") == DEFAULT_TENANT


def test_shard_service_keeps_shard0_wire_compatible():
    assert shard_service("rstore-master", 0) == "rstore-master"
    assert shard_service("rstore-master", 3) == "rstore-master.3"


def test_split_quota_remainder_goes_to_low_shards_and_keeps_unlimited():
    assert split_quota(None, 4) is None
    assert split_quota(100, 1) == 100
    # 100 = 34 + 33 + 33: shard 0 absorbs the remainder byte
    assert split_quota(100, 3, 0) == 34
    assert split_quota(100, 3, 1) == 33
    assert split_quota(100, 3, 2) == 33
    assert split_quota(99, 3) == 33


@seed(20260808)
@settings(max_examples=200, deadline=None)
@given(quota=st.integers(min_value=0, max_value=10**12),
       num_shards=st.integers(min_value=1, max_value=64))
def test_split_quota_is_an_exact_partition(quota, num_shards):
    shares = [split_quota(quota, num_shards, s) for s in range(num_shards)]
    # the shards together enforce exactly the cluster-wide budget —
    # never a byte more (over-admission) or less (lost capacity)
    assert sum(shares) == quota
    # and the split is fair to within one byte, largest shares first
    assert max(shares) - min(shares) <= 1
    assert shares == sorted(shares, reverse=True)


_names = st.lists(
    st.tuples(st.sampled_from(["acme", "beta", "core", ""]),
              st.integers(min_value=0, max_value=10**6)),
    min_size=1, max_size=120, unique=True,
).map(lambda pairs: [f"{t}/r{i}" if t else f"r{i}" for t, i in pairs])


@seed(20260808)
@settings(max_examples=100, deadline=None)
@given(num_shards=st.integers(min_value=1, max_value=8), names=_names)
def test_ownership_is_a_pure_function_of_control_shards(num_shards, names):
    # two independently built rings (no shared state, no exchange)
    # must agree on every owner, and the owners must partition names
    a, b = ShardMap(num_shards), ShardMap(num_shards)
    assert [a.shard_of(n) for n in names] == [b.shard_of(n) for n in names]
    owned = [a.names_owned(names, s) for s in range(num_shards)]
    assert sorted(n for share in owned for n in share) == sorted(names)
    assert all(0 <= a.shard_of(n) < num_shards for n in names)


@seed(20260808)
@settings(max_examples=100, deadline=None)
@given(num_shards=st.integers(min_value=1, max_value=8), names=_names)
def test_rebalance_only_moves_names_to_the_new_shard(num_shards, names):
    # growing the ring only adds the new shard's points, so a name may
    # move only TO the new shard — never between surviving shards
    before, after = ShardMap(num_shards), ShardMap(num_shards + 1)
    moved = [n for n in names
             if before.shard_of(n) != after.shard_of(n)]
    assert all(after.shard_of(n) == num_shards for n in moved)


@pytest.mark.parametrize("num_shards", range(1, 8))
def test_rebalance_moves_at_most_ceil_k_over_n_names(num_shards):
    # the quantitative half of the growth guarantee: on a large fixed
    # namespace the moved slice is ~K/(N+1), under ceil(K/N).  With 64
    # vnodes the split stays within a few percent of even through 8
    # shards (the _VNODES sizing comment), so the tight bound is
    # asserted up to N=7 and an expected-slice bound at the edge below.
    names = [f"t{i % 7}/region-{i}" for i in range(1000)]
    before, after = ShardMap(num_shards), ShardMap(num_shards + 1)
    moved = [n for n in names
             if before.shard_of(n) != after.shard_of(n)]
    assert all(after.shard_of(n) == num_shards for n in moved)
    assert len(moved) <= math.ceil(len(names) / num_shards)


def test_rebalance_at_the_vnode_sizing_edge_stays_a_small_slice():
    names = [f"t{i % 7}/region-{i}" for i in range(1000)]
    before, after = ShardMap(8), ShardMap(9)
    moved = [n for n in names
             if before.shard_of(n) != after.shard_of(n)]
    assert all(after.shard_of(n) == 8 for n in moved)
    # vnode variance at 8→9 shards: allow up to 2x the 1/9 expectation
    assert len(moved) <= 2 * math.ceil(len(names) / 9)


def test_single_shard_map_owns_everything():
    ring = ShardMap(1)
    assert all(ring.shard_of(f"n{i}") == 0 for i in range(100))


def test_shard_map_is_deterministic_across_instances():
    a, b = ShardMap(4), ShardMap(4)
    names = [f"tenant{i % 3}/region-{i}" for i in range(200)]
    assert [a.shard_of(n) for n in names] == [b.shard_of(n) for n in names]


def test_shard_map_spreads_names_across_all_shards():
    ring = ShardMap(4)
    names = [f"t{i % 5}/r{i}" for i in range(1000)]
    owned = {s: ring.names_owned(names, s) for s in range(4)}
    # ownership partitions the namespace
    assert sorted(n for names_ in owned.values() for n in names_) == (
        sorted(names)
    )
    # consistent hashing with 64 vnodes keeps the split roughly even
    for shard, share in owned.items():
        assert len(share) > 100, (
            f"shard {shard} owns only {len(share)}/1000 names"
        )


def test_shard_map_rejects_out_of_range_ids():
    ring = ShardMap(2)
    with pytest.raises(ValueError):
        ShardMap(0)
    assert set(ring.shard_of(f"k{i}") for i in range(50)) <= {0, 1}


def test_sharded_cluster_routes_each_name_to_its_owner():
    config = RStoreConfig(stripe_size=64 * KiB, control_shards=3)
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=48 * MiB,
    )
    client = cluster.client(1)
    names = [f"t{i % 2}/r{i}" for i in range(12)]

    def app():
        for name in names:
            yield from client.alloc(name, 64 * KiB)
        listed = yield from client.list_regions()
        assert sorted(listed) == sorted(names)

    cluster.run_app(app())
    # every shard holds exactly the names the ring assigns it
    ring = ShardMap(3)
    for shard, master in enumerate(cluster.masters):
        expected = set(ring.names_owned(names, shard))
        assert set(master.regions) == expected
