"""Failure handling: server death, lease expiry, region invalidation."""

import pytest

from repro.core import RegionUnavailableError, RStoreConfig
from repro.cluster import build_cluster
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector


def fresh_cluster(faults=None):
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB, heartbeat_interval_s=0.02,
                            lease_timeout_s=0.07),
        server_capacity=64 * MiB,
        faults=faults,
    )


def test_master_declares_dead_server_after_lease_expiry():
    cluster = fresh_cluster()
    cluster.kill_server(2)
    cluster.run(until=cluster.sim.now + 0.5)
    slot = cluster.master.allocator.server(2)
    assert not slot.alive


def test_regions_on_dead_server_become_unavailable():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def setup():
        region = yield from client.alloc("doomed", 256 * KiB)
        return region

    region = cluster.run_app(setup())
    # kill a hosting server that is neither the master's machine nor the
    # machine our test client runs on (a dead client can't observe anything)
    victim = next(
        h for h in region.hosts
        if h not in (cluster.config.master_host, 1)
    )
    cluster.kill_server(victim)
    cluster.run(until=cluster.sim.now + 0.5)
    assert not cluster.master.regions["doomed"].available

    def try_map():
        with pytest.raises(RegionUnavailableError):
            yield from client.map("doomed")

    cluster.run_app(try_map())


def test_inflight_io_to_dead_server_fails():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("inflight", 256 * KiB)
        mapping = yield from client.map(region)
        victim = next(
            h for h in region.hosts
            if h not in (cluster.config.master_host, 1)
        )
        cluster.servers[victim].kill()
        with pytest.raises(RegionUnavailableError):
            yield from mapping.read(0, 256 * KiB)

    cluster.run_app(app())


def test_allocation_steers_around_dead_server():
    cluster = fresh_cluster()
    client = cluster.client(1)
    cluster.kill_server(3)
    cluster.run(until=cluster.sim.now + 0.5)

    def app():
        region = yield from client.alloc("survivor", 512 * KiB)
        return region

    region = cluster.run_app(app())
    assert 3 not in region.hosts
    assert region.available


def test_surviving_regions_keep_working_after_unrelated_death():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def setup():
        # Pin the region to servers 0 and 1 by allocating while only
        # checking hosts afterwards; retry names until placement avoids 3.
        for attempt in range(8):
            name = f"lucky-{attempt}"
            region = yield from client.alloc(name, 128 * KiB)
            if 3 not in region.hosts:
                mapping = yield from client.map(region)
                yield from mapping.write(0, b"persist")
                return name
            yield from client.free(name)
        raise AssertionError("could not place a region avoiding host 3")

    name = cluster.run_app(setup())
    cluster.kill_server(3)
    cluster.run(until=cluster.sim.now + 0.5)

    def verify():
        mapping = yield from cluster.client(2).map(name)
        data = yield from mapping.read(0, 7)
        return data

    assert cluster.run_app(verify()) == b"persist"


def test_flapping_server_rejoins_after_false_positive_death():
    """Heartbeats delayed past the lease: the master declares the server
    dead (a false positive — the host never crashed), replicated regions
    survive via promotion + repair, and once heartbeats resume the
    server learns it was dropped and simply re-registers."""
    faults = FaultInjector(seed=3)
    # silence longer than lease_timeout (0.07), then resume
    faults.drop_heartbeats(3, start=0.2, duration=0.15)
    cluster = fresh_cluster(faults=faults)
    client = cluster.client(1)

    def setup():
        region = yield from client.alloc("steady", 256 * KiB, replication=2)
        mapping = yield from client.map(region)
        yield from mapping.write(0, b"hold the line")
        return region

    cluster.run_app(setup())

    # mid-window: the lease has expired and the master dropped host 3,
    # even though its server process is perfectly healthy
    cluster.run(until=cluster.boot_time + 0.32)
    assert not cluster.master.allocator.host_alive(3)
    assert cluster.servers[3].alive

    # window over: heartbeats resume, the reply says needs_register,
    # and the server rejoins with a clean arena
    cluster.run(until=cluster.sim.now + 1.0)
    slot = cluster.master.allocator.get_server(3)
    assert slot is not None and slot.alive
    assert any("rejoined" in msg for _t, msg in cluster.master.repair.log)

    # no region was lost: promotion kept it available, repair re-filled
    # the copies that lived on host 3
    region = cluster.master.regions["steady"]
    assert region.available
    assert all(s.replication == 2 for s in region.stripes)

    def verify():
        mapping = yield from cluster.client(2).map("steady")
        data = yield from mapping.read(0, 13)
        return data

    assert cluster.run_app(verify()) == b"hold the line"


def test_cluster_stats_reflect_dead_server():
    cluster = fresh_cluster()
    cluster.kill_server(1)
    cluster.run(until=cluster.sim.now + 0.5)
    client = cluster.client(0)

    def app():
        stats = yield from client._master_call("cluster_stats")
        return stats

    stats = cluster.run_app(app())
    assert stats["alive_servers"] == 3
    assert stats["servers"] == 4
