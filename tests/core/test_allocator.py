"""Stripe placement policy tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocator import ServerSlot, StripeAllocator
from repro.core.errors import OutOfMemoryError


def make_allocator(policy="round_robin", servers=3, capacity=1000):
    alloc = StripeAllocator(policy=policy)
    for host in range(servers):
        alloc.add_server(ServerSlot(host_id=host, capacity=capacity,
                                    free=capacity))
    return alloc


def test_round_robin_cycles_servers():
    alloc = make_allocator("round_robin", servers=3)
    placement = alloc.place([10] * 6)
    assert placement == [(0,), (1,), (2,), (0,), (1,), (2,)]


def test_round_robin_continues_across_calls():
    alloc = make_allocator("round_robin", servers=3)
    first = alloc.place([10] * 2)
    second = alloc.place([10] * 2)
    assert first + second == [(0,), (1,), (2,), (0,)]


def test_round_robin_skips_full_server():
    alloc = make_allocator("round_robin", servers=3, capacity=100)
    alloc.server(1).free = 5
    placement = alloc.place([10] * 4)
    assert all(1 not in copies for copies in placement)


def test_spread_prefers_most_free():
    alloc = make_allocator("spread", servers=3)
    alloc.server(0).free = 100
    alloc.server(1).free = 900
    alloc.server(2).free = 500
    placement = alloc.place([50])
    assert placement == [(1,)]


def test_random_is_seeded_deterministic():
    a = make_allocator("random")
    b = make_allocator("random")
    assert a.place([10] * 8) == b.place([10] * 8)


def test_out_of_memory_total():
    alloc = make_allocator(servers=2, capacity=100)
    with pytest.raises(OutOfMemoryError):
        alloc.place([150, 150])


def test_out_of_memory_rolls_back_capacity():
    alloc = make_allocator("round_robin", servers=2, capacity=100)
    before = alloc.total_free
    # fits in total but no single server can hold a 150-byte stripe
    with pytest.raises(OutOfMemoryError):
        alloc.place([150])
    assert alloc.total_free == before


def test_dead_servers_excluded():
    alloc = make_allocator(servers=3)
    alloc.server(1).alive = False
    placement = alloc.place([10] * 4)
    assert all(1 not in copies for copies in placement)


def test_no_live_servers_raises():
    alloc = make_allocator(servers=1)
    alloc.server(0).alive = False
    with pytest.raises(OutOfMemoryError, match="no live"):
        alloc.place([10])


def test_release_restores_capacity():
    alloc = make_allocator(servers=1, capacity=100)
    alloc.place([60])
    alloc.release(0, 60)
    assert alloc.server(0).free == 100


def test_release_clamps_at_capacity():
    alloc = make_allocator(servers=1, capacity=100)
    alloc.release(0, 999)
    assert alloc.server(0).free == 100


@settings(max_examples=150, deadline=None)
@given(
    policy=st.sampled_from(["round_robin", "random", "spread"]),
    stripes=st.lists(st.integers(min_value=1, max_value=50), min_size=1,
                     max_size=30),
)
def test_placement_respects_capacity(policy, stripes):
    """Property: placement never over-commits any server."""
    alloc = make_allocator(policy, servers=4, capacity=200)
    try:
        placement = alloc.place(stripes)
    except OutOfMemoryError:
        return
    used: dict[int, int] = {}
    for copies, length in zip(placement, stripes):
        for host in copies:
            used[host] = used.get(host, 0) + length
    for host, total in used.items():
        assert total <= 200
        assert alloc.server(host).free == 200 - total


def test_replicated_placement_uses_distinct_servers():
    alloc = make_allocator("round_robin", servers=4, capacity=1000)
    placement = alloc.place([10] * 3, replication=2)
    for copies in placement:
        assert len(copies) == 2
        assert len(set(copies)) == 2


def test_replication_charges_every_copy():
    alloc = make_allocator(servers=3, capacity=100)
    alloc.place([30], replication=3)
    assert alloc.total_free == 3 * 100 - 3 * 30


def test_replication_exceeding_servers_raises():
    alloc = make_allocator(servers=2)
    with pytest.raises(OutOfMemoryError, match="replication"):
        alloc.place([10], replication=3)


def test_replicas_avoid_preferred_primary():
    alloc = make_allocator(servers=3, capacity=1000)
    placement = alloc.place([10, 10], preferred_host=1, replication=2)
    for copies in placement:
        assert copies[0] == 1
        assert copies[1] != 1


def test_replicated_oom_rolls_back():
    alloc = make_allocator(servers=2, capacity=100)
    before = alloc.total_free
    with pytest.raises(OutOfMemoryError):
        alloc.place([60, 60], replication=2)  # 240 needed, 200 free
    assert alloc.total_free == before
