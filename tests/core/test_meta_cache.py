"""Client metadata cache: leases, single-flight, invalidation.

The cache contract: under a live lease, ``map`` never touches a
master; an epoch bump (master restart) or an explicit ``free`` evicts;
a missing name is remembered only for ``meta_negative_ttl_s``; and N
concurrent misses for the same cold name coalesce onto exactly one
lookup RPC.
"""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.errors import RegionNotFoundError
from repro.simnet.config import KiB, MiB


def fresh_cluster(**overrides):
    config = RStoreConfig(stripe_size=64 * KiB, **overrides)
    return build_cluster(
        num_machines=4, config=config, server_capacity=64 * MiB,
    )


def test_warm_map_issues_zero_master_rpcs():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        yield from client.alloc("leased", 256 * KiB)
        baseline = client.master_calls
        for _ in range(8):
            yield from client.map("leased")
        assert client.master_calls == baseline, (
            "map under a live lease went to the master"
        )
        assert client.metadata_cache_hits >= 8

    cluster.run_app(app())


def test_lease_expiry_refetches_once():
    cluster = fresh_cluster(meta_lease_s=0.05)
    client = cluster.client(1)

    def app():
        yield from client.alloc("leased", 256 * KiB)
        yield cluster.sim.timeout(0.1)  # outlive the lease
        misses = client.metadata_cache_misses
        baseline = client.master_calls
        yield from client.map("leased")
        assert client.master_calls == baseline + 1
        assert client.metadata_cache_misses == misses + 1
        # the refetch renewed the lease: the next map is warm again
        yield from client.map("leased")
        assert client.master_calls == baseline + 1

    cluster.run_app(app())


def test_free_evicts_the_lease():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        yield from client.alloc("gone", 128 * KiB)
        yield from client.map("gone")
        yield from client.free("gone")
        with pytest.raises(RegionNotFoundError):
            yield from client.map("gone")

    cluster.run_app(app())


def test_negative_entries_expire():
    cluster = fresh_cluster(meta_negative_ttl_s=0.05)
    client = cluster.client(1)

    def app():
        with pytest.raises(RegionNotFoundError):
            yield from client.map("phantom")
        # inside the TTL: the refusal is served from the cache
        baseline = client.master_calls
        with pytest.raises(RegionNotFoundError):
            yield from client.map("phantom")
        assert client.master_calls == baseline
        # once the TTL lapses (and the region exists) map succeeds
        yield cluster.sim.timeout(0.1)
        yield from client.alloc("phantom", 128 * KiB)
        mapping = yield from client.map("phantom")
        assert mapping is not None

    cluster.run_app(app())


def test_epoch_bump_evicts_cached_leases():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def setup():
        yield from client.alloc("fenced", 256 * KiB)
        mapping = yield from client.map("fenced")
        yield from mapping.write(0, b"x" * 512)

    cluster.run_app(setup())
    cluster.crash_master()
    cluster.run_app(cluster.restart_master())
    cluster.run(until=cluster.sim.now + 0.5)

    def after():
        # a stale-cached mapping still serves one-sided reads — the
        # surviving server kept its arena, so the data never moved
        mapping = yield from client.map("fenced")
        data = yield from mapping.read(0, 512)
        assert data == b"x" * 512
        # the next control mutation carries the stale observed epoch,
        # gets fenced, refreshes — and the refreshed epoch evicts the
        # cached lease, so the following map refetches
        yield from client.alloc("other", 128 * KiB)
        assert client.retries_fenced > 0
        misses = client.metadata_cache_misses
        yield from client.map("fenced")
        assert client.metadata_cache_misses == misses + 1

    cluster.run_app(after())


def test_negative_entry_from_lookup_in_flight_across_bump_is_dropped():
    """Regression: a miss whose lookup was issued under the old epoch
    but whose refusal landed after the client had already observed the
    bump used to be stamped with the *new* epoch — so a region created
    under the new era hid behind the cached refusal for the whole
    negative TTL.  The refusal must be stamped with the era it was
    issued under, and a later ``map`` must refetch, not re-refuse."""
    cluster = fresh_cluster(meta_negative_ttl_s=5.0)
    client = cluster.client(1)
    owner = cluster.client(2)

    def setup():
        yield from client.alloc("warm", 128 * KiB)

    cluster.run_app(setup())
    cluster.crash_master()
    cluster.run_app(cluster.restart_master())
    cluster.run(until=cluster.sim.now + 0.5)

    order = []

    def misser():
        # lookup starts while this client still believes the old
        # epoch; its refusal lands after the learner bumps the view
        with pytest.raises(RegionNotFoundError):
            yield from client.map("victim")
        order.append("missed")

    def learner():
        # a fenced control op: refreshes this client's epoch view
        yield from client.alloc("other", 128 * KiB)
        order.append("learned")

    def race():
        procs = [cluster.sim.process(misser(), name="misser"),
                 cluster.sim.process(learner(), name="learner")]
        yield cluster.sim.all_of(procs)

    cluster.run_app(race())
    # the schedule must exercise the in-flight window: the epoch was
    # learned before the refusal was cached
    assert order == ["learned", "missed"]
    assert client.retries_fenced > 0

    def after():
        # the region is born under the new era; the client must see it
        # well inside the 5s negative TTL
        yield from owner.alloc("victim", 128 * KiB)
        mapping = yield from client.map("victim")
        assert mapping is not None

    cluster.run_app(after())


def test_stale_era_refusal_is_evicted_at_serve_time():
    """The serve-time half of the same regression: an entry stamped
    under an older era than the client has since observed must never
    be served, even though its TTL is still running."""
    cluster = fresh_cluster(meta_negative_ttl_s=5.0)
    client = cluster.client(1)
    owner = cluster.client(2)

    def app():
        yield from owner.alloc("victim", 128 * KiB)
        # replay lookup()'s late-reply interleaving by hand: the bump
        # is observed first, then the refusal (issued under epoch 0)
        # lands and is cached — after _note_epoch already swept, so
        # only the serve-time staleness check can catch it
        client._note_epoch(client._epochs.get(0, 0) + 1, shard=0)
        client._meta_store_negative("victim", 0, as_of=0)
        misses = client.metadata_cache_misses
        mapping = yield from client.map("victim")
        assert mapping is not None
        assert client.metadata_cache_misses == misses + 1

    cluster.run_app(app())


def test_32_concurrent_misses_coalesce_to_one_rpc():
    cluster = fresh_cluster()
    owner = cluster.client(2)
    client = cluster.client(1)

    def setup():
        yield from owner.alloc("popular", 256 * KiB)

    cluster.run_app(setup())
    assert client.master_calls == 0
    mapped = []

    def mapper():
        mapping = yield from client.map("popular")
        mapped.append(mapping)

    def storm():
        procs = [cluster.sim.process(mapper(), name=f"mapper-{i}")
                 for i in range(32)]
        yield cluster.sim.all_of(procs)

    cluster.run_app(storm())
    assert len(mapped) == 32
    assert client.master_calls == 1, (
        "a concurrent-miss storm must cost exactly one lookup RPC"
    )
    assert client.metadata_cache_misses == 1
    assert client.metadata_cache_coalesced == 31


def test_cache_disabled_falls_back_to_per_map_lookups():
    cluster = fresh_cluster(metadata_cache=False)
    client = cluster.client(1)

    def app():
        yield from client.alloc("uncached", 128 * KiB)
        baseline = client.master_calls
        yield from client.map("uncached")
        yield from client.map("uncached")
        assert client.master_calls == baseline + 2

    cluster.run_app(app())
