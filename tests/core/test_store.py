"""End-to-end RStore tests on a booted cluster."""

import random

import pytest

from repro.core import (
    BoundsError,
    OutOfMemoryError,
    RegionExistsError,
    RegionNotFoundError,
    RegionUnavailableError,
    RStoreConfig,
)
from repro.cluster import build_cluster
from repro.simnet.config import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    """A small booted cluster shared across this module's tests.

    Each test uses fresh region names, so sharing is safe and keeps the
    suite fast.
    """
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )


def test_cluster_boots_all_services(cluster):
    assert cluster.master is not None
    assert len(cluster.servers) == 4
    assert len(cluster.clients) == 4
    assert cluster.boot_time > 0


def test_alloc_map_write_read_roundtrip(cluster):
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("roundtrip", 256 * KiB)
        mapping = yield from client.map(region)
        payload = bytes(range(256)) * 4
        yield from mapping.write(10_000, payload)
        data = yield from mapping.read(10_000, len(payload))
        return data, payload

    data, payload = cluster.run_app(app())
    assert data == payload


def test_write_spanning_stripes_lands_on_multiple_servers(cluster):
    client = cluster.client(2)

    def app():
        region = yield from client.alloc("spanner", 256 * KiB)
        assert len(region.hosts) > 1  # striped across servers
        mapping = yield from client.map(region)
        blob = random.Random(1).randbytes(200 * KiB)
        yield from mapping.write(0, blob)
        back = yield from mapping.read(0, len(blob))
        return blob, back

    blob, back = cluster.run_app(app())
    assert blob == back


def test_region_visible_to_other_clients(cluster):
    writer = cluster.client(0)
    reader = cluster.client(3)

    def app():
        region = yield from writer.alloc("shared", 64 * KiB)
        wmap = yield from writer.map(region)
        yield from wmap.write(0, b"from-client-0")
        rmap = yield from reader.map("shared")
        data = yield from rmap.read(0, 13)
        return data

    assert cluster.run_app(app()) == b"from-client-0"


def test_duplicate_name_raises_region_exists(cluster):
    client = cluster.client(1)

    def app():
        yield from client.alloc("dup", 4 * KiB)
        with pytest.raises(RegionExistsError):
            yield from client.alloc("dup", 4 * KiB)

    cluster.run_app(app())


def test_lookup_unknown_raises(cluster):
    client = cluster.client(1)

    def app():
        with pytest.raises(RegionNotFoundError):
            yield from client.lookup("never-created")

    cluster.run_app(app())


def test_free_releases_name_and_capacity(cluster):
    client = cluster.client(1)

    def app():
        yield from client.alloc("to-free", 128 * KiB)
        before = yield from client._master_call("cluster_stats")
        yield from client.free("to-free")
        after = yield from client._master_call("cluster_stats")
        with pytest.raises(RegionNotFoundError):
            yield from client.lookup("to-free")
        return before, after

    before, after = cluster.run_app(app())
    assert after["total_free"] == before["total_free"] + 128 * KiB


def test_alloc_larger_than_cluster_raises_oom(cluster):
    client = cluster.client(1)

    def app():
        with pytest.raises(OutOfMemoryError):
            yield from client.alloc("huge", 10_000 * MiB)

    cluster.run_app(app())


def test_atomics_shared_counter_across_clients(cluster):
    c0, c1 = cluster.client(0), cluster.client(1)

    def app():
        region = yield from c0.alloc("counter", 4 * KiB)
        m0 = yield from c0.map(region)
        m1 = yield from c1.map("counter")
        olds = []
        olds.append((yield from m0.faa(0, 10)))
        olds.append((yield from m1.faa(0, 10)))
        olds.append((yield from m0.cas(0, 20, 777)))
        value = yield from m0.read(0, 8)
        return olds, int.from_bytes(value, "little")

    olds, value = cluster.run_app(app())
    assert olds == [0, 10, 20]
    assert value == 777


def test_atomic_alignment_enforced(cluster):
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("misaligned", 4 * KiB)
        mapping = yield from client.map(region)
        with pytest.raises(BoundsError):
            yield from mapping.faa(3, 1)

    cluster.run_app(app())


def test_read_out_of_bounds_raises(cluster):
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("tiny", 4 * KiB)
        mapping = yield from client.map(region)
        with pytest.raises(BoundsError):
            yield from mapping.read(0, 8 * KiB)

    cluster.run_app(app())


def test_unmapped_mapping_rejects_io(cluster):
    from repro.core import NotMappedError

    client = cluster.client(1)

    def app():
        region = yield from client.alloc("unmapped", 4 * KiB)
        mapping = yield from client.map(region)
        mapping.unmap()
        with pytest.raises(NotMappedError):
            yield from mapping.read(0, 8)

    cluster.run_app(app())


def test_zero_copy_read_into_write_from(cluster):
    client = cluster.client(2)

    def app():
        region = yield from client.alloc("zerocopy", 128 * KiB)
        mapping = yield from client.map(region)
        local = yield from client.alloc_local(128 * KiB)
        blob = random.Random(2).randbytes(100 * KiB)
        local.buffer.write(0, blob)
        yield from mapping.write_from(local, local.addr, 0, len(blob))
        sink = yield from client.alloc_local(128 * KiB)
        yield from mapping.read_into(sink, sink.addr, 0, len(blob))
        return blob, sink.buffer.read(0, len(blob))

    blob, back = cluster.run_app(app())
    assert blob == back


def test_second_map_to_same_servers_is_much_cheaper(cluster):
    client = cluster.client(3)

    def app():
        r1 = yield from client.alloc("map-cost-1", 256 * KiB)
        t0 = cluster.sim.now
        yield from client.map(r1)
        cold = cluster.sim.now - t0
        r2 = yield from client.alloc("map-cost-2", 256 * KiB)
        t1 = cluster.sim.now
        yield from client.map(r2)
        warm = cluster.sim.now - t1
        return cold, warm

    cold, warm = cluster.run_app(app())
    # cold map pays per-server connection setup; warm reuses cached QPs
    assert cold > 5 * warm


def test_barrier_synchronizes_processes(cluster):
    c0, c1 = cluster.client(0), cluster.client(1)
    log = []

    def worker(client, tag, delay):
        yield cluster.sim.timeout(delay)
        yield from client.barrier("b1", 2)
        log.append((tag, cluster.sim.now))

    def app():
        p0 = cluster.spawn(worker(c0, "fast", 0.0))
        p1 = cluster.spawn(worker(c1, "slow", 0.01))
        yield cluster.sim.all_of([p0, p1])

    cluster.run_app(app())
    assert len(log) == 2
    # both released at (essentially) the same instant, after the slow one
    assert abs(log[0][1] - log[1][1]) < 1e-4
    assert min(t for _tag, t in log) >= cluster.boot_time + 0.01


def test_notify_wait(cluster):
    c0, c1 = cluster.client(0), cluster.client(1)
    got = []

    def waiter():
        payload = yield from c1.wait_note("ready")
        got.append(payload)

    def notifier():
        yield cluster.sim.timeout(0.005)
        yield from c0.notify("ready", {"rows": 42})

    def app():
        p0 = cluster.spawn(waiter())
        p1 = cluster.spawn(notifier())
        yield cluster.sim.all_of([p0, p1])

    cluster.run_app(app())
    assert got == [{"rows": 42}]


def test_wire_scale_inflates_transfer_time(cluster):
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("scaled", 128 * KiB)
        mapping = yield from client.map(region)
        local = yield from client.alloc_local(128 * KiB)
        t0 = cluster.sim.now
        yield from mapping.write_from(local, local.addr, 0, 64 * KiB)
        plain = cluster.sim.now - t0
        t1 = cluster.sim.now
        yield from mapping.write_from(local, local.addr, 0, 64 * KiB,
                                      wire_scale=64)
        scaled = cluster.sim.now - t1
        return plain, scaled

    plain, scaled = cluster.run_app(app())
    assert scaled > 10 * plain
