"""Ablation modes: per-IO resolution and the two-sided data path.

These modes exist to quantify what RStore's separation philosophy buys
(experiment E9); the tests pin their semantics and their cost ordering.
"""

import pytest

from repro.core import RStoreConfig
from repro.cluster import build_cluster
from repro.simnet.config import KiB, MiB


def build(config):
    return build_cluster(num_machines=3, config=config,
                         server_capacity=64 * MiB)


def roundtrip(cluster, name, size=64 * KiB, payload_size=4 * KiB):
    client = cluster.client(1)

    def app():
        region = yield from client.alloc(name, size)
        mapping = yield from client.map(region)
        payload = b"ab" * (payload_size // 2)
        t0 = cluster.sim.now
        yield from mapping.write(0, payload)
        data = yield from mapping.read(0, len(payload))
        elapsed = cluster.sim.now - t0
        assert data == payload
        return elapsed

    return cluster.run_app(app())


def test_resolve_per_io_correct_but_slower():
    base = roundtrip(build(RStoreConfig(stripe_size=64 * KiB)), "r1")
    per_io = roundtrip(
        build(RStoreConfig(stripe_size=64 * KiB, resolve_per_io=True)), "r2"
    )
    assert per_io > base


def test_two_sided_correct_but_slower():
    base = roundtrip(build(RStoreConfig(stripe_size=64 * KiB)), "t1")
    two_sided = roundtrip(
        build(RStoreConfig(stripe_size=64 * KiB, two_sided_data_path=True)),
        "t2",
    )
    assert two_sided > base


def test_two_sided_burns_server_cpu_one_sided_does_not():
    one_sided = build(RStoreConfig(stripe_size=64 * KiB))
    roundtrip(one_sided, "cpu1", size=1 * MiB, payload_size=1 * MiB)
    two_sided = build(
        RStoreConfig(stripe_size=64 * KiB, two_sided_data_path=True)
    )
    roundtrip(two_sided, "cpu2", size=1 * MiB, payload_size=1 * MiB)

    def server_cpu(cluster):
        return sum(
            cluster.net.host(h).cpu.busy_seconds
            for h in cluster.servers
            if h != 1  # exclude the host running the client
        )

    assert server_cpu(two_sided) > 3 * server_cpu(one_sided)


def test_invalid_policy_rejected():
    with pytest.raises(ValueError):
        RStoreConfig(allocation_policy="hotspot")
