"""Region descriptor and address-translation tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import BoundsError
from repro.core.region import (
    RegionDesc,
    StripeDesc,
    StripeReplica,
    split_into_stripes,
)


def make_region(size, stripe_size, num_hosts=3, replication=1):
    lengths = split_into_stripes(size, stripe_size)
    stripes = [
        StripeDesc(
            index=i,
            length=length,
            replicas=tuple(
                StripeReplica(host_id=(i + r) % num_hosts,
                              addr=0x1000 * (i + 1) + r * 0x100000,
                              rkey=i + 1 + 100 * r)
                for r in range(replication)
            ),
        )
        for i, length in enumerate(lengths)
    ]
    region = RegionDesc(region_id=1, name="r", size=size,
                        stripe_size=stripe_size, stripes=stripes)
    region.validate()
    return region


def test_split_exact_multiple():
    assert split_into_stripes(300, 100) == [100, 100, 100]


def test_split_with_tail():
    assert split_into_stripes(250, 100) == [100, 100, 50]


def test_split_smaller_than_stripe():
    assert split_into_stripes(10, 100) == [10]


def test_split_rejects_non_positive():
    with pytest.raises(ValueError):
        split_into_stripes(0, 100)


def test_locate_single_stripe():
    region = make_region(300, 100)
    pieces = list(region.locate(120, 50))
    assert len(pieces) == 1
    stripe, off, take = pieces[0]
    assert stripe.index == 1 and off == 20 and take == 50


def test_locate_spanning_stripes():
    region = make_region(300, 100)
    pieces = list(region.locate(50, 200))
    assert [(s.index, off, take) for s, off, take in pieces] == [
        (0, 50, 50),
        (1, 0, 100),
        (2, 0, 50),
    ]


def test_locate_whole_region():
    region = make_region(250, 100)
    pieces = list(region.locate(0, 250))
    assert sum(take for _s, _o, take in pieces) == 250


def test_locate_out_of_bounds():
    region = make_region(300, 100)
    with pytest.raises(BoundsError):
        list(region.locate(250, 100))
    with pytest.raises(BoundsError):
        list(region.locate(-1, 10))


def test_hosts_are_distinct_and_ordered():
    region = make_region(500, 100, num_hosts=2)
    assert region.hosts == (0, 1)


@settings(max_examples=200, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=10_000),
    stripe_size=st.integers(min_value=1, max_value=1_000),
    data=st.data(),
)
def test_locate_covers_exactly_the_requested_range(size, stripe_size, data):
    """Property: translation pieces tile [offset, offset+length) exactly."""
    region = make_region(size, stripe_size)
    offset = data.draw(st.integers(min_value=0, max_value=size))
    length = data.draw(st.integers(min_value=0, max_value=size - offset))
    pieces = list(region.locate(offset, length))
    assert sum(take for _s, _o, take in pieces) == length
    # pieces are in order and map back to the right global offsets
    pos = offset
    for stripe, stripe_off, take in pieces:
        assert stripe.index * stripe_size + stripe_off == pos
        assert 0 < take <= stripe.length - stripe_off
        pos += take


@settings(max_examples=100, deadline=None)
@given(
    size=st.integers(min_value=1, max_value=1_000_000),
    stripe_size=st.integers(min_value=1, max_value=100_000),
)
def test_split_invariants(size, stripe_size):
    lengths = split_into_stripes(size, stripe_size)
    assert sum(lengths) == size
    assert all(0 < length <= stripe_size for length in lengths)
    assert all(length == stripe_size for length in lengths[:-1])
