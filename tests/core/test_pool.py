"""Client staging-pool behaviour."""

import pytest

from repro.core.errors import OutOfMemoryError
from repro.core.pool import LocalBufferPool
from repro.rdma.memory import Buffer, MemoryRegion
from repro.rdma.types import Access
from repro.simnet.kernel import Simulator


def make_pool(size=4096):
    sim = Simulator()
    mr = MemoryRegion(Buffer(0x1000, size, host_id=0), Access.LOCAL_WRITE)
    return sim, LocalBufferPool(sim, mr)


def run(sim, gen):
    return sim.run(until=sim.process(gen))


def test_alloc_free_roundtrip():
    sim, pool = make_pool()

    def app():
        chunk = yield from pool.alloc(1000)
        chunk.write_bytes(b"staged")
        assert chunk.read_bytes(6) == b"staged"
        chunk.release()
        assert pool.free_bytes == pool.capacity

    run(sim, app())


def test_oversized_request_rejected_with_guidance():
    sim, pool = make_pool(size=4096)

    def app():
        with pytest.raises(OutOfMemoryError, match="zero-copy"):
            yield from pool.alloc(8192)

    run(sim, app())


def test_alloc_blocks_until_release():
    sim, pool = make_pool(size=4096)
    order = []

    def holder():
        chunk = yield from pool.alloc(4096)
        order.append(("acquired-big", sim.now))
        yield sim.timeout(1.0)
        chunk.release()

    def waiter():
        yield sim.timeout(0.1)  # let the holder go first
        chunk = yield from pool.alloc(1000)
        order.append(("acquired-small", sim.now))
        chunk.release()

    sim.process(holder())
    sim.process(waiter())
    sim.run()
    assert order == [("acquired-big", 0.0), ("acquired-small", 1.0)]


def test_concurrent_chunks_are_disjoint():
    sim, pool = make_pool(size=4096)

    def app():
        a = yield from pool.alloc(1000)
        b = yield from pool.alloc(1000)
        a.write_bytes(b"A" * 1000)
        b.write_bytes(b"B" * 1000)
        assert a.read_bytes() == b"A" * 1000
        assert b.read_bytes() == b"B" * 1000
        a.release()
        b.release()

    run(sim, app())


def test_payload_larger_than_chunk_rejected():
    sim, pool = make_pool()

    def app():
        chunk = yield from pool.alloc(10)
        with pytest.raises(Exception, match="exceeds"):
            chunk.write_bytes(b"x" * 100)
        chunk.release()

    run(sim, app())
