"""Region resize: grow-by-appending-stripes semantics."""

import pytest

from repro.core import RegionNotFoundError, RStoreConfig, RStoreError
from repro.cluster import build_cluster
from repro.simnet.config import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )


def test_grow_preserves_data_and_extends_range(cluster):
    client = cluster.client(1)

    def app():
        yield from client.alloc("grow", 128 * KiB)
        mapping = yield from client.map("grow")
        yield from mapping.write(0, b"keep me")
        new_desc = yield from client.resize("grow", 256 * KiB)
        assert new_desc.size == 256 * KiB
        assert len(new_desc.stripes) == 4
        fresh = yield from client.map(new_desc)
        kept = yield from fresh.read(0, 7)
        yield from fresh.write(200 * KiB, b"new range")
        added = yield from fresh.read(200 * KiB, 9)
        return kept, added

    kept, added = cluster.run_app(app())
    assert kept == b"keep me"
    assert added == b"new range"


def test_version_bumps_on_resize(cluster):
    client = cluster.client(1)

    def app():
        before = yield from client.alloc("versioned", 64 * KiB)
        after = yield from client.resize("versioned", 192 * KiB)
        return before.version, after.version

    v_before, v_after = cluster.run_app(app())
    assert v_after == v_before + 1


def test_old_mapping_keeps_old_bounds(cluster):
    from repro.core import BoundsError

    client = cluster.client(2)

    def app():
        desc = yield from client.alloc("stale", 64 * KiB)
        mapping = yield from client.map(desc)
        yield from client.resize("stale", 128 * KiB)
        # the stale mapping still enforces the old size
        with pytest.raises(BoundsError):
            yield from mapping.read(100 * KiB, 16)
        # but old-range IO keeps working
        yield from mapping.write(0, b"ok")
        return (yield from mapping.read(0, 2))

    assert cluster.run_app(app()) == b"ok"


def test_same_size_resize_is_noop(cluster):
    client = cluster.client(1)

    def app():
        before = yield from client.alloc("noop", 64 * KiB)
        after = yield from client.resize("noop", 64 * KiB)
        return before.version, after.version

    v_before, v_after = cluster.run_app(app())
    assert v_before == v_after


def test_shrink_rejected(cluster):
    client = cluster.client(1)

    def app():
        yield from client.alloc("noshrink", 128 * KiB)
        with pytest.raises(RStoreError, match="hrink"):
            yield from client.resize("noshrink", 64 * KiB)

    cluster.run_app(app())


def test_partial_tail_rejected(cluster):
    client = cluster.client(1)

    def app():
        yield from client.alloc("partial", 96 * KiB)  # 1.5 stripes
        with pytest.raises(RStoreError, match="multiple"):
            yield from client.resize("partial", 192 * KiB)

    cluster.run_app(app())


def test_resize_unknown_region(cluster):
    client = cluster.client(1)

    def app():
        with pytest.raises(RegionNotFoundError):
            yield from client.resize("missing", 64 * KiB)

    cluster.run_app(app())


def test_resize_charges_capacity(cluster):
    client = cluster.client(1)

    def app():
        before = yield from client._master_call("cluster_stats")
        yield from client.alloc("acct-resize", 64 * KiB)
        yield from client.resize("acct-resize", 192 * KiB)
        after = yield from client._master_call("cluster_stats")
        yield from client.free("acct-resize")
        freed = yield from client._master_call("cluster_stats")
        return before, after, freed

    before, after, freed = cluster.run_app(app())
    assert before["total_free"] - after["total_free"] == 192 * KiB
    assert freed["total_free"] == before["total_free"]


def test_replicated_region_resize_keeps_replication(cluster):
    client = cluster.client(1)

    def app():
        yield from client.alloc("rep-resize", 64 * KiB, replication=2)
        desc = yield from client.resize("rep-resize", 128 * KiB)
        return desc

    desc = cluster.run_app(app())
    assert all(s.replication == 2 for s in desc.stripes)
