"""Memory-server internals: arena accounting, boot state, stats RPC."""

import pytest

from repro.core import RStoreConfig
from repro.cluster import build_cluster
from repro.rpc.endpoint import RpcClient
from repro.simnet.config import Gbps, KiB, MiB, ms, us


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
    )


def test_servers_boot_with_registered_arenas(cluster):
    for server in cluster.servers.values():
        assert server.alive
        assert server.arena is not None
        assert server.arena_mr.rkey in server.nic.mr_by_rkey
        assert server.arena.capacity == 16 * MiB


def test_allocation_is_visible_in_server_arenas(cluster):
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("arena-acct", 128 * KiB)
        return region

    region = cluster.run_app(app())
    for stripe in region.stripes:
        arena = cluster.servers[stripe.host_id].arena
        assert arena.used_bytes >= stripe.length


def test_stats_rpc_reports_usage(cluster):
    def app():
        rpc = RpcClient(cluster.sim, cluster.nics[1], cluster.cm)
        yield from rpc.connect(2, cluster.config.mem_service)
        stats = yield from rpc.call("stats")
        return stats

    stats = cluster.run_app(app())
    assert stats["host_id"] == 2
    assert stats["capacity"] == 16 * MiB
    assert 0 <= stats["free"] <= 16 * MiB
    assert stats["live_allocations"] >= 0


def test_unit_helpers():
    assert Gbps(10) == 10e9
    assert us(2) == pytest.approx(2e-6)
    assert ms(3) == pytest.approx(3e-3)
    assert KiB == 1024 and MiB == 1024 * 1024
