"""The asynchronous data path: futures, IoBatch, doorbell batching."""

import pytest

from repro.cluster import build_cluster
from repro.core import NotMappedError, RStoreConfig
from repro.simnet.config import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )


def test_async_write_then_read(cluster):
    client = cluster.client(1)

    def app():
        yield from client.alloc("async-rt", 256 * KiB)
        mapping = yield from client.map("async-rt")
        wfut = yield from mapping.write_async(4096, b"future-bytes")
        count = yield from wfut.wait()
        rfut = yield from mapping.read_async(4096, 12)
        data = yield from rfut.wait()
        return count, data

    count, data = cluster.run_app(app())
    assert count == 12
    assert data == b"future-bytes"


def test_future_fields_after_resolution(cluster):
    client = cluster.client(1)

    def app():
        yield from client.alloc("async-fields", 64 * KiB)
        mapping = yield from client.map("async-fields")
        fut = yield from mapping.write_async(0, b"x" * 100)
        assert not fut.done
        yield from fut.wait()
        assert fut.done and fut.error is None
        assert fut.value == 100
        assert fut.resolved_at == cluster.sim.now
        assert fut.resolve_index is not None
        # a second wait on a resolved future returns immediately
        again = yield from fut.wait()
        return again

    assert cluster.run_app(app()) == 100


def test_multiple_waiters_on_one_future(cluster):
    client = cluster.client(2)
    sim = cluster.sim

    def app():
        yield from client.alloc("async-waiters", 64 * KiB)
        mapping = yield from client.map("async-waiters")
        yield from mapping.write(0, b"shared-payload")
        fut = yield from mapping.read_async(0, 14)
        seen = []

        def waiter(tag):
            value = yield from fut.wait()
            seen.append((tag, value))

        procs = [sim.process(waiter(t)) for t in ("a", "b", "c")]
        yield sim.all_of(procs)
        return seen

    seen = cluster.run_app(app())
    assert sorted(seen) == [(t, b"shared-payload") for t in ("a", "b", "c")]


def test_batched_reads_overlap_round_trips(cluster):
    """A flushed batch overlaps round trips the sync loop serializes."""
    client = cluster.client(2)
    n, size = 16, 512

    def app():
        yield from client.alloc("async-overlap", 256 * KiB)
        mapping = yield from client.map("async-overlap")
        blob = bytes(i % 251 for i in range(256 * KiB))
        yield from mapping.write(0, blob)

        t0 = cluster.sim.now
        sync = []
        for i in range(n):
            sync.append((yield from mapping.read(i * 16 * KiB, size)))
        sync_elapsed = cluster.sim.now - t0

        t1 = cluster.sim.now
        batch = client.batch()
        for i in range(n):
            yield from batch.read(mapping, i * 16 * KiB, size)
        yield from batch.flush()
        values = yield from batch.wait_all()
        batched_elapsed = cluster.sim.now - t1
        return sync, values, sync_elapsed, batched_elapsed

    sync, values, sync_elapsed, batched_elapsed = cluster.run_app(app())
    assert values == sync
    assert batched_elapsed * 3 < sync_elapsed


def test_doorbells_fewer_than_ops(cluster):
    """One flush rings the NIC once for a whole same-QP batch."""
    client = cluster.client(3)
    nic = client.nic

    def app():
        yield from client.alloc("async-bell", 256 * KiB)
        mapping = yield from client.map("async-bell")
        yield from mapping.write(0, bytes(64 * KiB))
        bells0, ops0 = nic.doorbells_rung, nic.ops_posted
        batch = client.batch()
        for i in range(32):
            # same stripe, non-adjacent: 32 distinct WRs on one QP
            yield from batch.read(mapping, i * 512, 64)
        posted = yield from batch.flush()
        yield from batch.wait_all()
        return posted, nic.doorbells_rung - bells0, nic.ops_posted - ops0

    posted, doorbells, ops = cluster.run_app(app())
    assert posted == 32
    assert ops == 32
    assert doorbells < ops
    assert doorbells == 1  # whole batch fits one doorbell window


def test_adjacent_pieces_coalesce(cluster):
    """Contiguous same-direction ops merge into a single work request."""
    client = cluster.client(0)

    def app():
        yield from client.alloc("async-merge", 256 * KiB)
        mapping = yield from client.map("async-merge")
        blob = bytes(range(256)) * 16
        yield from mapping.write(0, blob)
        local = yield from client.alloc_local(4 * KiB)
        batch = client.batch()
        futs = [
            batch.read_into(mapping, local, local.addr + i * 256,
                            i * 256, 256)
            for i in range(16)
        ]
        posted = yield from batch.flush()
        yield from batch.wait_all()
        assert all(f.done and f.error is None for f in futs)
        return posted, local.buffer.read(0, 4 * KiB), blob

    posted, data, blob = cluster.run_app(app())
    assert posted == 1  # sixteen adjacent reads rode one wire op
    assert data == blob


def test_batched_atomics_complete_in_post_order(cluster):
    """RC in-order execution: batched FAAs observe sequential old values."""
    client = cluster.client(1)

    def app():
        yield from client.alloc("async-faa", 4 * KiB)
        mapping = yield from client.map("async-faa")
        batch = client.batch()
        for _ in range(8):
            batch.faa(mapping, 0, 1)
        yield from batch.flush()
        olds = yield from batch.wait_all()
        value = yield from mapping.read(0, 8)
        return olds, int.from_bytes(value, "little")

    olds, value = cluster.run_app(app())
    assert olds == list(range(8))
    assert value == 8


def test_batch_spans_mappings(cluster):
    """One IoBatch mixes ops against different regions and op kinds."""
    client = cluster.client(3)

    def app():
        yield from client.alloc("async-a", 64 * KiB)
        yield from client.alloc("async-b", 64 * KiB)
        ma = yield from client.map("async-a")
        mb = yield from client.map("async-b")
        batch = client.batch()
        yield from batch.write(ma, 0, b"alpha")
        yield from batch.write(mb, 0, b"bravo")
        batch.faa(ma, 1024, 5)
        yield from batch.flush()
        results = yield from batch.wait_all()
        a = yield from ma.read(0, 5)
        b = yield from mb.read(0, 5)
        return results, a, b

    results, a, b = cluster.run_app(app())
    assert results == [5, 5, 0]
    assert (a, b) == (b"alpha", b"bravo")


def test_wait_all_returns_queue_order(cluster):
    """Values come back in submission order even when sizes differ."""
    client = cluster.client(2)

    def app():
        yield from client.alloc("async-order", 256 * KiB)
        mapping = yield from client.map("async-order")
        yield from mapping.write(0, bytes([7]) * (128 * KiB))
        batch = client.batch()
        # a large read first: it finishes *after* the small ones
        yield from batch.read(mapping, 0, 100 * KiB)
        for i in range(4):
            yield from batch.read(mapping, i * 64, 16)
        yield from batch.flush()
        values = yield from batch.wait_all()
        return [len(v) for v in values]

    assert cluster.run_app(app()) == [100 * KiB, 16, 16, 16, 16]


def test_unmap_fails_inflight_async_ops(cluster):
    client = cluster.client(2)

    def app():
        yield from client.alloc("async-unmap", 256 * KiB)
        mapping = yield from client.map("async-unmap")
        fut = yield from mapping.read_async(0, 128 * KiB)
        assert not fut.done
        mapping.unmap()
        # the failure is delivered at the unmap instant, not when the
        # orphaned completions eventually drain
        assert fut.done
        with pytest.raises(NotMappedError):
            yield from fut.wait()
        # late completions for the in-flight WRs are ignored quietly
        yield cluster.sim.timeout(0.05)
        return fut.error

    err = cluster.run_app(app())
    assert "unmapped with the operation in flight" in str(err)


def test_zero_length_ops_resolve_immediately(cluster):
    client = cluster.client(0)

    def app():
        yield from client.alloc("async-zero", 64 * KiB)
        mapping = yield from client.map("async-zero")
        batch = client.batch()
        rfut = yield from batch.read(mapping, 0, 0)
        wfut = yield from batch.write(mapping, 0, b"")
        posted = yield from batch.flush()
        values = yield from batch.wait_all()
        return posted, rfut.done, wfut.done, values

    posted, rdone, wdone, values = cluster.run_app(app())
    assert posted == 0
    assert rdone and wdone
    assert values == [b"", 0]


def test_blocking_wrappers_unchanged(cluster):
    """The sync API rides the async path but keeps its old contract."""
    client = cluster.client(1)

    def app():
        yield from client.alloc("async-compat", 64 * KiB)
        mapping = yield from client.map("async-compat")
        n = yield from mapping.write(100, b"classic")
        data = yield from mapping.read(100, 7)
        old = yield from mapping.faa(0, 3)
        swapped = yield from mapping.cas(0, 3, 42)
        final = yield from mapping.read(0, 8)
        return n, data, old, swapped, int.from_bytes(final, "little")

    assert cluster.run_app(app()) == (7, b"classic", 0, 3, 42)
