"""Master-side synchronization: barriers, allreduce, notifications."""

import pytest

from repro.core import RStoreConfig
from repro.cluster import build_cluster
from repro.simnet.config import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
    )


def test_barrier_generations_advance(cluster):
    client = cluster.client(1)

    def app():
        generations = []
        for _round in range(3):
            g = yield from client.barrier("solo", 1)
            generations.append(g)
        return generations

    assert cluster.run_app(app()) == [0, 1, 2]


def test_barrier_size_mismatch_rejected(cluster):
    c0, c1 = cluster.client(0), cluster.client(1)
    sim = cluster.sim

    def first():
        yield from c0.barrier("mismatch", 2)

    def second():
        from repro.core import RStoreError

        yield sim.timeout(0.001)
        with pytest.raises(RStoreError, match="mismatch"):
            yield from c1.barrier("mismatch", 3)
        # release the first waiter so the test simulation drains
        yield from c1.barrier("mismatch", 2)

    def app():
        p1 = cluster.spawn(first())
        p2 = cluster.spawn(second())
        yield sim.all_of([p1, p2])

    cluster.run_app(app())


def test_allreduce_sums_across_participants(cluster):
    sim = cluster.sim
    totals = []

    def worker(host, value):
        total = yield from cluster.client(host).allreduce("sum1", 3, value)
        totals.append(total)

    def app():
        procs = [
            cluster.spawn(worker(h, v))
            for h, v in ((0, 10), (1, 20), (2, 12))
        ]
        yield sim.all_of(procs)

    cluster.run_app(app())
    assert totals == [42, 42, 42]


def test_allreduce_rounds_are_independent(cluster):
    sim = cluster.sim
    results = []

    def worker(host, a, b):
        first = yield from cluster.client(host).allreduce("r0", 2, a)
        second = yield from cluster.client(host).allreduce("r1", 2, b)
        results.append((first, second))

    def app():
        procs = [
            cluster.spawn(worker(0, 1, 100)),
            cluster.spawn(worker(1, 2, 200)),
        ]
        yield sim.all_of(procs)

    cluster.run_app(app())
    assert results == [(3, 300), (3, 300)]


def test_notify_before_wait_is_not_lost(cluster):
    client = cluster.client(2)

    def app():
        yield from client.notify("early-note", 123)
        yield cluster.sim.timeout(0.01)
        value = yield from client.wait_note("early-note")
        return value

    assert cluster.run_app(app()) == 123


def test_multiple_waiters_all_woken(cluster):
    sim = cluster.sim
    got = []

    def waiter(host):
        value = yield from cluster.client(host).wait_note("broadcast")
        got.append((host, value))

    def app():
        procs = [cluster.spawn(waiter(h)) for h in (0, 1, 2)]
        yield sim.timeout(0.005)
        yield from cluster.client(3).notify("broadcast", "go")
        yield sim.all_of(procs)

    cluster.run_app(app())
    assert sorted(got) == [(0, "go"), (1, "go"), (2, "go")]
