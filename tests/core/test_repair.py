"""Background stripe repair: self-healing replication.

Semantics pinned here:

* killing one server of a ``replication=2`` region during sustained
  writes is invisible to the application — zero errors, every write
  readable afterwards — and the master heals the region back to full
  replication in the background (version advances past the promotion
  bump);
* the repaired copy lands on a live server that did not already hold
  one, and its bytes match the surviving primary;
* injected transient wire faults are absorbed by client retry;
* the whole scenario — fault schedule, repair timeline, final bytes —
  replays bit-for-bit from a fixed seed.
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig, RStoreError
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

REGION = 256 * KiB
CHUNK = 4 * KiB


def fresh_cluster(seed=7, machines=5, faults=None):
    return build_cluster(
        num_machines=machines,
        config=RStoreConfig(stripe_size=64 * KiB, heartbeat_interval_s=0.02,
                            lease_timeout_s=0.07, seed=seed),
        server_capacity=64 * MiB,
        faults=faults,
    )


def _pattern(i):
    return bytes((i * 37 + j) % 256 for j in range(CHUNK))


def run_kill_under_writes(seed):
    """Kill one replica holder mid-write-storm; returns the evidence."""
    cluster = fresh_cluster(seed=seed)
    client = cluster.client(1)
    outcome = {}

    def workload():
        region = yield from client.alloc("busy", REGION, replication=2)
        mapping = yield from client.map(region)
        outcome["initial_version"] = region.version
        victim = next(
            h for h in region.hosts
            if h not in (cluster.config.master_host, 1)
        )
        outcome["victim"] = victim
        errors = 0
        for i in range(REGION // CHUNK):
            if i == 8:
                cluster.kill_server(victim)
            try:
                yield from mapping.write(i * CHUNK, _pattern(i))
            except RStoreError:
                errors += 1
        outcome["errors"] = errors

    cluster.run_app(workload())
    # let the lease expire and the background repair drain
    cluster.run(until=cluster.sim.now + 2.0)

    reader = next(
        h for h in range(cluster.num_machines)
        if h not in (cluster.config.master_host, 1, outcome["victim"])
    )

    def read_back():
        mapping = yield from cluster.client(reader).map("busy")
        data = yield from mapping.read(0, REGION)
        return data

    outcome["data"] = cluster.run_app(read_back())
    outcome["region"] = cluster.master.regions["busy"]
    outcome["repair_log"] = list(cluster.master.repair.log)
    outcome["repaired"] = cluster.master.repair.repaired
    outcome["retries"] = client.retries
    outcome["end_time"] = cluster.sim.now
    return outcome


def test_killed_server_heals_without_app_errors():
    outcome = run_kill_under_writes(seed=7)
    region = outcome["region"]
    victim = outcome["victim"]

    assert outcome["errors"] == 0
    assert outcome["retries"] >= 1  # the crash was actually felt
    # healed: every stripe back at two copies, none on the dead server
    assert region.available
    assert all(s.replication == 2 for s in region.stripes)
    assert all(
        victim not in [r.host_id for r in s.replicas]
        for s in region.stripes
    )
    # promotion bumped once, repair at least once more
    assert region.version >= outcome["initial_version"] + 2
    assert outcome["repaired"] >= 1
    # every write is readable afterwards
    expected = b"".join(_pattern(i) for i in range(REGION // CHUNK))
    assert outcome["data"] == expected


def test_kill_scenario_is_deterministic_from_its_seed():
    first = run_kill_under_writes(seed=11)
    second = run_kill_under_writes(seed=11)
    assert first["victim"] == second["victim"]
    assert first["errors"] == second["errors"]
    assert first["retries"] == second["retries"]
    assert first["data"] == second["data"]
    assert first["repair_log"] == second["repair_log"]
    assert first["end_time"] == second["end_time"]
    assert first["region"].version == second["region"].version


def test_repaired_replica_matches_surviving_primary():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def setup():
        region = yield from client.alloc("quiet", REGION, replication=2)
        mapping = yield from client.map(region)
        for i in range(REGION // CHUNK):
            yield from mapping.write(i * CHUNK, _pattern(i))
        return region

    region = cluster.run_app(setup())
    victim = next(
        h for h in region.hosts if h not in (cluster.config.master_host, 1)
    )
    cluster.kill_server(victim)
    cluster.run(until=cluster.sim.now + 2.0)

    healed = cluster.master.regions["quiet"]
    assert all(s.replication == 2 for s in healed.stripes)
    for stripe in healed.stripes:
        views = []
        for replica in stripe.replicas:
            arena_mr = cluster.servers[replica.host_id].arena_mr
            offset = arena_mr.offset_of(replica.addr)
            views.append(arena_mr.buffer.read(offset, stripe.length))
        assert views[0] == views[1], f"stripe {stripe.index} diverged"
        # distinct live hosts hold the two copies
        hosts = [r.host_id for r in stripe.replicas]
        assert len(set(hosts)) == 2
        assert victim not in hosts


def test_repair_status_rpc_reports_the_timeline():
    cluster = fresh_cluster()
    client = cluster.client(1)

    def setup():
        region = yield from client.alloc("observed", REGION, replication=2)
        return region

    region = cluster.run_app(setup())
    victim = next(
        h for h in region.hosts if h not in (cluster.config.master_host, 1)
    )
    cluster.kill_server(victim)
    cluster.run(until=cluster.sim.now + 2.0)

    def status():
        reply = yield from client._master_call("repair_status")
        return reply

    reply = cluster.run_app(status())
    assert reply["pending"] == 0
    assert reply["repaired"] >= 1
    # one full stripe pulled per lost copy, no more, no less
    assert reply["bytes_copied"] == reply["repaired"] * 64 * KiB
    assert any("re-replicated" in msg for _t, msg in reply["log"])


def test_transient_wire_faults_are_absorbed_by_retry():
    faults = FaultInjector(seed=5)
    # the first two data-path launches from host 1 inside the window
    # fail with a completion error (QP goes to ERROR, like real RC)
    faults.fail_wire(1, start=0.0, duration=10.0, times=2)
    cluster = fresh_cluster(faults=faults)
    client = cluster.client(1)

    def app():
        region = yield from client.alloc("bumpy", 64 * KiB, replication=2)
        mapping = yield from client.map(region)
        yield from mapping.write(0, b"despite the weather")
        data = yield from mapping.read(0, 19)
        return data

    assert cluster.run_app(app()) == b"despite the weather"
    assert cluster.faults.injected["wire"] == 2
    assert client.retries >= 1


def test_losing_two_servers_heals_as_long_as_one_copy_survives():
    cluster = fresh_cluster(machines=6)
    client = cluster.client(1)

    def setup():
        region = yield from client.alloc("tough", REGION, replication=2)
        mapping = yield from client.map(region)
        yield from mapping.write(0, b"still here")
        return region

    region = cluster.run_app(setup())
    victims = [
        h for h in region.hosts if h not in (cluster.config.master_host, 1)
    ][:2]
    cluster.kill_server(victims[0])
    cluster.run(until=cluster.sim.now + 1.5)
    cluster.kill_server(victims[1])
    cluster.run(until=cluster.sim.now + 1.5)

    healed = cluster.master.regions["tough"]
    assert healed.available
    assert all(s.replication == 2 for s in healed.stripes)
    for stripe in healed.stripes:
        assert not any(
            r.host_id in victims for r in stripe.replicas
        )

    reader = next(
        h for h in range(cluster.num_machines)
        if h not in (cluster.config.master_host, 1) and h not in victims
    )

    def verify():
        mapping = yield from cluster.client(reader).map("tough")
        data = yield from mapping.read(0, 10)
        return data

    assert cluster.run_app(verify()) == b"still here"


def test_falsely_dead_server_rejoins_fenced_and_clients_ride_through():
    """Lease-expiry edge: heartbeats drop, the server is buried alive.

    The master promotes its replicas away and bumps the epoch; when the
    heartbeats resume the server re-registers *fresh* — recycled arena,
    fence at the new epoch.  A client still holding the pre-death
    mapping fans its next write at the rejoined server with an
    old-epoch stamp: the NIC NAKs it (``StaleEpochError`` under the
    hood), the client remaps immediately and the write lands — one
    fenced retry, zero application errors.
    """
    faults = FaultInjector(seed=13)
    cluster = fresh_cluster(seed=13, faults=faults)
    client = cluster.client(1)

    def setup():
        region = yield from client.alloc("fenced", REGION, replication=2)
        mapping = yield from client.map(region)
        yield from mapping.write(0, _pattern(0))
        return region, mapping

    region, mapping = cluster.run_app(setup())
    victim = next(
        h for h in region.hosts if h not in (cluster.config.master_host, 1)
    )
    # window times count from attach: schedule the drop for "now"
    now_rel = cluster.sim.now - cluster.boot_time
    faults.drop_heartbeats(victim, start=now_rel, duration=0.2)
    # lease (0.07) expires inside the window; the drop outlives it, the
    # first heartbeat after the window triggers the fresh re-register
    cluster.run(until=cluster.sim.now + 0.4)
    assert cluster.faults.injected["heartbeats"] > 0
    slot = cluster.master.allocator.get_server(victim)
    assert slot is not None and slot.alive, "the victim never rejoined"
    assert cluster.master.epoch >= 1  # the false death bumped the fence
    assert cluster.servers[victim].nic.fence_epoch == slot.epoch

    # aim at a stripe the STALE mapping still places on the victim —
    # that is the write whose old-epoch stamp must bounce off the fence
    victim_stripe = next(
        s for s in region.stripes
        if victim in [r.host_id for r in s.replicas]
    )
    offset = victim_stripe.index * 64 * KiB

    def write_through_the_fence():
        yield from mapping.write(offset, _pattern(1))
        head = yield from mapping.read(0, CHUNK)
        fenced = yield from mapping.read(offset, CHUNK)
        return head, fenced

    head, fenced = cluster.run_app(write_through_the_fence())
    assert head == _pattern(0)
    assert fenced == _pattern(1)
    assert client.retries_fenced >= 1, (
        "the write was never fenced — the stale mapping reached "
        "recycled bytes unchallenged"
    )
    healed = cluster.master.regions["fenced"]
    assert healed.available
    assert all(s.replication == 2 for s in healed.stripes)


def test_server_flapping_across_a_master_recovery():
    """Lease-expiry edge: a server goes silent just before the master
    crashes, misses the whole re-registration grace period, and only
    speaks up again after being declared a straggler.

    The restarted master buries it (epoch bump, promotion, repair);
    when the flapper finally reconnects it *asks* for the keep-my-arena
    rejoin — but the master has the last word and forces a fresh
    registration, so the flapper comes back wiped and fenced instead of
    resurrecting orphaned reservations.
    """
    faults = FaultInjector(seed=17)
    faults.crash_master(at=0.15, restart_after=0.05)
    cluster = build_cluster(
        num_machines=5,
        config=RStoreConfig(stripe_size=64 * KiB, heartbeat_interval_s=0.02,
                            lease_timeout_s=0.07, recovery_grace_s=0.1,
                            seed=17),
        server_capacity=64 * MiB,
        faults=faults,
    )
    client = cluster.client(1)

    def setup():
        region = yield from client.alloc("flap", REGION, replication=2)
        mapping = yield from client.map(region)
        yield from mapping.write(0, b"ride the flap")
        return region

    region = cluster.run_app(setup())
    victim = next(
        h for h in region.hosts if h not in (cluster.config.master_host, 1)
    )
    # silent from just before the crash until well past the grace
    # period: the victim never notices the master died (no channel
    # error — its heartbeats are silently swallowed), so it cannot
    # re-register inside the recovery window
    now_rel = cluster.sim.now - cluster.boot_time
    faults.drop_heartbeats(victim, start=now_rel, duration=0.45 - now_rel)
    cluster.run(until=cluster.boot_time + 1.5)

    assert faults.injected["master_crashes"] == 1
    master = cluster.master
    assert master.alive and not master.recovering
    # recovery bumped the epoch once, the straggler burial again
    assert master.epoch >= 2
    slot = master.allocator.get_server(victim)
    assert slot is not None and slot.alive, "the flapper never came back"
    # forced-fresh: the flapper is fenced at its burial-or-later epoch,
    # and its recycled arena donates full capacity again
    assert slot.epoch >= 2
    assert cluster.servers[victim].nic.fence_epoch == slot.epoch
    assert cluster.servers[victim].arena.free_bytes == slot.capacity

    healed = master.regions["flap"]
    assert healed.available
    assert all(s.replication == 2 for s in healed.stripes)

    def verify():
        mapping = yield from cluster.client(3).map("flap")
        data = yield from mapping.read(0, 13)
        return data

    assert cluster.run_app(verify()) == b"ride the flap"
