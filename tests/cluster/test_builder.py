"""Cluster builder options and wiring."""

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB, NetworkConfig


def test_default_layout_matches_paper():
    cluster = build_cluster(num_machines=4, server_capacity=16 * MiB)
    assert cluster.num_machines == 4
    assert sorted(cluster.servers) == [0, 1, 2, 3]
    assert sorted(cluster.clients) == [0, 1, 2, 3]
    assert cluster.master is not None
    assert cluster.boot_time > 0


def test_custom_server_and_client_hosts():
    cluster = build_cluster(
        num_machines=4,
        server_hosts=[1, 2],
        client_hosts=[3],
        server_capacity=16 * MiB,
    )
    assert sorted(cluster.servers) == [1, 2]
    assert sorted(cluster.clients) == [3]

    def app():
        region = yield from cluster.client(3).alloc("t", 64 * KiB)
        return region

    region = cluster.run_app(app())
    assert set(region.hosts) <= {1, 2}


def test_custom_network_config_is_used():
    net_config = NetworkConfig(link_rate_bps=10e9)
    cluster = build_cluster(num_machines=2, net_config=net_config,
                            server_capacity=16 * MiB)
    assert cluster.net.config.link_rate_bps == 10e9


def test_nic_and_tcp_on_every_host():
    cluster = build_cluster(num_machines=3, server_capacity=16 * MiB)
    assert len(cluster.nics) == 3
    assert len(cluster.tcp_stacks) == 3
    for host in cluster.net.hosts:
        assert "rnic" in host.services
        assert "tcp" in host.services


def test_spawn_and_run_until_time():
    cluster = build_cluster(num_machines=2, server_capacity=16 * MiB)
    hits = []

    def ticker():
        for _ in range(3):
            yield cluster.sim.timeout(0.01)
            hits.append(cluster.sim.now)

    cluster.spawn(ticker())
    cluster.run(until=cluster.sim.now + 0.025)
    assert len(hits) == 2


def test_network_bytes_accounting():
    cluster = build_cluster(num_machines=2, server_capacity=16 * MiB)
    before = cluster.network_bytes()

    def app():
        region = yield from cluster.client(0).alloc("traffic", 64 * KiB)
        mapping = yield from cluster.client(0).map(region)
        yield from mapping.write(0, b"x" * 4096)

    cluster.run_app(app())
    assert cluster.network_bytes() > before
