"""Full-mesh socket construction."""

from repro.net.mesh import build_full_mesh
from repro.net.tcp import TcpStack
from repro.simnet.config import NetworkConfig
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Network


def build(n):
    sim = Simulator()
    net = Network(sim, n, NetworkConfig())
    stacks = {i: TcpStack(sim, h, net) for i, h in enumerate(net.hosts)}
    return sim, stacks


def test_mesh_connects_every_pair():
    sim, stacks = build(4)

    def app():
        sockets = yield from build_full_mesh(sim, stacks, port=9100)
        return sockets

    sockets = sim.run(until=sim.process(app()))
    for a in range(4):
        assert sorted(sockets[a]) == [b for b in range(4) if b != a]


def test_mesh_sockets_are_paired():
    sim, stacks = build(3)

    def app():
        sockets = yield from build_full_mesh(sim, stacks, port=9101)
        yield from sockets[0][2].send("zero-to-two")
        msg = yield from sockets[2][0].recv()
        yield from sockets[2][0].send("two-to-zero")
        reply = yield from sockets[0][2].recv()
        return msg, reply

    assert sim.run(until=sim.process(app())) == ("zero-to-two", "two-to-zero")


def test_mesh_closes_listeners():
    sim, stacks = build(2)

    def app():
        yield from build_full_mesh(sim, stacks, port=9102)
        # port free again: a second mesh on the same port must work
        yield from build_full_mesh(sim, stacks, port=9102)

    sim.run(until=sim.process(app()))


def test_single_rank_mesh_is_empty():
    sim, stacks = build(1)

    def app():
        sockets = yield from build_full_mesh(sim, stacks, port=9103)
        return sockets

    assert sim.run(until=sim.process(app())) == {0: {}}
