"""Unit tests for the sockets transport."""

import pytest

from repro.net.tcp import TcpError, TcpStack
from repro.simnet.config import MiB, NetworkConfig, us
from repro.simnet.kernel import Simulator
from repro.simnet.topology import Network


def make_stacks(n=2):
    sim = Simulator()
    net = Network(sim, n, NetworkConfig())
    stacks = [TcpStack(sim, host, net) for host in net.hosts]
    return sim, net, stacks


def run(sim, gen):
    return sim.run(until=sim.process(gen))


def connect_pair(sim, stacks, port=9000):
    """Generator: returns (client_sock, server_sock)."""
    listener = stacks[1].listen(port)
    server_box = []

    def server():
        sock = yield from listener.accept()
        server_box.append(sock)

    sim.process(server())
    client = yield from stacks[0].connect(stacks[1], port)
    # let the accept process run
    yield sim.timeout(0)
    return client, server_box[0]


def test_send_recv_roundtrip():
    sim, _net, stacks = make_stacks()

    def scenario():
        client, server = yield from connect_pair(sim, stacks)
        yield from client.send({"op": "put", "key": 7})
        msg = yield from server.recv()
        return msg

    assert run(sim, scenario()) == {"op": "put", "key": 7}


def test_messages_arrive_in_order():
    sim, _net, stacks = make_stacks()

    def scenario():
        client, server = yield from connect_pair(sim, stacks)
        for i in range(20):
            yield from client.send(i)
        out = []
        for _ in range(20):
            out.append((yield from server.recv()))
        return out

    assert run(sim, scenario()) == list(range(20))


def test_connect_refused_without_listener():
    sim, _net, stacks = make_stacks()

    def scenario():
        with pytest.raises(TcpError, match="refused"):
            yield from stacks[0].connect(stacks[1], 1234)

    run(sim, scenario())


def test_connect_to_dead_host_fails():
    sim, _net, stacks = make_stacks()
    stacks[1].kill()

    def scenario():
        with pytest.raises(TcpError, match="unreachable"):
            yield from stacks[0].connect(stacks[1], 1234)

    run(sim, scenario())


def test_duplicate_bind_rejected():
    _sim, _net, stacks = make_stacks()
    stacks[0].listen(80)
    with pytest.raises(TcpError, match="already bound"):
        stacks[0].listen(80)


def test_small_message_latency_slower_than_rdma():
    """Kernel-stack costs put small messages well above ~2 us."""
    sim, _net, stacks = make_stacks()

    def scenario():
        client, server = yield from connect_pair(sim, stacks)
        t0 = sim.now
        yield from client.send(b"x" * 64)
        yield from server.recv()
        return sim.now - t0

    latency = run(sim, scenario())
    assert latency > us(10)


def test_send_charges_both_cpus():
    sim, net, stacks = make_stacks()

    def scenario():
        client, server = yield from connect_pair(sim, stacks)
        yield from client.send(b"y" * (1 * MiB), wire_size=1 * MiB)
        yield from server.recv()

    run(sim, scenario())
    assert net.host(0).cpu.busy_seconds > 0
    assert net.host(1).cpu.busy_seconds > 0


def test_close_delivers_eof():
    sim, _net, stacks = make_stacks()

    def scenario():
        client, server = yield from connect_pair(sim, stacks)
        client.close()
        msg = yield from server.recv()
        return msg

    assert run(sim, scenario()) is None


def test_send_on_closed_socket_raises():
    sim, _net, stacks = make_stacks()

    def scenario():
        client, _server = yield from connect_pair(sim, stacks)
        client.close()
        with pytest.raises(TcpError, match="closed"):
            yield from client.send(b"zombie")

    run(sim, scenario())


def test_wire_size_override_scales_time():
    sim, _net, stacks = make_stacks()

    def scenario():
        client, server = yield from connect_pair(sim, stacks)
        t0 = sim.now
        yield from client.send(b"tiny", wire_size=8 * MiB)
        yield from server.recv()
        return sim.now - t0

    elapsed = run(sim, scenario())
    # 8 MiB: ~1.2 ms on the wire plus two ~2.6 ms CPU copies
    assert elapsed > 5e-3


def test_bytes_sent_accounting():
    sim, _net, stacks = make_stacks()

    def scenario():
        client, server = yield from connect_pair(sim, stacks)
        yield from client.send(b"q" * 100)
        yield from server.recv()
        return client.bytes_sent

    assert run(sim, scenario()) >= 100
