"""TCP cost-model invariants (the asymmetry against RDMA)."""

from repro.net.tcp import TcpModel
from repro.rdma.device import NicModel
from repro.simnet.config import us


def test_kernel_costs_dwarf_nic_costs():
    tcp = TcpModel()
    nic = NicModel()
    tcp_per_message = tcp.send_overhead_s + tcp.recv_overhead_s
    nic_per_op = nic.doorbell_s + nic.wqe_processing_s + nic.completion_s
    assert tcp_per_message > 10 * nic_per_op


def test_header_overhead_fields():
    tcp = TcpModel()
    assert 0 < tcp.header_fraction < 0.2
    assert tcp.header_floor_bytes >= 40  # IP + TCP headers minimum


def test_connect_cost_is_control_path_scale():
    tcp = TcpModel()
    assert tcp.connect_overhead_s > us(50)
