"""Simulations are bit-for-bit deterministic.

Determinism is what makes simulated measurements citable: the same
configuration must produce the same clock, the same bytes and the same
metrics on every run, regardless of host hash seeds or dict ordering.
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB


def run_scenario():
    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=32 * MiB,
    )
    sim = cluster.sim
    trace = [("boot", cluster.boot_time)]

    def worker(host):
        client = cluster.client(host)
        mapping = yield from client.map("det")
        local = yield from client.alloc_local(64 * KiB)
        for i in range(5):
            yield from mapping.write_from(local, local.addr,
                                          (host * 5 + i) * KiB, KiB)
            yield from mapping.read_into(local, local.addr, 0, 4 * KiB)
        trace.append((f"worker-{host}", sim.now))

    def app():
        yield from cluster.client(0).alloc("det", 256 * KiB)
        procs = [sim.process(worker(h)) for h in (1, 2, 3)]
        yield sim.all_of(procs)
        old = yield from (yield from cluster.client(1).map("det")).faa(0, 7)
        trace.append(("faa", old, sim.now))

    cluster.run_app(app())
    trace.append(("bytes", cluster.network_bytes()))
    trace.append(("end", sim.now))
    return trace


def test_identical_runs_produce_identical_traces():
    assert run_scenario() == run_scenario()


def test_sort_is_deterministic():
    from repro.sort import RSort

    def one():
        cluster = build_cluster(
            num_machines=3,
            config=RStoreConfig(stripe_size=64 * KiB),
            server_capacity=64 * MiB,
        )
        sorter = RSort(cluster, records_per_worker=1200, seed=9, tag="det")
        stats = cluster.run_app(sorter.run())
        output = cluster.run_app(sorter.collect_output())
        return stats.elapsed, output.tobytes()

    first = one()
    second = one()
    assert first[0] == second[0]
    assert first[1] == second[1]


def test_pagerank_is_deterministic():
    import numpy as np

    from repro.graph import PageRankProgram, RStoreGraphEngine
    from repro.graph.loader import Graph
    from repro.workloads.graphs import rmat_edges

    def one():
        cluster = build_cluster(
            num_machines=3,
            config=RStoreConfig(stripe_size=128 * KiB),
            server_capacity=64 * MiB,
        )
        src, dst = rmat_edges(scale=10, edge_factor=8, seed=3)
        graph = Graph.from_edges(1 << 10, src, dst)
        engine = RStoreGraphEngine(cluster, graph, tag="det")
        stats = cluster.run_app(engine.run(PageRankProgram(iterations=4)))
        return stats.elapsed, stats.values.tobytes()

    a = one()
    b = one()
    assert a[0] == b[0]
    assert a[1] == b[1]
