"""Property tests driving the full applications at random shapes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB


@settings(max_examples=8, deadline=None)
@given(
    records=st.integers(min_value=200, max_value=2500),
    workers=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=1 << 16),
    scale=st.sampled_from([1, 1, 17]),
)
def test_rsort_any_shape_sorts_correctly(records, workers, seed, scale):
    from repro.sort import RSort
    from repro.workloads.kv import is_sorted

    cluster = build_cluster(
        num_machines=workers,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )
    sorter = RSort(cluster, records_per_worker=records, seed=seed,
                   scale=scale, tag="prop")
    stats = cluster.run_app(sorter.run())
    output = cluster.run_app(sorter.collect_output())
    assert is_sorted(output)
    assert len(output) == records * workers
    assert stats.elapsed > 0


@settings(max_examples=8, deadline=None)
@given(
    scale=st.integers(min_value=7, max_value=11),
    edge_factor=st.integers(min_value=2, max_value=12),
    workers=st.integers(min_value=2, max_value=4),
    seed=st.integers(min_value=0, max_value=1 << 16),
)
def test_distributed_pagerank_matches_sequential(scale, edge_factor,
                                                 workers, seed):
    from repro.graph import PageRankProgram, RStoreGraphEngine
    from repro.graph.loader import Graph
    from repro.workloads.graphs import rmat_edges

    src, dst = rmat_edges(scale=scale, edge_factor=edge_factor, seed=seed)
    graph = Graph.from_edges(1 << scale, src, dst)
    cluster = build_cluster(
        num_machines=workers,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=128 * MiB,
    )
    program = PageRankProgram(iterations=4)
    engine = RStoreGraphEngine(cluster, graph, tag="prop")
    stats = cluster.run_app(engine.run(program))

    n = graph.num_vertices
    x = program.initial(graph, 0, n)
    for _ in range(4):
        x, _changed = program.apply(graph, x, 0, n)
    np.testing.assert_allclose(stats.values, x, rtol=1e-12)


@settings(max_examples=6, deadline=None)
@given(
    scale=st.integers(min_value=6, max_value=10),
    source=st.integers(min_value=0, max_value=63),
    seed=st.integers(min_value=0, max_value=1 << 16),
)
def test_distributed_bfs_matches_networkx(scale, source, seed):
    networkx = pytest.importorskip("networkx")
    from repro.graph import BfsProgram, RStoreGraphEngine
    from repro.graph.loader import Graph
    from repro.workloads.graphs import erdos_renyi_edges

    n = 1 << scale
    src, dst = erdos_renyi_edges(n, 4 * n, seed=seed)
    graph = Graph.from_edges(n, src, dst)
    cluster = build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )
    engine = RStoreGraphEngine(cluster, graph, tag="prop-bfs")
    stats = cluster.run_app(engine.run(BfsProgram(source=source)))

    nxg = networkx.DiGraph()
    nxg.add_nodes_from(range(n))
    nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
    expected = networkx.single_source_shortest_path_length(nxg, source)
    for vertex in range(n):
        if vertex in expected:
            assert stats.values[vertex] == expected[vertex]
        else:
            assert np.isinf(stats.values[vertex])
