"""Whole-stack consistency: the store behaves like remote memory.

Hypothesis drives random operation sequences through the full simulated
stack (client library → verbs → fabric → server arenas) and checks
every read against a plain ``bytearray`` reference model.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB

REGION_SIZE = 256 * KiB


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.booleans(),  # write?
            st.integers(min_value=0, max_value=REGION_SIZE - 1),
            st.integers(min_value=1, max_value=16 * KiB),
        ),
        min_size=1,
        max_size=25,
    ),
    stripe_kib=st.sampled_from([16, 64, 177]),
)
def test_random_ops_match_bytearray_model(ops, stripe_kib):
    cluster = build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=stripe_kib * KiB),
        server_capacity=16 * MiB,
    )
    client = cluster.client(1)
    reference = bytearray(REGION_SIZE)
    rng = np.random.default_rng(1234)

    def app():
        region = yield from client.alloc("model", REGION_SIZE)
        mapping = yield from client.map(region)
        for is_write, offset, length in ops:
            length = min(length, REGION_SIZE - offset)
            if is_write:
                payload = rng.integers(0, 256, length,
                                       dtype=np.uint8).tobytes()
                yield from mapping.write(offset, payload)
                reference[offset : offset + length] = payload
            else:
                data = yield from mapping.read(offset, length)
                assert data == bytes(reference[offset : offset + length])
        whole = yield from read_all(mapping)
        assert whole == bytes(reference)

    def read_all(mapping):
        parts = []
        pos = 0
        while pos < REGION_SIZE:
            take = min(4 * MiB, REGION_SIZE - pos)
            parts.append((yield from mapping.read(pos, take)))
            pos += take
        return b"".join(parts)

    cluster.run_app(app())


def test_interleaved_writers_to_disjoint_ranges():
    """Concurrent clients writing disjoint halves never interfere."""
    cluster = build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
    )
    sim = cluster.sim
    half = REGION_SIZE // 2

    def writer(host, base, fill):
        client = cluster.client(host)
        mapping = yield from client.map("halves")
        for i in range(8):
            yield from mapping.write(base + i * (half // 8),
                                     bytes([fill]) * (half // 8))

    def app():
        yield from cluster.client(0).alloc("halves", REGION_SIZE)
        procs = [
            sim.process(writer(1, 0, 0xAA)),
            sim.process(writer(2, half, 0xBB)),
        ]
        yield sim.all_of(procs)
        mapping = yield from cluster.client(0).map("halves")
        lo = yield from mapping.read(0, half)
        hi = yield from mapping.read(half, half)
        return lo, hi

    lo, hi = cluster.run_app(app())
    assert lo == bytes([0xAA]) * half
    assert hi == bytes([0xBB]) * half


def test_graph_and_sort_share_one_cluster():
    """Two full applications coexist on the same deployment."""
    from repro.graph import PageRankProgram, RStoreGraphEngine
    from repro.graph.loader import Graph
    from repro.sort import RSort
    from repro.workloads.graphs import rmat_edges
    from repro.workloads.kv import is_sorted

    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=128 * KiB),
        server_capacity=256 * MiB,
    )
    src, dst = rmat_edges(scale=9, edge_factor=8, seed=2)
    graph = Graph.from_edges(1 << 9, src, dst)
    engine = RStoreGraphEngine(cluster, graph, tag="coexist-g")
    sorter = RSort(cluster, records_per_worker=1500, seed=6, tag="coexist-s")

    sim = cluster.sim
    results = {}

    def run_graph():
        stats = yield from engine.run(PageRankProgram(iterations=4))
        results["ranks"] = stats.values

    def run_sort():
        yield from sorter.run()
        out = yield from sorter.collect_output()
        results["sorted"] = out

    def app():
        yield sim.all_of([sim.process(run_graph()), sim.process(run_sort())])

    cluster.run_app(app())
    assert results["ranks"].sum() == pytest.approx(1.0, abs=1e-9)
    assert is_sorted(results["sorted"])
    assert len(results["sorted"]) == sorter.total_records
