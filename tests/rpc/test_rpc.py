"""Tests for RPC over RDMA messaging and over TCP."""

import pytest

from repro.net.tcp import TcpStack
from repro.rpc.endpoint import (
    RpcClient,
    RpcRemoteError,
    RpcServer,
    RpcTimeout,
    TcpRpcClient,
    TcpRpcServer,
)
from repro.simnet.config import us

from tests.rdma.helpers import make_world, run


def add_handler(world):
    def add(a, b):
        yield world.sim.timeout(0)
        return a + b

    return add


def boom_handler(world):
    def boom():
        yield world.sim.timeout(0)
        raise ValueError("deliberate failure")

    return boom


def setup_rdma_rpc(world, server_host=1, client_host=0):
    """Generator: returns a connected (server, client)."""
    server = RpcServer(world.sim, world.nics[server_host], world.cm, "svc")
    server.register("add", add_handler(world))
    server.register("boom", boom_handler(world))
    yield from server.start()
    client = RpcClient(world.sim, world.nics[client_host], world.cm)
    yield from client.connect(server_host, "svc")
    return server, client


class TestRdmaRpc:
    def test_call_returns_result(self):
        world = make_world()

        def scenario():
            _server, client = yield from setup_rdma_rpc(world)
            result = yield from client.call("add", 2, 40)
            return result

        assert run(world, scenario()) == 42

    def test_remote_exception_reraises(self):
        world = make_world()

        def scenario():
            _server, client = yield from setup_rdma_rpc(world)
            with pytest.raises(RpcRemoteError, match="deliberate failure"):
                yield from client.call("boom")

        run(world, scenario())

    def test_unknown_method_errors(self):
        world = make_world()

        def scenario():
            _server, client = yield from setup_rdma_rpc(world)
            with pytest.raises(RpcRemoteError, match="no such method"):
                yield from client.call("missing")

        run(world, scenario())

    def test_concurrent_calls_multiplex(self):
        world = make_world()

        def scenario():
            _server, client = yield from setup_rdma_rpc(world)
            results = []

            def one_call(a, b):
                r = yield from client.call("add", a, b)
                results.append(r)

            procs = [
                world.sim.process(one_call(i, 100)) for i in range(10)
            ]
            yield world.sim.all_of(procs)
            return sorted(results)

        assert run(world, scenario()) == [100 + i for i in range(10)]

    def test_server_counts_requests(self):
        world = make_world()

        def scenario():
            server, client = yield from setup_rdma_rpc(world)
            for _ in range(5):
                yield from client.call("add", 1, 1)
            return server.requests_served

        assert run(world, scenario()) == 5

    def test_timeout_on_dead_server(self):
        world = make_world()

        def scenario():
            _server, client = yield from setup_rdma_rpc(world)
            world.nics[1].kill()
            with pytest.raises((RpcTimeout, Exception)):
                yield from client.call("add", 1, 2, timeout=0.05)

        run(world, scenario())

    def test_rpc_round_trip_latency_is_microseconds(self):
        world = make_world()

        def scenario():
            _server, client = yield from setup_rdma_rpc(world)
            t0 = world.sim.now
            yield from client.call("add", 1, 2)
            return world.sim.now - t0

        latency = run(world, scenario())
        # two-sided messaging + dispatch: more than a one-sided read,
        # still far below sockets RPC
        assert us(3) < latency < us(40)

    def test_two_clients_one_server(self):
        world = make_world(num_hosts=3)

        def scenario():
            server = RpcServer(world.sim, world.nics[2], world.cm, "svc")
            server.register("add", add_handler(world))
            yield from server.start()
            results = []
            for host in (0, 1):
                client = RpcClient(world.sim, world.nics[host], world.cm)
                yield from client.connect(2, "svc")
                results.append((yield from client.call("add", host, 10)))
            return results

        assert run(world, scenario()) == [10, 11]


class TestTcpRpc:
    def setup_tcp(self, world):
        stacks = [TcpStack(world.sim, h, world.net) for h in world.net.hosts]
        server = TcpRpcServer(world.sim, stacks[1], port=7000)
        server.register("add", add_handler(world))
        server.register("boom", boom_handler(world))
        server.start()
        return stacks, server

    def test_call_returns_result(self):
        world = make_world()
        stacks, _server = self.setup_tcp(world)

        def scenario():
            client = TcpRpcClient(world.sim, stacks[0])
            yield from client.connect(stacks[1], 7000)
            return (yield from client.call("add", 20, 22))

        assert run(world, scenario()) == 42

    def test_remote_exception_reraises(self):
        world = make_world()
        stacks, _server = self.setup_tcp(world)

        def scenario():
            client = TcpRpcClient(world.sim, stacks[0])
            yield from client.connect(stacks[1], 7000)
            with pytest.raises(RpcRemoteError):
                yield from client.call("boom")

        run(world, scenario())

    def test_tcp_rpc_slower_than_rdma_rpc(self):
        world = make_world()
        stacks, _server = self.setup_tcp(world)

        def scenario():
            rdma_server = RpcServer(world.sim, world.nics[1], world.cm, "svc")
            rdma_server.register("add", add_handler(world))
            yield from rdma_server.start()
            rdma_client = RpcClient(world.sim, world.nics[0], world.cm)
            yield from rdma_client.connect(1, "svc")
            t0 = world.sim.now
            yield from rdma_client.call("add", 1, 2)
            rdma_lat = world.sim.now - t0

            tcp_client = TcpRpcClient(world.sim, stacks[0])
            yield from tcp_client.connect(stacks[1], 7000)
            t1 = world.sim.now
            yield from tcp_client.call("add", 1, 2)
            tcp_lat = world.sim.now - t1
            return rdma_lat, tcp_lat

        rdma_lat, tcp_lat = run(world, scenario())
        assert tcp_lat > 1.5 * rdma_lat
