"""RDMA message-channel edge cases."""

import pytest

from repro.rpc.channel import ChannelClosed, MessageTooLarge, RdmaMsgChannel
from repro.rpc.endpoint import RpcServer
from repro.simnet.config import KiB

from tests.rdma.helpers import make_world, run


def echo_server(world, msg_size=64 * KiB):
    server = RpcServer(world.sim, world.nics[1], world.cm, "echo",
                       msg_size=msg_size)

    def echo(payload):
        yield world.sim.timeout(0)
        return payload

    server.register("echo", echo)
    return server


def test_channel_roundtrip_objects():
    world = make_world()

    def scenario():
        yield from echo_server(world).start()
        channel = yield from RdmaMsgChannel.connect(
            world.cm, world.nics[0], 1, "echo"
        )
        yield from channel.send({"structured": [1, 2, 3]})
        request = None  # the server consumed it; use recv on our side
        return True

    assert run(world, scenario())


def test_message_too_large_rejected():
    world = make_world()

    def scenario():
        yield from echo_server(world, msg_size=4 * KiB).start()
        channel = yield from RdmaMsgChannel.connect(
            world.cm, world.nics[0], 1, "echo", msg_size=4 * KiB
        )
        with pytest.raises(MessageTooLarge):
            yield from channel.send(b"x" * (8 * KiB))

    run(world, scenario())


def test_closed_channel_rejects_send():
    world = make_world()

    def scenario():
        yield from echo_server(world).start()
        channel = yield from RdmaMsgChannel.connect(
            world.cm, world.nics[0], 1, "echo"
        )
        channel.close()
        with pytest.raises(ChannelClosed):
            yield from channel.send(b"late")

    run(world, scenario())


def test_peer_death_surfaces_as_channel_closed():
    world = make_world()

    def scenario():
        yield from echo_server(world).start()
        channel = yield from RdmaMsgChannel.connect(
            world.cm, world.nics[0], 1, "echo"
        )
        world.nics[1].kill()
        with pytest.raises(ChannelClosed):
            yield from channel.send(b"into the void")
        assert channel.closed

    run(world, scenario())


def test_sends_are_serialized_by_the_lock():
    from repro.rpc.message import RpcRequest

    world = make_world()

    def scenario():
        server = echo_server(world)
        yield from server.start()
        channel = yield from RdmaMsgChannel.connect(
            world.cm, world.nics[0], 1, "echo"
        )
        procs = [
            world.sim.process(
                channel.send(RpcRequest(call_id=i, method="echo",
                                        args=(i,)))
            )
            for i in range(8)
        ]
        yield world.sim.all_of(procs)
        # drain the responses so the server isn't blocked mid-send
        for _ in range(8):
            yield from channel.recv()
        return server.requests_served

    run(world, scenario())
