"""RPC endpoint edge cases: pipelining, timeouts, late responses."""

import pytest

from repro.rpc.endpoint import RpcClient, RpcServer, RpcTimeout
from repro.simnet.config import us

from tests.rdma.helpers import make_world, run


def setup(world, handlers):
    server = RpcServer(world.sim, world.nics[1], world.cm, "edge")
    for name, handler in handlers.items():
        server.register(name, handler)

    def connect():
        yield from server.start()
        client = RpcClient(world.sim, world.nics[0], world.cm)
        yield from client.connect(1, "edge")
        return server, client

    return connect


def test_slow_and_fast_calls_interleave():
    world = make_world()
    sim = world.sim

    def slow():
        yield sim.timeout(1e-3)
        return "slow"

    def fast():
        yield sim.timeout(0)
        return "fast"

    def scenario():
        _server, client = yield from setup(
            world, {"slow": slow, "fast": fast}
        )()
        arrival = []

        def call(method):
            result = yield from client.call(method)
            arrival.append((result, sim.now))

        p1 = sim.process(call("slow"))
        p2 = sim.process(call("fast"))
        yield sim.all_of([p1, p2])
        return arrival

    arrival = run(world, scenario())
    # the fast response overtakes the slow one: no head-of-line blocking
    assert arrival[0][0] == "fast"
    assert arrival[1][0] == "slow"


def test_timeout_fires_and_late_response_is_dropped():
    world = make_world()
    sim = world.sim

    def dawdle():
        yield sim.timeout(5e-3)
        return "finally"

    def scenario():
        server, client = yield from setup(world, {"dawdle": dawdle})()
        with pytest.raises(RpcTimeout):
            yield from client.call("dawdle", timeout=1e-3)
        # let the late response arrive; it must be ignored quietly and
        # the connection must remain usable
        yield sim.timeout(10e-3)
        assert client.connected
        result = yield from client.call("dawdle", timeout=1.0)
        return result

    assert run(world, scenario()) == "finally"


def test_duplicate_handler_registration_rejected():
    world = make_world()
    server = RpcServer(world.sim, world.nics[1], world.cm, "dup")

    def h():
        yield world.sim.timeout(0)

    server.register("x", h)
    with pytest.raises(ValueError, match="already registered"):
        server.register("x", h)


def test_many_pipelined_calls_complete_in_order_of_completion():
    world = make_world()
    sim = world.sim

    def delay(ms):
        yield sim.timeout(ms * 1e-3)
        return ms

    def scenario():
        _server, client = yield from setup(world, {"delay": delay})()
        done = []

        def call(ms):
            result = yield from client.call("delay", ms)
            done.append(result)

        procs = [sim.process(call(ms)) for ms in (5, 1, 3, 2, 4)]
        yield sim.all_of(procs)
        return done

    assert run(world, scenario()) == [1, 2, 3, 4, 5]


def test_calls_made_counter():
    world = make_world()
    sim = world.sim

    def noop():
        yield sim.timeout(0)

    def scenario():
        _server, client = yield from setup(world, {"noop": noop})()
        for _ in range(4):
            yield from client.call("noop")
        return client.calls_made

    assert run(world, scenario()) == 4
