"""The one-sided hash table: correctness, races, edge cases."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.kv import KvError, KvFullError, RKVStore
from repro.simnet.config import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )


def make_store(cluster, name, slots=256, **kw):
    client = cluster.client(1)

    def setup():
        store = yield from RKVStore.create(client, name, slots, **kw)
        return store

    return cluster.run_app(setup())


def test_put_get_roundtrip(cluster):
    store = make_store(cluster, "basic")

    def app():
        yield from store.put(b"alpha", b"one")
        yield from store.put(b"beta", b"two")
        a = yield from store.get(b"alpha")
        b = yield from store.get(b"beta")
        missing = yield from store.get(b"gamma")
        return a, b, missing

    assert cluster.run_app(app()) == (b"one", b"two", None)


def test_overwrite_replaces_value(cluster):
    store = make_store(cluster, "overwrite")

    def app():
        yield from store.put(b"k", b"v1")
        yield from store.put(b"k", b"v2-longer")
        return (yield from store.get(b"k"))

    assert cluster.run_app(app()) == b"v2-longer"


def test_delete_and_tombstone_probing(cluster):
    # tiny table forces collisions, exercising the probe chain
    store = make_store(cluster, "tombstones", slots=4)

    def app():
        keys = [b"a", b"b", b"c"]
        for key in keys:
            yield from store.put(key, b"v-" + key)
        deleted = yield from store.delete(b"b")
        missing_after = yield from store.get(b"b")
        # keys that may sit *behind* the tombstone must remain reachable
        survivors = []
        for key in (b"a", b"c"):
            survivors.append((yield from store.get(key)))
        # the tombstone slot is reusable
        yield from store.put(b"d", b"v-d")
        d = yield from store.get(b"d")
        return deleted, missing_after, survivors, d

    deleted, missing, survivors, d = cluster.run_app(app())
    assert deleted is True
    assert missing is None
    assert survivors == [b"v-a", b"v-c"]
    assert d == b"v-d"


def test_delete_missing_returns_false(cluster):
    store = make_store(cluster, "del-miss")

    def app():
        return (yield from store.delete(b"ghost"))

    assert cluster.run_app(app()) is False


def test_table_fills_up(cluster):
    store = make_store(cluster, "full", slots=4)

    def app():
        with pytest.raises(KvFullError):
            for i in range(20):
                yield from store.put(f"key-{i}".encode(), b"v")

    cluster.run_app(app())


def test_key_value_size_limits(cluster):
    store = make_store(cluster, "limits", key_size=8, value_size=16)

    def app():
        with pytest.raises(KvError, match="key"):
            yield from store.put(b"x" * 9, b"v")
        with pytest.raises(KvError, match="value"):
            yield from store.put(b"k", b"v" * 17)
        with pytest.raises(KvError, match="empty"):
            yield from store.put(b"", b"v")
        # at the limits everything works
        yield from store.put(b"x" * 8, b"v" * 16)
        return (yield from store.get(b"x" * 8))

    assert cluster.run_app(app()) == b"v" * 16


def test_second_client_opens_and_shares(cluster):
    store = make_store(cluster, "shared")
    other = cluster.client(3)

    def app():
        yield from store.put(b"from-1", b"hello")
        view = yield from RKVStore.open(other, "shared")
        seen = yield from view.get(b"from-1")
        yield from view.put(b"from-3", b"world")
        back = yield from store.get(b"from-3")
        return seen, back

    assert cluster.run_app(app()) == (b"hello", b"world")


def test_concurrent_writers_distinct_keys(cluster):
    store = make_store(cluster, "concurrent", slots=512)
    sim = cluster.sim

    def writer(worker, count):
        view = yield from RKVStore.open(cluster.client(worker), "concurrent")
        for i in range(count):
            key = f"w{worker}-{i}".encode()
            yield from view.put(key, key[::-1])

    def app():
        procs = [sim.process(writer(w, 20)) for w in (0, 2, 3)]
        yield sim.all_of(procs)
        values = []
        for worker in (0, 2, 3):
            for i in range(20):
                key = f"w{worker}-{i}".encode()
                values.append((yield from store.get(key)) == key[::-1])
        return values

    assert all(cluster.run_app(app()))


def test_concurrent_writers_same_key_last_write_wins(cluster):
    store = make_store(cluster, "race")
    sim = cluster.sim

    def writer(worker):
        view = yield from RKVStore.open(cluster.client(worker), "race")
        for i in range(10):
            yield from view.put(b"hot", f"worker-{worker}-{i}".encode())

    def app():
        procs = [sim.process(writer(w)) for w in (0, 2, 3)]
        yield sim.all_of(procs)
        final = yield from store.get(b"hot")
        return final

    final = cluster.run_app(app())
    # one of the writers' final values; never torn, never stale-empty
    assert final is not None
    assert final.startswith(b"worker-") and final.endswith(b"-9")


def test_multi_get_matches_sequential_gets(cluster):
    store = make_store(cluster, "mget")

    def app():
        for i in range(12):
            yield from store.put(f"key-{i}".encode(), f"val-{i}".encode())
        yield from store.delete(b"key-5")
        keys = [f"key-{i}".encode() for i in range(12)] + [b"ghost", b"key-5"]
        batched = yield from store.multi_get(keys)
        singles = []
        for key in keys:
            singles.append((yield from store.get(key)))
        return batched, singles

    batched, singles = cluster.run_app(app())
    assert batched == singles
    assert batched[0] == b"val-0" and batched[-2] is None and batched[-1] is None


def test_multi_get_probes_past_tombstones(cluster):
    # tiny table forces collisions and probe chains, like the delete test
    store = make_store(cluster, "mget-tomb", slots=4)

    def app():
        for key in (b"a", b"b", b"c"):
            yield from store.put(key, b"v-" + key)
        yield from store.delete(b"b")
        return (yield from store.multi_get([b"a", b"b", b"c", b"nope"]))

    assert cluster.run_app(app()) == [b"v-a", None, b"v-c", None]


def test_multi_get_empty_and_batching_metric(cluster):
    store = make_store(cluster, "mget-batch")
    nic = cluster.client(1).nic

    def app():
        empty = yield from store.multi_get([])
        for i in range(16):
            yield from store.put(f"bk-{i}".encode(), b"x" * i)
        bells0, ops0 = nic.doorbells_rung, nic.ops_posted
        values = yield from store.multi_get(
            [f"bk-{i}".encode() for i in range(16)]
        )
        bells = nic.doorbells_rung - bells0
        ops = nic.ops_posted - ops0
        return empty, values, bells, ops

    empty, values, bells, ops = cluster.run_app(app())
    assert empty == []
    assert values == [b"x" * i for i in range(16)]
    # the snapshot and validation rounds each ride shared doorbells
    assert bells < ops


def test_no_server_cpu_involved(cluster):
    store = make_store(cluster, "offload")
    busy_before = {
        h: cluster.net.host(h).cpu.busy_seconds for h in range(4)
    }

    def app():
        for i in range(30):
            yield from store.put(f"k{i}".encode(), b"v")
            yield from store.get(f"k{i}".encode())

    cluster.run_app(app())
    for h in range(4):
        if h == 1:  # the client's own host works, everyone else sleeps
            continue
        extra = cluster.net.host(h).cpu.busy_seconds - busy_before[h]
        assert extra < 1e-4  # heartbeat noise only


def test_multi_get_snapshots_validate_under_concurrent_writers():
    """A sanitized reader batch-reads while two writers churn every
    key: each returned value must be a whole published value (the
    value embeds its key, so a snapshot mixing two publishes would
    mismatch), the reader must observe the churn actually advancing,
    and RSan must stay silent — the batched validation protocol is
    synchronization enough."""
    from repro.sanitize import rsan_for

    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB, sanitize=True),
        server_capacity=64 * MiB,
    )
    sim = cluster.sim
    keys = [f"key-{i}".encode() for i in range(8)]
    rounds = 20
    writers_done = []

    def writer(host):
        view = yield from RKVStore.open(cluster.client(host), "mg-churn")
        for gen in range(1, rounds + 1):
            for key in keys:
                stamp = f":{host}:{gen}".encode()
                yield from view.put(key, key + stamp)
        writers_done.append(host)

    def reader():
        view = yield from RKVStore.open(cluster.client(3), "mg-churn")
        seen = {key: set() for key in keys}
        while len(writers_done) < 2:
            values = yield from view.multi_get(keys)
            for key, value in zip(keys, values):
                assert value is not None and value.startswith(key + b":"), (
                    f"torn snapshot for {key!r}: {value!r}"
                )
                seen[key].add(value)
            yield sim.timeout(2e-6)
        return seen, view

    def app():
        store = yield from RKVStore.create(cluster.client(0), "mg-churn",
                                           slots=64)
        for key in keys:
            yield from store.put(key, key + b":0:0")
        procs = [cluster.spawn(writer(1)), cluster.spawn(writer(2))]
        read_proc = cluster.spawn(reader())
        yield sim.all_of(procs + [read_proc])
        return read_proc.value

    seen, view = cluster.run_app(app())
    # the reader really interleaved with the churn, per key
    assert all(len(values) > 1 for values in seen.values()), {
        key: len(values) for key, values in seen.items()
    }
    # at least one snapshot raced a writer and was re-validated
    assert view.read_retries > 0
    assert rsan_for(sim).races == [], rsan_for(sim).report()


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "delete"]),
            st.integers(min_value=0, max_value=15),
            st.binary(min_size=0, max_size=24),
        ),
        max_size=40,
    )
)
def test_matches_dict_reference(ops):
    """Property: the table behaves like a dict under any op sequence."""
    cluster = build_cluster(
        num_machines=2,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
    )
    client = cluster.client(1)
    reference: dict[bytes, bytes] = {}

    def app():
        store = yield from RKVStore.create(client, "model", slots=128)
        for op, key_id, value in ops:
            key = f"key-{key_id}".encode()
            if op == "put":
                yield from store.put(key, value)
                reference[key] = value
            elif op == "get":
                got = yield from store.get(key)
                assert got == reference.get(key)
            else:
                existed = yield from store.delete(key)
                assert existed == (key in reference)
                reference.pop(key, None)
        for key, value in reference.items():
            assert (yield from store.get(key)) == value

    cluster.run_app(app())
