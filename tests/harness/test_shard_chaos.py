"""Shard chaos: one metadata shard crashes while the rest keep serving.

Each seed drives a two-tenant allocation storm across a 3-shard
control plane, crashes one shard mid-storm, and asserts the
partitioned-control-plane contract:

* **survivor shards never miss a beat** — allocs and lookups for names
  they own succeed throughout the victim's outage;
* **cached leases ride the outage** — mapping a region of the *dead*
  shard stays a zero-RPC cache hit, and its one-sided reads keep
  flowing (the data plane never routed through the master);
* **replay heals the victim** — committed regions on the crashed shard
  are resolvable after restart and their bytes are intact, while the
  client's first post-recovery mutation on that shard is fenced to the
  new epoch exactly like the single-master chaos suite demands;
* **quota isolation holds under chaos** — one tenant exhausting its
  capacity budget collects ``TenantQuotaExceededError``\\ s without
  costing the other tenant a single allocation.
"""

import random

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.errors import (
    AllocationError,
    DeadlineExceededError,
    MasterUnavailableError,
    TenantQuotaExceededError,
)
from repro.core.shard import ShardMap
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

from tests.harness.schedule import harness_seeds

SHARDS = 3


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        metafunc.parametrize("seed", harness_seeds(metafunc.config))


@pytest.fixture
def sanitize(request):
    return request.config.getoption("--sanitize")


def _await_steady_shard(cluster, client, shard, give_up_after: float):
    """Poll one shard's cluster_stats until it is up and recovered."""
    sim = cluster.sim
    deadline = sim.now + give_up_after
    while sim.now < deadline:
        try:
            stats = yield from client._master_call("cluster_stats",
                                                   shard=shard)
        except (MasterUnavailableError, DeadlineExceededError):
            yield sim.timeout(0.05)
            continue
        if not stats["recovering"]:
            return stats
        yield sim.timeout(0.05)
    raise AssertionError(f"shard {shard} never settled after the crash")


def test_one_shard_crash_leaves_survivors_serving(seed, sanitize):
    print(f"\nshard-chaos seed: {seed}" + (" (sanitized)" if sanitize else ""))
    rng = random.Random(seed ^ 0x5A4D)
    ring = ShardMap(SHARDS)
    # aim the crash at whichever shard owns the first committed name,
    # so the outage always bites a region we hold a cached lease on
    names = [f"{'acme' if i % 2 else 'globex'}/r{i}" for i in range(18)]
    victim_shard = ring.shard_of(names[0])
    survivor_names = [n for n in names if ring.shard_of(n) != victim_shard]
    assert survivor_names, "ring degenerated: every name on one shard"

    faults = FaultInjector(seed=seed)
    faults.crash_master(at=0.08, restart_after=0.15, shard=victim_shard)
    config = RStoreConfig(
        stripe_size=8 * KiB,
        sanitize=sanitize,
        control_shards=SHARDS,
        control_deadline_s=0.1,
        recovery_grace_s=0.2,
        tenant_quota_bytes={"acme": 2 * MiB},
    )
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=24 * MiB,
        faults=faults,
    )
    client = cluster.client(1)
    committed: dict[str, bytes] = {}
    failed: list[str] = []
    outage_survivor_allocs = 0

    def app():
        nonlocal outage_survivor_allocs
        t0 = cluster.sim.now
        # -- before the crash: commit the first few names and cache
        # their leases (alloc populates the metadata cache)
        for name in names[:6]:
            yield from client.alloc(name, 16 * KiB)
            mapping = yield from client.map(name)
            payload = rng.randbytes(4 * KiB)
            yield from mapping.write(0, payload)
            committed[name] = payload
        victim_cached = names[0]
        assert ring.shard_of(victim_cached) == victim_shard

        # -- step into the outage window (crash at 0.08, restart 0.15
        # later): the victim is down, the survivors are not
        yield cluster.sim.timeout(t0 + 0.1 - cluster.sim.now)

        # a cached lease on the DEAD shard still maps and reads with
        # zero control RPCs (the data path is one-sided)
        before = client.master_calls
        mapping = yield from client.map(victim_cached)
        data = yield from mapping.read(0, len(committed[victim_cached]))
        assert data == committed[victim_cached]
        assert client.master_calls == before, (
            f"seed {seed}: mapping a cached region touched a master "
            "during the outage"
        )

        # survivor-shard allocs land while the victim is dark; a
        # victim-shard alloc surfaces a typed failure
        for index, name in enumerate(names[6:], start=6):
            mid_outage = cluster.sim.now < t0 + 0.2
            try:
                yield from client.alloc(name, 16 * KiB)
            except (MasterUnavailableError, DeadlineExceededError,
                    AllocationError):
                assert ring.shard_of(name) == victim_shard, (
                    f"seed {seed}: survivor-shard alloc of {name!r} "
                    "failed during the victim's outage"
                )
                failed.append(name)
            else:
                mapping = yield from client.map(name)
                payload = rng.randbytes(4 * KiB)
                yield from mapping.write(0, payload)
                committed[name] = payload
                if ring.shard_of(name) != victim_shard and mid_outage:
                    outage_survivor_allocs += 1
            yield cluster.sim.timeout(rng.uniform(0.002, 0.008))

        # -- recovery: the victim replays its WAL and settles
        yield from _await_steady_shard(cluster, client, victim_shard,
                                       give_up_after=5.0)

        # the first mutation on the victim shard after its restart
        # carries a stale observed epoch and must take the
        # fence-refresh-retry path — the storm's tail usually already
        # did; otherwise probe it explicitly
        if client.retries_fenced == 0:
            probe = f"acme/post-{seed}"
            while ring.shard_of(probe) != victim_shard:
                probe = probe + "x"
            yield from client.alloc(probe, 16 * KiB)
            committed[probe] = b""
        assert client.retries_fenced > 0, (
            f"seed {seed}: no post-recovery mutation was ever fenced"
        )

        # -- census: committed regions survived, bytes intact
        listed = set((yield from client.list_regions()))
        missing = sorted(set(committed) - listed)
        assert not missing, (
            f"seed {seed}: committed regions lost in the shard crash: "
            f"{missing}"
        )
        for name, payload in sorted(committed.items()):
            if not payload:
                continue
            mapping = yield from client.map(name)
            data = yield from mapping.read(0, len(payload))
            assert data == payload, (
                f"seed {seed}: {name!r} bytes diverged after replay"
            )

        # -- quota isolation under chaos: acme exhausts its budget,
        # globex never notices
        denials = 0
        for index in range(64):
            try:
                yield from client.alloc(f"acme/fill-{index}", 256 * KiB)
            except TenantQuotaExceededError:
                denials += 1
                if denials >= 2:
                    break
            except (MasterUnavailableError, DeadlineExceededError,
                    AllocationError):
                continue
        assert denials >= 2, f"seed {seed}: acme never hit its quota"
        yield from client.alloc("globex/unbothered", 256 * KiB)

    cluster.run_app(app())

    assert faults.injected["master_crashes"] == 1
    assert failed or outage_survivor_allocs, (
        f"seed {seed}: the crash window bit nothing — widen it"
    )
    assert outage_survivor_allocs > 0, (
        f"seed {seed}: no survivor-shard alloc landed during the outage"
    )
    # the survivors' masters never restarted: their epochs never moved
    for shard, master in enumerate(cluster.masters):
        if shard != victim_shard:
            assert master.alive
    rsan = rsan_for(cluster.sim)
    assert rsan.races == [], (
        f"seed {seed}: sanitizer false positive:\n{rsan.report()}"
    )
