"""Fuzzing the data path with randomized wire-fault schedules.

Each seed derives a schedule of ``fail_wire`` windows (a mix of
launch-point faults, where nothing reaches the remote NIC, and
ack-point faults, where the op applies remotely and only its
completion is lost) and drives a mixed workload through them:

* reads and writes replay inside the client and must converge to the
  reference model once the windows close;
* non-idempotent FAAs must apply **exactly once or raise** — an
  ambiguous completion may mean applied-or-not, but never twice — so
  the final counter word is bracketed by the success count below and
  success-plus-ambiguous above.

The seed prints first; re-run one schedule with ``--seed <n>``.
"""

import random

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.errors import RegionUnavailableError
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

from tests.harness.schedule import harness_seeds

_REGION = 64 * KiB
#: the FAA target lives in word 0; bulk data stays above it
_DATA_BASE = 64


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        metafunc.parametrize("seed", harness_seeds(metafunc.config))


def _fault_plan(rng: random.Random, seed: int) -> FaultInjector:
    """3-5 seeded windows against the workload host, capped so the
    client's retry budget (6 attempts) can always outlast a window."""
    faults = FaultInjector(seed=seed)
    for _ in range(rng.randint(3, 5)):
        faults.fail_wire(
            1,  # the workload client's host
            start=0.0,
            duration=10.0,
            probability=rng.uniform(0.15, 0.5),
            times=rng.randint(1, 4),
            where=rng.choice(("launch", "ack")),
        )
    return faults


@pytest.fixture
def sanitize(request):
    return request.config.getoption("--sanitize")


def test_fault_schedule_converges(seed, sanitize):
    print(f"\nfault-fuzz seed: {seed}" + (" (sanitized)" if sanitize else ""))
    rng = random.Random(seed ^ 0x5EED)
    faults = _fault_plan(rng, seed)
    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=8 * KiB, sanitize=sanitize),
        server_capacity=16 * MiB,
        faults=faults,
    )
    client = cluster.client(1)
    model = bytearray(_REGION)
    outcome = {"successes": 0, "ambiguous": 0}

    def reissue(op):
        """Reads/writes converge: replay inside the client, and in the
        worst case (budget exhausted mid-window) re-issue from here."""
        for _ in range(3):
            try:
                return (yield from op())
            except RegionUnavailableError:
                continue
        raise AssertionError(
            f"seed {seed}: op failed to converge within 3 re-issues"
        )

    def app():
        yield from client.alloc("fuzz", _REGION)
        mapping = yield from client.map("fuzz")
        for _ in range(40):
            roll = rng.random()
            if roll < 0.45:
                length = rng.randint(1, 4096)
                offset = rng.randrange(_DATA_BASE, _REGION - length + 1)
                payload = rng.randbytes(length)
                yield from reissue(lambda: mapping.write(offset, payload))
                model[offset:offset + length] = payload
            elif roll < 0.80:
                length = rng.randint(1, 4096)
                offset = rng.randrange(_DATA_BASE, _REGION - length + 1)
                data = yield from reissue(lambda: mapping.read(offset, length))
                assert data == bytes(model[offset:offset + length]), (
                    f"seed {seed}: read at {offset} diverged"
                )
            else:
                # the non-idempotent path: each FAA bumps word 0 by one
                try:
                    yield from mapping.faa(0, 1)
                except RegionUnavailableError:
                    outcome["ambiguous"] += 1
                else:
                    outcome["successes"] += 1
        # the windows' times caps have long since drained; a replayable
        # read of the counter word settles what the FAAs really did
        word = yield from mapping.read(0, 8)
        final = yield from mapping.read(0, _REGION)
        return int.from_bytes(word, "little"), final

    counter, final = cluster.run_app(app())

    # the schedule must actually have bitten for this test to mean much
    assert faults.injected["wire"] > 0, (
        f"seed {seed}: no wire fault fired — widen the windows"
    )
    # exactly-once-or-raise: never double-applied, never silently lost
    lo, hi = outcome["successes"], outcome["successes"] + outcome["ambiguous"]
    assert lo <= counter <= hi, (
        f"seed {seed}: counter {counter} outside [{lo}, {hi}] "
        f"({outcome['ambiguous']} ambiguous FAAs)"
    )
    # reads/writes converged byte-for-byte outside the counter word
    assert bytes(final[_DATA_BASE:]) == bytes(model[_DATA_BASE:]), (
        f"seed {seed}: store diverged from the model after retries"
    )
    # a single sequential client racing nobody: any sanitizer report —
    # even under replay, remap and ambiguous completions — is a false
    # positive in RSan itself
    rsan = rsan_for(cluster.sim)
    assert rsan.races == [], (
        f"seed {seed}: sanitizer false positive under faults:\n"
        f"{rsan.report()}"
    )
