"""Chaos suite for the transactional dataplane: the bank invariant.

A seeded multi-client bank runs transfers through the OCC transaction
runtime while the fault schedule attacks everything around it — the
master crashes mid-run, a host is partitioned away, a wire drops
completions — and the ledger's total balance must be conserved:

* every transfer the runtime reports committed moved money atomically
  (no torn commits, no double-applies from replayed publishes);
* every abort rolled back completely (no lost intent locks, no
  half-written slots);
* the whole schedule replays bit-for-bit with the sanitizer on or off,
  and RSan sees the commit edges, not phantom races.

The seed prints first; re-run one schedule with ``--seed <n>``.
"""

import hashlib
import random

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.kv import RKVStore
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

from tests.harness.schedule import harness_seeds

ACCOUNTS = 24
OPENING = 1000
TRANSFERS_PER_CLIENT = 25
CLIENT_HOSTS = (1, 2, 3)


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        metafunc.parametrize("seed", harness_seeds(metafunc.config))


@pytest.fixture
def sanitize(request):
    return request.config.getoption("--sanitize")


def _keys():
    return [f"acct-{i:02d}".encode() for i in range(ACCOUNTS)]


def _bank_run(seed: int, sanitize: bool):
    """One full chaos schedule; returns everything worth comparing."""
    faults = FaultInjector(seed=seed)
    faults.crash_master(at=0.25, restart_after=0.1)
    faults.partition([[3], [0, 1, 2]], start=0.45, duration=0.3)
    faults.fail_wire(2, start=0.1, duration=1.0, probability=0.25, times=4)
    config = RStoreConfig(
        stripe_size=8 * KiB,
        sanitize=sanitize,
        control_deadline_s=0.3,
        recovery_grace_s=0.2,
    )
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=32 * MiB,
        faults=faults,
    )
    sim = cluster.sim
    keys = _keys()

    def worker(host):
        rng = random.Random(seed * 31 + host)
        view = yield from RKVStore.open(cluster.client(host), "ledger")
        runtime = view.txn(label=f"bank-{host}", retries=500)
        for _ in range(TRANSFERS_PER_CLIENT):
            src, dst = rng.sample(keys, 2)
            amount = rng.randint(1, 50)

            def transfer(txn, src=src, dst=dst, amount=amount):
                a = int((yield from txn.get(view, src)))
                b = int((yield from txn.get(view, dst)))
                yield from txn.put(view, src, str(a - amount).encode())
                yield from txn.put(view, dst, str(b + amount).encode())

            yield from runtime.run(transfer)
            yield sim.timeout(rng.uniform(0.005, 0.02))
        return runtime

    def app():
        store = yield from RKVStore.create(cluster.client(0), "ledger",
                                           slots=128)
        for key in keys:
            yield from store.put(key, str(OPENING).encode())
        procs = [cluster.spawn(worker(host)) for host in CLIENT_HOSTS]
        yield sim.all_of(procs)
        balances = []
        for key in keys:
            balances.append(int((yield from store.get(key))))
        runtimes = [p.value for p in procs]
        return balances, runtimes

    balances, runtimes = cluster.run_app(app())
    rsan = rsan_for(sim)
    digest = hashlib.sha256(
        ";".join(str(b) for b in balances).encode()
    ).hexdigest()
    return {
        "digest": digest,
        "balances": tuple(balances),
        "commits": tuple(rt.commits for rt in runtimes),
        "aborts": tuple(rt.aborts for rt in runtimes),
        "now": sim.now,
        "fault_log": tuple(faults.log),
        "injected_crashes": faults.injected["master_crashes"],
        "injected_partition": faults.injected["partition"],
        "races": list(rsan.races),
        "txn_commits": rsan.txn_commits,
        "txn_aborts": rsan.txn_aborts,
    }


def test_bank_transfers_conserve_balance_under_chaos(seed, sanitize):
    print(f"\ntxn chaos seed: {seed}"
          + (" (sanitized)" if sanitize else ""))
    run = _bank_run(seed, sanitize)

    assert sum(run["balances"]) == ACCOUNTS * OPENING, (
        f"seed {seed}: the ledger leaked money across the fault "
        f"schedule: {run['balances']}"
    )
    # every transfer the workers issued committed exactly once
    assert run["commits"] == tuple(
        TRANSFERS_PER_CLIENT for _ in CLIENT_HOSTS
    ), f"seed {seed}: lost or duplicated commits: {run['commits']}"
    # the schedule actually bit: the crash and the partition both fired
    assert run["injected_crashes"] == 1
    assert run["injected_partition"] > 0, (
        f"seed {seed}: the partition never ate a message — the bank "
        "finished before the window"
    )
    assert run["races"] == [], (
        f"seed {seed}: sanitizer reported races in a serializable "
        f"history: {run['races']}"
    )
    if sanitize:
        # RSan saw one commit edge per committed transaction
        assert run["txn_commits"] == sum(run["commits"])
        assert run["txn_aborts"] == sum(run["aborts"])


def test_txn_chaos_is_bit_identical_with_sanitizer(seed):
    print(f"\ntxn chaos seed: {seed}")
    plain = _bank_run(seed, sanitize=False)
    sanitized = _bank_run(seed, sanitize=True)
    for field in ("digest", "balances", "commits", "aborts", "now",
                  "fault_log"):
        assert plain[field] == sanitized[field], (
            f"seed {seed}: RSan changed the bank schedule's "
            f"{field}: {plain[field]!r} != {sanitized[field]!r}"
        )
