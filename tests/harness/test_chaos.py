"""Chaos suite: control-plane crashes, partitions, and fencing.

Each scenario drives a workload through a seeded fault schedule that
attacks the *control plane* — the master process, the metadata log,
and the fabric between hosts — and asserts the recovery contract:

* **no committed region is ever lost** — an allocation the client saw
  succeed is resolvable (and its bytes intact) after the master
  crashes, restarts, and replays its metadata log;
* **stale holders are fenced, then healed** — a client whose epoch is
  behind gets exactly one deterministic ``StaleEpochError`` round-trip
  (refresh + retry), never a hang or silent corruption;
* **partitioned clients fail fast** — a client cut off from the master
  surfaces a typed error within its control deadline instead of
  retrying forever, and recovers once the partition heals;
* **repair rides out partitions** — server→server copies blocked by a
  split retry after the heal and still restore full replication;
* **the whole circus replays bit-for-bit** — same seed, same schedule,
  same final state, with the race sanitizer on or off.

The seed prints first; re-run one schedule with ``--seed <n>``.
"""

import hashlib
import random

import pytest

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.errors import (
    AllocationError,
    DeadlineExceededError,
    MasterUnavailableError,
)
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

from tests.harness.schedule import harness_seeds


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        metafunc.parametrize("seed", harness_seeds(metafunc.config))


@pytest.fixture
def sanitize(request):
    return request.config.getoption("--sanitize")


def _payload(rng: random.Random, length: int) -> bytes:
    return rng.randbytes(length)


def _await_steady_master(cluster, client, give_up_after: float):
    """Poll cluster_stats until the master is up and done recovering.

    Control calls during the outage fail with typed errors — that is
    the contract — so the poll simply absorbs them and tries again.
    """
    sim = cluster.sim
    deadline = sim.now + give_up_after
    while sim.now < deadline:
        try:
            stats = yield from client._master_call("cluster_stats")
        except (MasterUnavailableError, DeadlineExceededError):
            yield sim.timeout(0.05)
            continue
        if not stats["recovering"]:
            return stats
        yield sim.timeout(0.05)
    raise AssertionError("master never settled after the fault schedule")


# -- scenario 1: master crash in the middle of an allocation storm ----------

def test_master_crash_mid_allocation_loses_no_committed_region(seed, sanitize):
    print(f"\nchaos seed: {seed}" + (" (sanitized)" if sanitize else ""))
    rng = random.Random(seed ^ 0xC4A05)
    faults = FaultInjector(seed=seed)
    faults.crash_master(at=0.08, restart_after=0.12)
    config = RStoreConfig(
        stripe_size=8 * KiB,
        sanitize=sanitize,
        # tight budget: the 0.12s outage plus the 0.2s recovery grace
        # exceed one control deadline, so mid-crash allocations MUST
        # surface typed failures instead of riding the outage out
        control_deadline_s=0.1,
        recovery_grace_s=0.2,
    )
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=16 * MiB,
        faults=faults,
    )
    client = cluster.client(1)
    committed: dict[str, bytes] = {}
    failed: list[str] = []

    def app():
        for index in range(24):
            name = f"r{index}"
            payload = _payload(rng, 4 * KiB)
            try:
                yield from client.alloc(name, 8 * KiB)
            except (MasterUnavailableError, DeadlineExceededError,
                    AllocationError):
                # the crash window: the alloc may or may not have
                # committed master-side — the client only knows it
                # never got an acknowledgement
                failed.append(name)
            else:
                # acknowledged = committed: this region must survive
                mapping = yield from client.map(name)
                yield from mapping.write(0, payload)
                committed[name] = payload
            yield cluster.sim.timeout(rng.uniform(0.005, 0.02))

        yield from _await_steady_master(cluster, client, give_up_after=5.0)

        names = set((yield from client.list_regions()))
        missing = sorted(set(committed) - names)
        assert not missing, (
            f"seed {seed}: committed regions lost across the master "
            f"crash: {missing}"
        )
        stray = sorted(names - set(committed) - set(failed))
        assert not stray, (
            f"seed {seed}: regions appeared that nobody allocated: {stray}"
        )
        for name, payload in sorted(committed.items()):
            mapping = yield from client.map(name)
            data = yield from mapping.read(0, len(payload))
            assert data == payload, (
                f"seed {seed}: {name!r} bytes diverged after recovery"
            )

    cluster.run_app(app())

    assert faults.injected["master_crashes"] == 1
    assert committed, f"seed {seed}: no alloc ever committed"
    assert failed, (
        f"seed {seed}: the crash window never bit an allocation — "
        "widen it"
    )
    # the client rode the outage out via redials, and its first
    # post-recovery mutation was fenced to the new epoch
    assert client.master_redials > 0
    assert client.retries_fenced > 0
    rsan = rsan_for(cluster.sim)
    assert rsan.races == [], (
        f"seed {seed}: sanitizer false positive:\n{rsan.report()}"
    )


# -- scenario 2: a network partition lands on background repair -------------

def test_partition_during_repair_still_restores_replication(seed, sanitize):
    print(f"\nchaos seed: {seed}" + (" (sanitized)" if sanitize else ""))
    rng = random.Random(seed ^ 0x9A27)
    faults = FaultInjector(seed=seed)
    # isolate every memory server from every other one — server→server
    # repair copies are cut, while heartbeats and client traffic
    # (master and clients live on host 0) keep flowing
    faults.partition([[1], [2], [3], [4], [5]], start=0.3, duration=0.5)
    config = RStoreConfig(stripe_size=16 * KiB, sanitize=sanitize)
    cluster = build_cluster(
        num_machines=6, config=config, server_hosts=range(1, 6),
        server_capacity=16 * MiB, faults=faults,
    )
    client = cluster.client(0)
    region_size = 64 * KiB
    payload = _payload(rng, region_size)
    kill_at = rng.uniform(0.03, 0.08)

    def app():
        desc = yield from client.alloc("vault", region_size, replication=2)
        mapping = yield from client.map(desc)
        yield from mapping.write(0, payload)

        yield cluster.sim.timeout(kill_at)
        victim = rng.choice(
            [r.host_id for r in desc.stripes[0].replicas]
        )
        cluster.kill_server(victim)

        # the descriptor still lists the dead host until its lease
        # expires — wait for the master to notice the death first
        deadline = cluster.sim.now + 5.0
        while True:
            stats = yield from client._master_call("cluster_stats")
            if stats["alive_servers"] < 5:
                break
            assert cluster.sim.now < deadline, (
                f"seed {seed}: the master never noticed server "
                f"{victim} dying"
            )
            yield cluster.sim.timeout(0.05)

        # lease expiry (and with it repair) lands inside the partition
        # window; blocked copies must retry after the heal and converge
        while True:
            desc = yield from client.lookup("vault")
            if all(
                s.replication >= desc.target_replication
                for s in desc.stripes
            ):
                break
            assert cluster.sim.now < deadline, (
                f"seed {seed}: repair never restored replication "
                f"(stripes at "
                f"{[s.replication for s in desc.stripes]})"
            )
            yield cluster.sim.timeout(0.05)

        mapping = yield from client.map("vault")
        data = yield from mapping.read(0, region_size)
        assert data == payload, (
            f"seed {seed}: bytes diverged across death + partition + repair"
        )
        status = yield from client._master_call("repair_status")
        return status

    status = cluster.run_app(app())

    assert faults.injected["partition"] > 0, (
        f"seed {seed}: the partition never ate a message — repair "
        "finished outside the window"
    )
    assert status["repaired"] >= 1
    assert status["abandoned"] == 0, (
        f"seed {seed}: repair burned its whole attempt budget inside "
        f"one partition window:\n{status['log']}"
    )
    rsan = rsan_for(cluster.sim)
    assert rsan.races == [], (
        f"seed {seed}: sanitizer false positive:\n{rsan.report()}"
    )


# -- scenario 3: the master crashes again while still recovering ------------

def test_crash_during_recovery_converges(seed, sanitize):
    print(f"\nchaos seed: {seed}" + (" (sanitized)" if sanitize else ""))
    rng = random.Random(seed ^ 0x2CE11)
    faults = FaultInjector(seed=seed)
    faults.crash_master(at=0.06, restart_after=0.08)
    # the second crash lands inside the first restart's recovery grace
    # period — the half-recovered master dies and the *third* instance
    # must replay a log that already contains a recovery epoch bump
    faults.crash_master(at=0.20, restart_after=0.08)
    config = RStoreConfig(
        stripe_size=8 * KiB,
        sanitize=sanitize,
        control_deadline_s=0.3,
        recovery_grace_s=0.25,
    )
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=16 * MiB,
        faults=faults,
    )
    client = cluster.client(2)
    payload = _payload(rng, 8 * KiB)
    t0 = cluster.sim.now

    def app():
        yield from client.alloc("keep", 16 * KiB, replication=2)
        mapping = yield from client.map("keep")
        yield from mapping.write(0, payload)

        # let the whole two-crash schedule play out before settling
        yield cluster.sim.timeout(max(0.0, (t0 + 0.35) - cluster.sim.now))
        assert faults.injected["master_crashes"] == 2, (
            f"seed {seed}: the second crash missed the recovery window"
        )
        stats = yield from _await_steady_master(
            cluster, client, give_up_after=6.0
        )
        # both recoveries bumped the epoch (server deaths may add more)
        assert stats["epoch"] >= 2, (
            f"seed {seed}: epoch {stats['epoch']} after two recoveries"
        )
        assert stats["alive_servers"] == 4, (
            f"seed {seed}: a server never found its way back: {stats}"
        )
        # the namespace survived two generations of master
        yield from client.alloc("after", 8 * KiB)
        names = yield from client.list_regions()
        assert {"keep", "after"} <= set(names)
        mapping = yield from client.map("keep")
        data = yield from mapping.read(0, len(payload))
        assert data == payload, (
            f"seed {seed}: bytes diverged across the double crash"
        )

    cluster.run_app(app())

    assert cluster.master.alive and not cluster.master.recovering
    rsan = rsan_for(cluster.sim)
    assert rsan.races == [], (
        f"seed {seed}: sanitizer false positive:\n{rsan.report()}"
    )


# -- scenario 4: epoch fencing is deterministic -----------------------------

def _fence_run(sanitize: bool):
    """One run of the lease-expiry fence scenario; returns its digest."""
    faults = FaultInjector(seed=7)
    faults.drop_heartbeats(2, start=0.02, duration=0.7)
    config = RStoreConfig(stripe_size=8 * KiB, sanitize=sanitize)
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=16 * MiB,
        faults=faults,
    )
    client = cluster.client(1)

    def app():
        # learns epoch 0 here
        yield from client.alloc("a", 16 * KiB, replication=2)
        # server 2's lease expires mid-sleep: epoch bumps master-side
        yield cluster.sim.timeout(0.8)
        # this mutation carries the stale epoch — the master fences it,
        # the client refreshes and retries exactly once, and it lands
        yield from client.alloc("b", 8 * KiB)
        stats = yield from client._master_call("cluster_stats")
        return stats

    stats = cluster.run_app(app())
    assert faults.injected["heartbeats"] > 0
    return (
        client.retries_fenced,
        stats["epoch"],
        cluster.master.epoch,
        cluster.sim.now,
    )


def test_stale_epoch_fence_fires_exactly_once_and_replays(sanitize):
    first = _fence_run(sanitize)
    fenced, epoch, master_epoch, _now = first
    assert fenced == 1, (
        f"expected exactly one fenced retry, saw {fenced}"
    )
    assert epoch >= 1 and epoch == master_epoch
    # the same schedule replays bit-for-bit, fence included
    assert _fence_run(sanitize) == first


# -- scenario 5: a partitioned client fails fast, then heals ----------------

def test_partitioned_client_fails_within_its_deadline(seed, sanitize):
    print(f"\nchaos seed: {seed}" + (" (sanitized)" if sanitize else ""))
    faults = FaultInjector(seed=seed)
    faults.partition([[2], [0, 1, 3]], start=0.0, duration=2.5)
    config = RStoreConfig(
        stripe_size=8 * KiB, sanitize=sanitize, control_deadline_s=0.8,
    )
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=16 * MiB,
        faults=faults,
    )
    client = cluster.client(2)
    # budget + one NIC retry-timeout round + one backoff: the absolute
    # worst-case overshoot of the typed failure
    slack = 1.0
    heal_at = cluster.sim.now + 2.5

    def app():
        start = cluster.sim.now
        with pytest.raises((MasterUnavailableError, DeadlineExceededError)):
            yield from client.alloc("wedged", 8 * KiB)
        elapsed = cluster.sim.now - start
        assert elapsed <= config.control_deadline_s + slack, (
            f"seed {seed}: partitioned client took {elapsed:.3f}s to "
            f"fail (deadline {config.control_deadline_s}s)"
        )
        # after the heal the same client works again, no restart needed
        yield cluster.sim.timeout(max(0.0, heal_at - cluster.sim.now) + 0.5)
        yield from client.alloc("healed", 8 * KiB)
        mapping = yield from client.map("healed")
        yield from mapping.write(0, b"back from the void")
        data = yield from mapping.read(0, 18)
        assert data == b"back from the void"

    cluster.run_app(app())

    assert faults.injected["partition"] > 0
    assert client.deadlines_missed >= 1
    rsan = rsan_for(cluster.sim)
    assert rsan.races == [], (
        f"seed {seed}: sanitizer false positive:\n{rsan.report()}"
    )


# -- scenario 6: the whole circus is bit-identical, sanitizer on or off -----

def _chaos_digest(seed: int, sanitize: bool):
    rng = random.Random(seed ^ 0xD161)
    faults = FaultInjector(seed=seed)
    faults.crash_master(at=0.06, restart_after=0.1)
    faults.partition([[3], [0, 1, 2]], start=0.02, duration=0.4)
    faults.fail_wire(1, start=0.0, duration=1.0, probability=0.3, times=3)
    config = RStoreConfig(
        stripe_size=8 * KiB,
        sanitize=sanitize,
        control_deadline_s=0.25,
        recovery_grace_s=0.2,
    )
    cluster = build_cluster(
        num_machines=4, config=config, server_capacity=16 * MiB,
        faults=faults,
    )
    client = cluster.client(1)
    outcomes = []

    def app():
        for index in range(10):
            name = f"d{index}"
            try:
                yield from client.alloc(name, 8 * KiB)
                mapping = yield from client.map(name)
                yield from mapping.write(0, _payload(rng, 2 * KiB))
            except (MasterUnavailableError, DeadlineExceededError,
                    AllocationError) as exc:
                outcomes.append((name, type(exc).__name__))
            else:
                outcomes.append((name, "ok"))
            yield cluster.sim.timeout(rng.uniform(0.01, 0.05))
        yield from _await_steady_master(cluster, client, give_up_after=5.0)
        digest = hashlib.sha256()
        for name, verdict in outcomes:
            digest.update(f"{name}={verdict};".encode())
            if verdict != "ok":
                continue
            mapping = yield from client.map(name)
            data = yield from mapping.read(0, 2 * KiB)
            digest.update(data)
        return digest.hexdigest()

    content = cluster.run_app(app())
    return (
        content,
        tuple(outcomes),
        client.retries_fenced,
        client.master_redials,
        cluster.master.epoch,
        cluster.sim.now,
        tuple(faults.log),
    )


def test_chaos_schedule_is_bit_identical_with_sanitizer(seed):
    plain = _chaos_digest(seed, sanitize=False)
    sanitized = _chaos_digest(seed, sanitize=True)
    assert plain == sanitized, (
        f"seed {seed}: RSan changed the chaos schedule's behaviour"
    )


# -- scenario 7: master dies while a partitioned server's call is in flight -

def test_master_crash_during_partition_orphans_no_rpc_failure(sanitize):
    """Regression: the crash used to fail a heartbeat's reply future
    while its owner was still parked inside ``send()`` behind the
    partition — nobody ever claimed the failure and the orphaned event
    crashed the simulation kernel.  The run must instead converge:
    the isolated server is buried, rejoins forced-fresh after the heal,
    and the region is healed back to full replication.
    """
    faults = FaultInjector(seed=99)
    faults.crash_master(at=0.10, restart_after=0.10)
    faults.partition([[3], [0, 1, 2, 4, 5]], start=0.05, duration=0.6)
    cluster = build_cluster(
        num_machines=6,
        server_hosts=[2, 3, 4, 5],
        config=RStoreConfig(
            stripe_size=64 * KiB,
            heartbeat_interval_s=0.05,
            lease_timeout_s=0.15,
            control_deadline_s=0.3,
            recovery_grace_s=0.2,
            sanitize=sanitize,
        ),
        server_capacity=64 * MiB,
        faults=faults,
    )
    sim = cluster.sim
    client = cluster.client(1)
    payload = b"kept through crash+partition"

    def app():
        yield from client.alloc("book", 256 * KiB, replication=2)
        mapping = yield from client.map("book")
        yield from mapping.write(0, payload)
        yield sim.timeout(max(0.0, cluster.boot_time + 1.2 - sim.now))
        stats = yield from _await_steady_master(cluster, client, 2.0)
        assert stats["alive_servers"] >= 3
        data = yield from mapping.read(0, len(payload))
        assert data == payload
        # let the healed partition re-admit host 3 and repair finish
        yield sim.timeout(max(0.0, cluster.boot_time + 2.0 - sim.now))
        slot = cluster.master.allocator.get_server(3)
        assert slot is not None and slot.alive
        assert cluster.servers[3].nic.fence_epoch == slot.epoch
        region = cluster.master.regions["book"]
        assert all(s.replication == region.target_replication
                   for s in region.stripes)

    cluster.run_app(app())
    assert cluster.faults.injected["master_crashes"] == 1
    assert cluster.faults.injected["partition"] > 0
    if sanitize:
        assert rsan_for(sim).races == []
