"""Randomized op schedules vs the in-memory reference model.

Every test prints its seed first, so a failure names the schedule that
broke; re-run exactly that schedule with ``pytest tests/harness --seed
<n>``.
"""

from tests.harness.schedule import harness_seeds, run_schedule


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        metafunc.parametrize("seed", harness_seeds(metafunc.config))


def test_random_schedule_matches_model(seed):
    print(f"\nharness seed: {seed}")
    digest = run_schedule(seed)
    # a schedule that degenerated to a handful of ops proves nothing
    assert digest["ops"] > 50
    # tracing was off: the data path must not have allocated any spans
    assert digest["spans"] == 0


def test_tracing_does_not_perturb_the_simulation(seed):
    """Traced and untraced runs of one seed are bit-for-bit identical.

    The tracer reads the simulated clock but never advances it and
    never touches an RNG stream, so enabling it cannot change what the
    simulation computes — the core guarantee that makes traces of
    seeded scenarios trustworthy.
    """
    print(f"\nharness seed: {seed}")
    plain = run_schedule(seed, trace=False)
    traced = run_schedule(seed, trace=True)
    assert traced["spans"] > plain["ops"]  # every op spans, plus layers
    assert traced["results"] == plain["results"]
    assert traced["final"] == plain["final"]
    assert traced["now"] == plain["now"]
