"""Randomized op schedules vs the in-memory reference model.

Every test prints its seed first, so a failure names the schedule that
broke; re-run exactly that schedule with ``pytest tests/harness --seed
<n>``.  ``--sanitize`` runs the whole matrix under the RSan race
sanitizer — schedules are race-free by construction (single
sequential client), so any report fails the run.
"""

import pytest

from tests.harness.schedule import harness_seeds, run_schedule


def pytest_generate_tests(metafunc):
    if "seed" in metafunc.fixturenames:
        metafunc.parametrize("seed", harness_seeds(metafunc.config))


@pytest.fixture
def sanitize(request):
    return request.config.getoption("--sanitize")


def test_random_schedule_matches_model(seed, sanitize):
    print(f"\nharness seed: {seed}" + (" (sanitized)" if sanitize else ""))
    digest = run_schedule(seed, sanitize=sanitize)
    # a schedule that degenerated to a handful of ops proves nothing
    assert digest["ops"] > 50
    # tracing was off: the data path must not have allocated any spans
    assert digest["spans"] == 0
    assert digest["races"] == 0


def test_tracing_does_not_perturb_the_simulation(seed, sanitize):
    """Traced and untraced runs of one seed are bit-for-bit identical.

    The tracer reads the simulated clock but never advances it and
    never touches an RNG stream, so enabling it cannot change what the
    simulation computes — the core guarantee that makes traces of
    seeded scenarios trustworthy.
    """
    print(f"\nharness seed: {seed}")
    plain = run_schedule(seed, trace=False, sanitize=sanitize)
    traced = run_schedule(seed, trace=True, sanitize=sanitize)
    assert traced["spans"] > plain["ops"]  # every op spans, plus layers
    assert traced["results"] == plain["results"]
    assert traced["final"] == plain["final"]
    assert traced["now"] == plain["now"]
