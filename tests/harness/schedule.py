"""Shared machinery for the randomized data-path harness.

A *schedule* is a deterministic list of operation groups derived from
one integer seed: a random mix of read / write / faa / cas with random
sizes and offsets, split randomly between synchronous ops and IoBatch
windows of random depth.  :func:`run_schedule` executes the schedule
against a simulated cluster while mirroring every mutation into a
plain in-memory reference model, asserting byte-for-byte equivalence
op by op and on a final full readback.

Layout discipline: the first :data:`ATOMIC_WORDS` 8-byte words of the
region are reserved for atomics and reads/writes stay above them, so a
batch never races an atomic on the same bytes.  Within one batch the
generator refuses overlapping ranges unless both ops are reads, and
never aims two atomics at the same word — ops in one flush can
complete in any order, so only conflict-free batches have one
deterministic outcome to check against.
"""

from __future__ import annotations

import random

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.obs import obs_for
from repro.sanitize import rsan_for
from repro.simnet.config import KiB, MiB

#: the pinned seed matrix (CI runs these plus one random seed)
SEEDS = (101, 202, 303, 404, 505)

ATOMIC_WORDS = 8
#: reads and writes stay at or above this offset
DATA_BASE = ATOMIC_WORDS * 8


def harness_seeds(config) -> list[int]:
    """The seeds to run: ``--seed N`` replaces the pinned matrix."""
    override = config.getoption("--seed")
    return [override] if override is not None else list(SEEDS)


# -- schedule generation ------------------------------------------------------


def _clashes(start: int, end: int, ranges: list[tuple[int, int]]) -> bool:
    return any(start < e and s < end for s, e in ranges)


def _pick_range(rng: random.Random, region_size: int):
    roll = rng.random()
    if roll < 0.1:
        length = 0
    elif roll < 0.8:
        length = rng.randint(1, 2048)
    else:  # long enough to stripe across several servers
        length = rng.randint(2048, 20_000)
    length = min(length, region_size - DATA_BASE)
    offset = rng.randrange(DATA_BASE, region_size - length + 1)
    return offset, length


def _make_op(rng: random.Random, region_size: int, reads, writes, words,
             shadow):
    """One op honouring the in-batch conflict rules; None if crowded."""
    roll = rng.random()
    if roll < 0.35:  # read
        for _ in range(8):
            offset, length = _pick_range(rng, region_size)
            if not _clashes(offset, offset + length, writes):
                reads.append((offset, offset + length))
                return ("read", offset, length)
        return None
    if roll < 0.70:  # write
        for _ in range(8):
            offset, length = _pick_range(rng, region_size)
            span = (offset, offset + length)
            if not (_clashes(*span, reads) or _clashes(*span, writes)):
                writes.append(span)
                return ("write", offset, rng.randbytes(length))
        return None
    free = [w for w in range(ATOMIC_WORDS) if w not in words]
    if not free:
        return None
    word = rng.choice(free)
    words.add(word)
    if roll < 0.88:  # faa
        delta = rng.randrange(1 << 32)
        shadow[word] = (shadow[word] + delta) % (1 << 64)
        return ("faa", word * 8, delta)
    # cas — aim at the current value often enough that swaps do happen
    expected = (shadow[word] if rng.random() < 0.6
                else rng.randrange(1 << 64))
    desired = rng.randrange(1 << 64)
    if expected == shadow[word]:
        shadow[word] = desired
    return ("cas", word * 8, expected, desired)


def make_schedule(rng: random.Random, region_size: int, groups: int = 24):
    """A list of ``(mode, ops)`` groups; mode is "sync" or "batch"."""
    shadow = [0] * ATOMIC_WORDS
    schedule = []
    for _ in range(groups):
        depth = 1 if rng.random() < 0.4 else rng.randint(2, 16)
        reads: list[tuple[int, int]] = []
        writes: list[tuple[int, int]] = []
        words: set[int] = set()
        ops = []
        for _ in range(depth):
            op = _make_op(rng, region_size, reads, writes, words, shadow)
            if op is not None:
                ops.append(op)
        if ops:
            schedule.append(("sync" if depth == 1 else "batch", ops))
    return schedule


# -- the reference model ------------------------------------------------------


def apply_to_model(model: bytearray, op):
    """Apply *op* to the reference bytes; returns the expected result."""
    kind = op[0]
    if kind == "read":
        _, offset, length = op
        return bytes(model[offset:offset + length])
    if kind == "write":
        _, offset, payload = op
        model[offset:offset + len(payload)] = payload
        return len(payload)
    offset = op[1]
    old = int.from_bytes(model[offset:offset + 8], "little")
    if kind == "faa":
        new = (old + op[2]) % (1 << 64)
        model[offset:offset + 8] = new.to_bytes(8, "little")
    else:  # cas
        if old == op[2]:
            model[offset:offset + 8] = op[3].to_bytes(8, "little")
    return old


# -- execution ----------------------------------------------------------------


def run_schedule(seed: int, trace: bool = False, groups: int = 24,
                 sanitize: bool = False) -> dict:
    """Build a cluster, run the seed's schedule, check every result.

    Returns a digest (op results, final bytes, final simulated time,
    span count, race count) so callers can compare two runs of the
    same seed.  ``sanitize=True`` runs the whole schedule under RSan;
    the single sequential client is race-free by construction, so any
    report is a sanitizer bug.
    """
    rng = random.Random(seed)
    stripe = rng.choice((8, 16)) * KiB
    region_size = rng.choice((128, 192, 256)) * KiB
    schedule = make_schedule(rng, region_size, groups=groups)

    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=stripe, sanitize=sanitize),
        server_capacity=16 * MiB,
    )
    tracer = obs_for(cluster.sim).tracer
    if trace:
        tracer.enable()
    rsan = rsan_for(cluster.sim)
    client = cluster.client(1)
    model = bytearray(region_size)
    results: list = []

    def execute(mapping, op):
        kind = op[0]
        if kind == "read":
            return (yield from mapping.read(op[1], op[2]))
        if kind == "write":
            return (yield from mapping.write(op[1], op[2]))
        if kind == "faa":
            return (yield from mapping.faa(op[1], op[2]))
        return (yield from mapping.cas(op[1], op[2], op[3]))

    def enqueue(batch, mapping, op):
        kind = op[0]
        if kind == "read":
            return (yield from batch.read(mapping, op[1], op[2]))
        if kind == "write":
            return (yield from batch.write(mapping, op[1], op[2]))
        if kind == "faa":
            return batch.faa(mapping, op[1], op[2])
        return batch.cas(mapping, op[1], op[2], op[3])

    def check(op, value):
        expected = apply_to_model(model, op)
        assert value == expected, (
            f"seed {seed}: {op[0]} at {op[1]} returned {value!r}, "
            f"the model says {expected!r}"
        )
        results.append(value)

    def app():
        yield from client.alloc("harness", region_size)
        mapping = yield from client.map("harness")
        for mode, ops in schedule:
            if mode == "sync":
                for op in ops:
                    value = yield from execute(mapping, op)
                    check(op, value)
            else:
                batch = client.batch()
                for op in ops:
                    yield from enqueue(batch, mapping, op)
                yield from batch.flush()
                values = yield from batch.wait_all()
                for op, value in zip(ops, values):
                    check(op, value)
        return (yield from mapping.read(0, region_size))

    final = cluster.run_app(app())
    assert bytes(final) == bytes(model), (
        f"seed {seed}: final readback diverged from the reference model"
    )
    if sanitize:
        assert not rsan.races, (
            f"seed {seed}: sanitizer reported races on a race-free "
            f"schedule:\n{rsan.report()}"
        )
    return {
        "results": results,
        "final": bytes(final),
        "now": cluster.sim.now,
        "ops": sum(len(ops) for _, ops in schedule),
        "spans": len(tracer.spans),
        "races": len(rsan.races),
    }
