"""Coordination primitives: counters, locks, seqlocks — happy paths
and protocol-misuse errors, all on one shared module cluster."""

import pytest

from repro.cluster import build_cluster
from repro.coord import AtomicCounter, Backoff, CoordError, RemoteLock, SeqLock
from repro.coord.base import read_word, write_word
from repro.core import RStoreConfig
from repro.core.errors import (
    DeadlineExceededError,
    RetryBudgetExceededError,
)
from repro.simnet.config import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
    )


# -- AtomicCounter -----------------------------------------------------------


def test_counter_add_fetch_read(cluster):
    c1, c2 = cluster.client(1), cluster.client(2)

    def app():
        counter = yield from AtomicCounter.create(c1, "basic", initial=10)
        other = yield from AtomicCounter.open(c2, "basic")
        assert (yield from counter.add(5)) == 15
        assert (yield from other.increment()) == 16
        # fetch returns the pre-add value — the reserve-a-range idiom
        assert (yield from other.fetch(4)) == 16
        assert (yield from counter.read()) == 20

    cluster.run_app(app())


def test_counter_concurrent_increments_exact(cluster):
    sim = cluster.sim
    workers, rounds = 3, 25

    def setup():
        yield from AtomicCounter.create(cluster.client(0), "exact")

    cluster.run_app(setup())

    def worker(host):
        counter = yield from AtomicCounter.open(cluster.client(host), "exact")
        for _ in range(rounds):
            yield from counter.increment()

    def app():
        procs = [cluster.spawn(worker(h)) for h in range(1, workers + 1)]
        yield sim.all_of(procs)
        counter = yield from AtomicCounter.open(cluster.client(0), "exact")
        return (yield from counter.read())

    assert cluster.run_app(app()) == workers * rounds


def test_counter_cached_read_skips_the_wire(cluster):
    client = cluster.client(1)

    def app():
        counter = yield from AtomicCounter.create(client, "cached")
        yield from counter.add(7)
        before = client.nic.ops_posted
        value = yield from counter.read(max_age_s=1.0)
        assert client.nic.ops_posted == before  # served from cache
        assert value == 7
        fresh = yield from counter.read()  # max_age_s=0: always the wire
        assert client.nic.ops_posted > before
        assert fresh == 7

    cluster.run_app(app())


# -- RemoteLock --------------------------------------------------------------


def test_lock_mutual_exclusion(cluster):
    """N workers do plain (non-atomic) read-modify-writes on a shared
    word under the lock; the count is exact only if the lock excludes."""
    sim = cluster.sim
    workers, rounds = 3, 5
    c0 = cluster.client(0)

    def setup():
        yield from RemoteLock.create(c0, "mutex")
        yield from c0.alloc("mutex-data", 8)

    cluster.run_app(setup())

    def worker(host):
        client = cluster.client(host)
        lock = yield from RemoteLock.open(client, "mutex")
        data = yield from client.map("mutex-data")
        for _ in range(rounds):
            yield from lock.acquire()
            value = yield from read_word(data, 0)
            yield sim.timeout(2e-6)  # widen the race window
            yield from write_word(data, 0, value + 1)
            yield from lock.release()
        return lock

    def app():
        procs = [cluster.spawn(worker(h)) for h in range(1, workers + 1)]
        yield sim.all_of(procs)
        data = yield from c0.map("mutex-data")
        total = yield from read_word(data, 0)
        locks = [p.value for p in procs]
        return total, locks

    total, locks = cluster.run_app(app())
    assert total == workers * rounds
    assert sum(lock.acquisitions for lock in locks) == workers * rounds
    # three spinners on one word must have collided at least once
    assert sum(lock.contended for lock in locks) > 0


def test_lock_try_acquire_and_errors(cluster):
    c1, c2 = cluster.client(1), cluster.client(2)

    def app():
        lock = yield from RemoteLock.create(c1, "try")
        other = yield from RemoteLock.open(c2, "try")
        assert (yield from lock.try_acquire())
        assert not (yield from other.try_acquire())  # held elsewhere
        with pytest.raises(CoordError, match="not reentrant"):
            yield from lock.try_acquire()
        with pytest.raises(CoordError, match="never took"):
            yield from other.release()
        yield from lock.release()
        assert (yield from other.try_acquire())
        yield from other.release()

    cluster.run_app(app())


# -- SeqLock -----------------------------------------------------------------


def test_seqlock_write_read_cycle(cluster):
    c1, c2 = cluster.client(1), cluster.client(2)

    def app():
        rec = yield from SeqLock.create(c1, "record", body_size=64)
        view = yield from SeqLock.open(c2, "record", body_size=64)
        version = yield from rec.write(b"hello".ljust(64, b"\0"))
        assert version == 2  # 0 -> locked 1 -> published 2
        got_version, body = yield from view.read()
        assert got_version == 2
        assert body[:5] == b"hello"
        yield from view.write(b"world".ljust(64, b"\0"))
        _v, body = yield from rec.read()
        assert body[:5] == b"world"

    cluster.run_app(app())


def test_seqlock_lock_publish_abort_protocol(cluster):
    client = cluster.client(1)

    def app():
        rec = yield from SeqLock.create(client, "protocol", body_size=8)
        version, _ = yield from rec.read()
        assert (yield from rec.try_lock(version))
        assert not (yield from rec.try_lock(version))  # word is odd now
        yield from rec.abort(version)  # back out, body untouched
        restored, _ = yield from rec.read()
        assert restored == version
        with pytest.raises(CoordError, match="odd version"):
            yield from rec.try_lock(version + 1)
        with pytest.raises(CoordError, match="never locked"):
            yield from rec.publish(version)  # even: we hold nothing

    cluster.run_app(app())


def test_seqlock_no_torn_reads_under_contention(cluster):
    """Writers publish all-same-byte bodies; any snapshot mixing two
    writes would show mixed bytes — optimistic validation must prevent
    that ever being returned."""
    sim = cluster.sim
    body_size = 64
    writes_per_worker = 6
    c0 = cluster.client(0)

    def setup():
        yield from SeqLock.create(c0, "torn", body_size=body_size)

    cluster.run_app(setup())
    done = []

    def writer(host):
        client = cluster.client(host)
        rec = yield from SeqLock.open(client, "torn", body_size=body_size)
        for i in range(writes_per_worker):
            fill = bytes([host * 10 + i]) * body_size
            yield from rec.write(fill)
        done.append(host)

    def reader():
        rec = yield from SeqLock.open(cluster.client(3), "torn",
                                      body_size=body_size)
        torn = 0
        while len(done) < 2:
            version, body = yield from rec.read()
            assert version % 2 == 0
            if version and len(set(body)) != 1:
                torn += 1
            yield sim.timeout(1e-6)
        return torn

    def app():
        procs = [cluster.spawn(writer(1)), cluster.spawn(writer(2))]
        read_proc = cluster.spawn(reader())
        yield sim.all_of(procs + [read_proc])
        rec = yield from SeqLock.open(c0, "torn", body_size=body_size)
        version, _ = yield from rec.read()
        return read_proc.value, version

    torn, version = cluster.run_app(app())
    assert torn == 0
    # every publish bumps the version by exactly 2
    assert version == 2 * 2 * writes_per_worker


def test_seqlock_token_lock_publish(cluster):
    """The transactional variant: lock with a unique odd token, publish
    with an explicit next version."""
    client = cluster.client(1)
    token = (1 << 62) | 1

    def app():
        rec = yield from SeqLock.create(client, "token", body_size=8)
        version, _ = yield from rec.read()
        assert (yield from rec.try_lock(version, token=token))
        word = yield from read_word(rec.mapping, rec.offset)
        assert word == token  # the word names the holder
        yield from rec.publish(token, b"\x07" * 8,
                               new_version=version + 2)
        got, body = yield from rec.read()
        assert got == version + 2
        assert body == b"\x07" * 8
        with pytest.raises(CoordError, match="must be odd"):
            yield from rec.try_lock(got, token=42)  # even token
        with pytest.raises(CoordError, match="positive even"):
            yield from rec.publish(token, new_version=token)

    cluster.run_app(app())


# -- Backoff bounds (deadline vs budget) --------------------------------------


def test_backoff_budget_exhaustion_is_typed(cluster):
    """A drained attempt budget raises RetryBudgetExceededError — which
    is itself a DeadlineExceededError, so existing handlers keep
    working."""
    client = cluster.client(1)

    def app():
        backoff = Backoff.for_client(client, "budget-test", budget=3)
        for _ in range(3):
            yield from backoff.pause()
        with pytest.raises(RetryBudgetExceededError, match="budget of 3"):
            yield from backoff.pause()

    cluster.run_app(app())
    assert issubclass(RetryBudgetExceededError, DeadlineExceededError)


def test_backoff_deadline_outranks_budget(cluster):
    """Regression: a retry loop that inherits a caller deadline must
    fail with the *typed* DeadlineExceededError, never degrade into a
    bare budget exhaustion — even when the budget is already drained
    too."""
    sim = cluster.sim
    client = cluster.client(1)

    def app():
        backoff = Backoff.for_client(client, "deadline-test",
                                     deadline=sim.now + 10e-6, budget=0)
        # the budget is exhausted from the start, but the deadline has
        # not passed yet: budget exhaustion surfaces first...
        with pytest.raises(RetryBudgetExceededError):
            yield from backoff.pause()
        yield sim.timeout(20e-6)
        # ...and once the deadline passes it outranks the budget
        try:
            yield from backoff.pause()
        except RetryBudgetExceededError:
            raise AssertionError(
                "a passed deadline degraded into a budget error"
            )
        except DeadlineExceededError:
            pass
        else:
            raise AssertionError("pause() ignored the passed deadline")

    cluster.run_app(app())


def test_backoff_never_sleeps_past_the_deadline(cluster):
    sim = cluster.sim
    client = cluster.client(1)

    def app():
        deadline = sim.now + 50e-6
        backoff = Backoff.for_client(client, "clip-test",
                                     deadline=deadline, base_s=1.0,
                                     max_s=10.0)
        yield from backoff.pause()  # a 1 s step must clip to the deadline
        assert sim.now <= deadline + 1e-12
        yield sim.timeout(60e-6)
        with pytest.raises(DeadlineExceededError):
            yield from backoff.pause()

    cluster.run_app(app())
