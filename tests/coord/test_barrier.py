"""SenseBarrier: release correctness across many reused rounds."""

import pytest

from repro.cluster import build_cluster
from repro.coord import CoordError, SenseBarrier
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
    )


def test_barrier_releases_no_one_early(cluster):
    """Across R reused rounds, every worker checks at release time that
    all peers reached the round — the defining barrier property."""
    sim = cluster.sim
    workers, rounds = 4, 6
    progress = [0] * workers

    def setup():
        yield from SenseBarrier.create(
            cluster.client(0), "rounds", parties=workers
        )

    cluster.run_app(setup())

    def worker(rank):
        client = cluster.client(rank)
        barrier = yield from SenseBarrier.open(
            client, "rounds", parties=workers
        )
        for r in range(1, rounds + 1):
            # stagger arrivals so fast workers really have to wait
            yield sim.timeout(rank * 3e-6)
            progress[rank] = r
            yield from barrier.wait()
            assert all(p >= r for p in progress), (
                f"rank {rank} released from round {r} early: {progress}"
            )
        return barrier

    def app():
        procs = [cluster.spawn(worker(rank)) for rank in range(workers)]
        yield sim.all_of(procs)
        return [p.value for p in procs]

    barriers = cluster.run_app(app())
    assert all(b.generation == rounds for b in barriers)
    # the stagger forces early arrivers to poll the sense word
    assert sum(b.spins for b in barriers) > 0


def test_single_party_barrier_is_a_noop(cluster):
    client = cluster.client(1)

    def app():
        barrier = yield from SenseBarrier.create(client, "solo", parties=1)
        for _ in range(3):
            yield from barrier.wait()
        return barrier.generation

    assert cluster.run_app(app()) == 3


def test_barrier_rejects_bad_party_counts(cluster):
    client = cluster.client(1)

    def app():
        with pytest.raises(CoordError, match="at least one party"):
            yield from SenseBarrier.create(client, "bad", parties=0)

    cluster.run_app(app())


def test_oversubscribed_barrier_detected(cluster):
    """More simultaneous waiters than parties is a protocol bug the
    count word exposes instead of silently misbehaving."""
    sim = cluster.sim

    def setup():
        yield from SenseBarrier.create(cluster.client(0), "over", parties=2)

    cluster.run_app(setup())
    errors = []

    def waiter(host, arrive_last):
        barrier = yield from SenseBarrier.open(
            cluster.client(host), "over", parties=2
        )
        if arrive_last:
            # arrive after both legitimate parties FAA'd but before the
            # last arriver's reset lands (reset costs two RTT writes)
            yield sim.timeout(2e-7)
        try:
            yield from barrier.wait()
        except CoordError as exc:
            errors.append(exc)

    def app():
        procs = [
            cluster.spawn(waiter(1, False)),
            cluster.spawn(waiter(2, False)),
            cluster.spawn(waiter(3, True)),
        ]
        yield sim.all_of(procs)

    cluster.run_app(app())
    assert len(errors) == 1
    assert "too many handles" in str(errors[0])
