"""DoorbellQueue: ordering, wrapping, flow control, multi-producer."""

import pytest

from repro.cluster import build_cluster
from repro.coord import CoordError, DoorbellQueue
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB


@pytest.fixture(scope="module")
def cluster():
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
    )


def test_in_order_delivery_with_wrapping(cluster):
    """8 messages through a 2-slot ring: every slot is reused, framing
    and order survive the wrap."""
    sim = cluster.sim
    messages = [f"message-{i}".encode() for i in range(8)]

    def setup():
        yield from DoorbellQueue.create(
            cluster.client(1), "wrap", capacity=2, slot_payload=32
        )

    cluster.run_app(setup())

    def producer():
        queue = yield from DoorbellQueue.open(
            cluster.client(1), "wrap", capacity=2, slot_payload=32
        )
        for seq, msg in enumerate(messages):
            got_seq = yield from queue.send(msg)
            assert got_seq == seq
        return queue

    def consumer():
        queue = yield from DoorbellQueue.open(
            cluster.client(2), "wrap", capacity=2, slot_payload=32
        )
        got = []
        for _ in messages:
            got.append((yield from queue.recv()))
        return got

    def app():
        p = cluster.spawn(producer())
        c = cluster.spawn(consumer())
        yield sim.all_of([p, c])
        return p.value, c.value

    queue, got = cluster.run_app(app())
    assert got == messages  # exact payloads, exact order
    assert queue.sent == len(messages)


def test_slow_consumer_exerts_backpressure(cluster):
    sim = cluster.sim
    count = 6

    def setup():
        yield from DoorbellQueue.create(
            cluster.client(1), "slow", capacity=1, slot_payload=16
        )

    cluster.run_app(setup())

    def producer():
        queue = yield from DoorbellQueue.open(
            cluster.client(1), "slow", capacity=1, slot_payload=16
        )
        for i in range(count):
            yield from queue.send(bytes([i]) * 8)
        return queue

    def consumer():
        queue = yield from DoorbellQueue.open(
            cluster.client(2), "slow", capacity=1, slot_payload=16
        )
        got = []
        for _ in range(count):
            yield sim.timeout(30e-6)  # lag behind the producer
            got.append((yield from queue.recv()))
        return got

    def app():
        p = cluster.spawn(producer())
        c = cluster.spawn(consumer())
        yield sim.all_of([p, c])
        return p.value, c.value

    queue, got = cluster.run_app(app())
    assert got == [bytes([i]) * 8 for i in range(count)]
    # a 1-slot ring against a lagging consumer must have stalled
    assert queue.stalls > 0


def test_multiple_producers_single_consumer(cluster):
    sim = cluster.sim
    per_producer = 4
    producer_hosts = [0, 1, 3]

    def setup():
        yield from DoorbellQueue.create(
            cluster.client(2), "mpsc", capacity=4, slot_payload=16
        )

    cluster.run_app(setup())

    def producer(host):
        queue = yield from DoorbellQueue.open(
            cluster.client(host), "mpsc", capacity=4, slot_payload=16
        )
        for i in range(per_producer):
            yield sim.timeout(3e-6)
            yield from queue.send(f"h{host}m{i}".encode())

    def consumer():
        queue = yield from DoorbellQueue.open(
            cluster.client(2), "mpsc", capacity=4, slot_payload=16
        )
        got = []
        for _ in range(per_producer * len(producer_hosts)):
            got.append((yield from queue.recv()))
        return got

    def app():
        procs = [cluster.spawn(producer(h)) for h in producer_hosts]
        c = cluster.spawn(consumer())
        yield sim.all_of(procs + [c])
        return c.value

    got = cluster.run_app(app())
    expected = {
        f"h{host}m{i}".encode()
        for host in producer_hosts
        for i in range(per_producer)
    }
    # interleaving is scheduling-dependent; delivery must be lossless
    # and duplicate-free
    assert set(got) == expected
    assert len(got) == len(expected)


def test_pending_and_payload_validation(cluster):
    c1 = cluster.client(1)

    def app():
        queue = yield from DoorbellQueue.create(
            c1, "misc", capacity=4, slot_payload=8
        )
        with pytest.raises(CoordError, match="exceeds slot capacity"):
            yield from queue.send(b"way too large for a slot")
        yield from queue.send(b"a")
        yield from queue.send(b"bb")
        view = yield from DoorbellQueue.open(
            c1, "misc", capacity=4, slot_payload=8
        )
        assert (yield from view.pending()) == 2
        assert (yield from view.recv()) == b"a"
        assert (yield from view.recv()) == b"bb"
        assert (yield from view.pending()) == 0

    cluster.run_app(app())
