"""Atomics under fault injection: the exactly-once story.

A completion error on a one-sided atomic is ambiguous — the remote NIC
may or may not have applied the op — so ``Mapping.faa``/``cas`` raise
instead of replaying unless the caller opts in with ``idempotent=True``.
These tests pin the three cases:

* *launch*-side wire faults never reach the remote word, so app-level
  retries keep a counter exact (N clients x M increments == N*M);
* an *ack*-side fault applies the op once and loses the completion —
  the default raises, and the count stays 1 (no silent double-apply);
* ``idempotent=True`` on that same fault replays and double-applies —
  demonstrating exactly why replay is opt-in.
"""

import pytest

from repro.cluster import build_cluster
from repro.coord import AtomicCounter, RemoteLock
from repro.coord.base import read_word, write_word
from repro.core import RegionUnavailableError, RStoreConfig
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector


def fresh_cluster(faults=None):
    return build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
        faults=faults,
    )


def retrying_increment(counter, limit=20):
    """App-level retry loop (generator): re-issue the FAA only on the
    non-ambiguous path — each raise here came from a launch-side fault
    that provably applied nothing."""
    for _attempt in range(limit):
        try:
            yield from counter.increment()
            return
        except RegionUnavailableError:
            continue
    raise AssertionError("increment never succeeded")


def test_counter_exact_under_launch_wire_faults():
    """3 clients x 20 increments through a storm of completion errors
    still counts to exactly 60 — wire faults before launch never mutate
    the remote word, so retries cannot double-apply."""
    faults = FaultInjector(seed=11)
    faults.fail_wire(1, start=0.0, duration=10.0, probability=0.25)
    faults.fail_wire(2, start=0.0, duration=10.0, probability=0.25)
    cluster = fresh_cluster(faults)
    sim = cluster.sim
    workers, rounds = [1, 2, 3], 20

    def setup():
        yield from AtomicCounter.create(cluster.client(0), "exact")

    cluster.run_app(setup())

    def worker(host):
        counter = yield from AtomicCounter.open(cluster.client(host), "exact")
        for _ in range(rounds):
            yield from retrying_increment(counter)

    def app():
        procs = [cluster.spawn(worker(h)) for h in workers]
        yield sim.all_of(procs)
        counter = yield from AtomicCounter.open(cluster.client(0), "exact")
        return (yield from counter.read())

    assert cluster.run_app(app()) == len(workers) * rounds
    # the seed guarantees the storm actually fired
    assert faults.injected["wire"] > 0


def test_ack_fault_raises_and_applies_exactly_once():
    """Ack-side fault: the FAA lands remotely, the completion is lost.
    The default surfaces the ambiguity as an error and does NOT replay
    — the counter must read 1, not 0 and not 2."""
    faults = FaultInjector(seed=5)
    faults.fail_wire(1, start=0.0, duration=10.0, times=1, where="ack")
    cluster = fresh_cluster(faults)

    def app():
        counter = yield from AtomicCounter.create(cluster.client(2), "once")
        mine = yield from AtomicCounter.open(cluster.client(1), "once")
        with pytest.raises(RegionUnavailableError, match="may have applied"):
            yield from mine.increment()
        return (yield from counter.read())

    assert cluster.run_app(app()) == 1
    assert faults.injected["wire"] == 1


def test_idempotent_optin_replays_and_double_applies():
    """The same ack-side fault with ``idempotent=True``: the client
    replays blindly and the increment lands twice.  This is the hazard
    that makes replay opt-in — only callers whose op is genuinely
    idempotent (or externally deduplicated) may use it."""
    faults = FaultInjector(seed=5)
    faults.fail_wire(1, start=0.0, duration=10.0, times=1, where="ack")
    cluster = fresh_cluster(faults)

    def app():
        counter = yield from AtomicCounter.create(cluster.client(2), "twice")
        mine = yield from AtomicCounter.open(cluster.client(1), "twice")
        value = yield from mine.increment(idempotent=True)
        return value, (yield from counter.read())

    value, total = cluster.run_app(app())
    assert total == 2  # applied by the faulted attempt AND the replay
    assert value == 2  # the replay observed the first application


def test_lock_self_verifies_through_wire_faults():
    """A lock op whose CAS completion is lost reads the word back to
    learn the truth (the token names the holder), so mutual exclusion
    holds — and no acquire or release is lost — through a storm of
    both launch- and ack-side faults."""
    faults = FaultInjector(seed=13)
    faults.fail_wire(1, start=0.0, duration=10.0, probability=0.2)
    faults.fail_wire(2, start=0.0, duration=10.0, probability=0.2,
                     where="ack")
    cluster = fresh_cluster(faults)
    sim = cluster.sim
    workers, rounds = [1, 2, 3], 8

    def setup():
        yield from RemoteLock.create(cluster.client(0), "stormy")
        yield from cluster.client(0).alloc("stormy-data", 8)

    cluster.run_app(setup())

    def worker(host):
        client = cluster.client(host)
        lock = yield from RemoteLock.open(client, "stormy")
        data = yield from client.map("stormy-data")
        for _ in range(rounds):
            yield from lock.acquire()
            value = yield from read_word(data, 0)
            yield sim.timeout(2e-6)
            yield from write_word(data, 0, value + 1)
            yield from lock.release()

    def app():
        procs = [cluster.spawn(worker(h)) for h in workers]
        yield sim.all_of(procs)
        data = yield from cluster.client(0).map("stormy-data")
        return (yield from read_word(data, 0))

    assert cluster.run_app(app()) == len(workers) * rounds
    assert faults.injected["wire"] > 0


def test_server_death_mid_atomic_raises():
    """Atomic words are unreplicated; losing the hosting server makes
    the primitive unavailable rather than silently wrong."""
    cluster = fresh_cluster()
    client = cluster.client(1)

    def app():
        counter = yield from AtomicCounter.create(
            client, "doomed", preferred_host=2
        )
        yield from counter.increment()
        cluster.servers[2].kill()
        with pytest.raises(RegionUnavailableError):
            yield from counter.increment()

    cluster.run_app(app())
