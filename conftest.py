"""Repo-level pytest configuration.

Two knobs, both for the randomized harness in ``tests/harness``:

* ``--seed N`` — run a single schedule instead of the pinned seed
  matrix; a harness failure prints the seed that produced it, so
  ``pytest tests/harness --seed <n>`` replays exactly that run.
* ``--sanitize`` — build every harness cluster with the RSan race
  sanitizer enabled (see ``repro.sanitize``); schedules are race-free
  by construction, so any report fails the run.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--seed",
        action="store",
        type=int,
        default=None,
        help="run the randomized harness with this single seed instead "
             "of the pinned seed matrix",
    )
    parser.addoption(
        "--sanitize",
        action="store_true",
        default=False,
        help="run the randomized harness with the RSan race sanitizer "
             "enabled (clean schedules must stay race-free)",
    )
