"""Repo-level pytest configuration.

The only knob is ``--seed``, the randomized harness override: by
default ``tests/harness`` runs a pinned seed matrix, and a failure
prints the seed that produced it — re-run just that schedule with
``pytest tests/harness --seed <n>``.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--seed",
        action="store",
        type=int,
        default=None,
        help="run the randomized harness with this single seed instead "
             "of the pinned seed matrix",
    )
