"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table/figure from the paper's
evaluation (see DESIGN.md's experiment index).  pytest-benchmark times
the *simulation wall clock*; the numbers that matter — the simulated
latencies, bandwidths and runtimes — are printed as paper-style tables
and attached to ``benchmark.extra_info`` for machine consumption.

Run:  pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a fixed-width table like the paper's evaluation tables."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    line = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for row in cells:
        print("  ".join(c.rjust(w) for c, w in zip(row, widths)))


def fmt_us(seconds: float) -> str:
    return f"{seconds * 1e6:.2f}"


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1e3:.2f}"


def fmt_gbps(bps: float) -> str:
    return f"{bps / 1e9:.1f}"
