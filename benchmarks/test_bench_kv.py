"""E10 (extension) — one-sided KV layer vs a memcached-style server.

Not a paper table: the abstract's applications are the graph framework
and the sorter.  This benchmark exercises the third canonical workload
of the RDMA-store era on top of the memory-like API — a hash table with
optimistic one-sided gets and CAS-locked puts (Pilaf/FaRM style) —
against a sockets KV server, showing the same substrate gap as E2/E4
at the application level.
"""

from repro.baselines import TcpKvClient, TcpKvServer
from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.kv import RKVStore
from repro.simnet.config import KiB, MiB, us

from benchmarks.conftest import fmt_us, print_table

OPS = 150
CLIENT_COUNTS = [1, 2, 4, 8]
READ_FRACTION = 0.95  # the classic read-heavy cache mix


def build():
    return build_cluster(
        num_machines=10,
        config=RStoreConfig(stripe_size=256 * KiB),
        server_capacity=64 * MiB,
    )


def rstore_round(cluster, clients, tag):
    sim = cluster.sim

    def worker(rank, host):
        view = yield from RKVStore.open(cluster.client(host), tag)
        yield from view.get(b"warm")
        yield from cluster.client(host).barrier(f"{tag}-go", clients)
        for i in range(OPS):
            key = f"{rank}-{i % 25}".encode()
            if i % 20 == 0:  # 5% writes
                yield from view.put(key, b"v" * 64)
            else:
                yield from view.get(key)

    def app():
        store = yield from RKVStore.create(cluster.client(1), tag, slots=2048)
        yield from store.put(b"warm", b"x")
        t0 = sim.now
        procs = [
            sim.process(worker(rank, 1 + rank % 8))
            for rank in range(clients)
        ]
        yield sim.all_of(procs)
        return clients * OPS / (sim.now - t0)

    return cluster.run_app(app())


def tcp_round(cluster, clients, server):
    sim = cluster.sim

    def worker(rank, host, gate):
        client = yield from TcpKvClient(cluster, host).connect(server)
        yield from client.get(b"warm")
        yield gate
        for i in range(OPS):
            key = f"{rank}-{i % 25}".encode()
            if i % 20 == 0:
                yield from client.put(key, b"v" * 64)
            else:
                yield from client.get(key)

    def app():
        gate = sim.event()
        procs = [
            sim.process(worker(rank, 1 + rank % 8, gate))
            for rank in range(clients)
        ]
        yield sim.timeout(5e-3)
        t0 = sim.now
        gate.succeed()
        yield sim.all_of(procs)
        return clients * OPS / (sim.now - t0)

    return cluster.run_app(app())


def run_experiment():
    result = {"rstore": [], "sockets": [], "latency": {}}
    cluster = build()
    for i, clients in enumerate(CLIENT_COUNTS):
        result["rstore"].append(rstore_round(cluster, clients, f"kv{i}"))
    server = TcpKvServer(cluster, host_id=9)
    for clients in CLIENT_COUNTS:
        result["sockets"].append(tcp_round(cluster, clients, server))

    # single-op latency probe
    sim = cluster.sim

    def probe():
        store = yield from RKVStore.create(cluster.client(1), "lat",
                                           slots=256)
        yield from store.put(b"k", b"v" * 64)
        t0 = sim.now
        for _ in range(20):
            yield from store.get(b"k")
        get_lat = (sim.now - t0) / 20
        t1 = sim.now
        for _ in range(20):
            yield from store.put(b"k", b"v" * 64)
        put_lat = (sim.now - t1) / 20
        tcp = yield from TcpKvClient(cluster, 1).connect(server)
        yield from tcp.get(b"k")
        t2 = sim.now
        for _ in range(20):
            yield from tcp.get(b"k")
        tcp_lat = (sim.now - t2) / 20
        return get_lat, put_lat, tcp_lat

    get_lat, put_lat, tcp_lat = cluster.run_app(probe())
    result["latency"] = {"get_s": get_lat, "put_s": put_lat,
                         "tcp_get_s": tcp_lat}
    return result


def test_e10_kv_extension(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E10 (extension): KV throughput, 95/5 get/put mix (kops/s)",
        ["clients", "RStore KV (one-sided)", "sockets KV"],
        [
            [c, f"{result['rstore'][i] / 1e3:.0f}",
             f"{result['sockets'][i] / 1e3:.0f}"]
            for i, c in enumerate(CLIENT_COUNTS)
        ],
    )
    lat = result["latency"]
    print(f"single-op latency: get {fmt_us(lat['get_s'])} us "
          f"(2 one-sided reads), put {fmt_us(lat['put_s'])} us "
          f"(read+CAS+write+unlock), sockets get {fmt_us(lat['tcp_get_s'])} us")
    benchmark.extra_info.update(result)

    for i in range(len(CLIENT_COUNTS)):
        assert result["rstore"][i] > result["sockets"][i]
    # gets cost two one-sided reads (data + version validation)
    assert lat["get_s"] < us(12)
    assert lat["put_s"] > lat["get_s"]
    assert lat["tcp_get_s"] > 2 * lat["get_s"]