"""E11 (extension) — sensitivity to fabric oversubscription.

The paper's 705 Gb/s assumes a single full-bisection switch.  This
ablation re-runs the E3 all-to-all read workload on a 3-rack topology
with progressively oversubscribed uplinks, quantifying how much of
RStore's aggregate-bandwidth story depends on that fabric assumption —
the kind of deployment question a downstream adopter asks first.
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import GiB, MiB, NetworkConfig

from benchmarks.conftest import fmt_gbps, print_table

MACHINES = 12
RACKS = 3
PER_CLIENT_REAL = 8 * MiB
WIRE_SCALE = 16
SWEEP = [1.0, 2.0, 4.0]


def run_one(oversubscription: float) -> float:
    cluster = build_cluster(
        num_machines=MACHINES,
        config=RStoreConfig(stripe_size=1 * MiB),
        net_config=NetworkConfig(racks=RACKS,
                                 oversubscription=oversubscription),
        server_capacity=1 * GiB,
    )
    sim = cluster.sim
    region_size = MACHINES * PER_CLIENT_REAL
    moved = {"bytes": 0}

    def reader(host, desc):
        client = cluster.client(host)
        mapping = yield from client.map("bw")
        local = yield from client.alloc_local(region_size)

        def one(stripe):
            yield from mapping.read_into(
                local, local.addr + stripe.index * desc.stripe_size,
                stripe.index * desc.stripe_size, stripe.length,
                wire_scale=WIRE_SCALE,
            )
            moved["bytes"] += stripe.length * WIRE_SCALE

        procs = [sim.process(one(s)) for s in desc.stripes
                 if s.host_id != host]
        yield sim.all_of(procs)

    def app():
        desc = yield from cluster.client(0).alloc("bw", region_size)
        for host in range(MACHINES):
            yield from cluster.client(host).map("bw")
        t0 = sim.now
        procs = [sim.process(reader(h, desc)) for h in range(MACHINES)]
        yield sim.all_of(procs)
        return moved["bytes"] * 8 / (sim.now - t0)

    return cluster.run_app(app())


def run_experiment():
    return [(o, run_one(o)) for o in SWEEP]


def test_e11_oversubscription(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"E11 (extension): all-to-all read bandwidth, {MACHINES} machines "
        f"in {RACKS} racks",
        ["uplink oversubscription", "aggregate (Gb/s)", "vs full bisection"],
        [
            [f"{o:.0f}:1", fmt_gbps(bw), f"{bw / rows[0][1]:.2f}x"]
            for o, bw in rows
        ],
    )
    benchmark.extra_info["rows"] = [
        {"oversubscription": o, "aggregate_gbps": bw / 1e9} for o, bw in rows
    ]
    full, half, quarter = (bw for _o, bw in rows)
    # full bisection across racks matches the single-switch story
    assert full / 1e9 > 450
    # cross-rack traffic dominates all-to-all: throughput degrades with
    # the uplink, approaching 1/oversubscription
    assert half < 0.75 * full
    assert quarter < 0.75 * half