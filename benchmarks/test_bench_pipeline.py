"""E13 — Batched small-op throughput on the asynchronous data path.

The paper's small-op numbers assume the client keeps the NIC busy; a
blocking API caps throughput at one op per round trip.  This experiment
issues the same stream of small reads through the sync API and through
:class:`IoBatch` at increasing batch depths on the default 4-server
topology.  Deeper batches overlap round trips and collapse doorbells
(one MMIO per flush per QP), so throughput climbs until the issue path,
not the wire, is the limit.  The NIC's ``doorbells_rung < ops_posted``
is the direct proof that doorbell batching carried the workload.
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB

from benchmarks.conftest import print_table

_MACHINES = 4
_OPS = 256
_OP_BYTES = 128
_DEPTHS = (1, 2, 4, 8, 16, 32)
_REGION = 2 * MiB


def _offset(i: int) -> int:
    # stride the reads across every stripe (and so every server QP)
    return ((i * 37) % (_REGION // (8 * KiB))) * 8 * KiB


def run_experiment():
    cluster = build_cluster(
        num_machines=_MACHINES,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )
    client = cluster.client(1)
    sim = cluster.sim
    out = {"rows": []}

    def setup():
        yield from client.alloc("e13", _REGION)
        mapping = yield from client.map("e13")
        yield from mapping.write(0, bytes(_REGION))
        return mapping

    mapping = cluster.run_app(setup())

    def sync_run():
        t0 = sim.now
        for i in range(_OPS):
            yield from mapping.read(_offset(i), _OP_BYTES)
        return _OPS / (sim.now - t0)

    out["sync_ops_per_s"] = cluster.run_app(sync_run())

    def batched_run(depth):
        bells0 = client.nic.doorbells_rung
        posted0 = client.nic.ops_posted
        t0 = sim.now
        i = 0
        while i < _OPS:
            batch = client.batch()
            for j in range(min(depth, _OPS - i)):
                yield from batch.read(mapping, _offset(i + j), _OP_BYTES)
            i += depth
            yield from batch.flush()
            yield from batch.wait_all()
        ops_per_s = _OPS / (sim.now - t0)
        return (ops_per_s, client.nic.doorbells_rung - bells0,
                client.nic.ops_posted - posted0)

    for depth in _DEPTHS:
        ops_per_s, doorbells, posted = cluster.run_app(batched_run(depth))
        out["rows"].append({
            "depth": depth,
            "ops_per_s": ops_per_s,
            "speedup": ops_per_s / out["sync_ops_per_s"],
            "doorbells": doorbells,
            "ops_posted": posted,
        })
    return out


def test_e13_batched_small_ops(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    sync = result["sync_ops_per_s"]
    print_table(
        "E13: 128B read throughput vs batch depth (4 servers)",
        ["depth", "kops/s", "vs sync", "doorbells", "ops posted"],
        [["sync", f"{sync / 1e3:.0f}", "1.00x", "-", "-"]] + [
            [r["depth"], f"{r['ops_per_s'] / 1e3:.0f}",
             f"{r['speedup']:.2f}x", r["doorbells"], r["ops_posted"]]
            for r in result["rows"]
        ],
    )
    benchmark.extra_info["sync_ops_per_s"] = sync
    benchmark.extra_info["rows"] = result["rows"]
    by_depth = {r["depth"]: r for r in result["rows"]}
    # depth-1 batches add no pipelining, so they sit near the sync API
    assert by_depth[1]["speedup"] > 0.8
    # the headline: depth-32 batches beat the blocking API by >= 3x
    assert by_depth[32]["speedup"] >= 3.0
    # throughput grows monotonically-ish with depth
    assert by_depth[32]["ops_per_s"] > by_depth[4]["ops_per_s"]
    # doorbell batching really carried the ops: far fewer MMIOs than WRs
    assert by_depth[32]["doorbells"] < by_depth[32]["ops_posted"]
    assert by_depth[1]["doorbells"] == by_depth[1]["ops_posted"]
