"""E8 — RSort weak scaling.

Fixed per-node data (21.3 GB, the 256 GB/12 point of E7) while the
cluster grows: in-memory sorting with a one-sided shuffle should keep
per-node time nearly flat, because every added machine brings its own
NIC, DRAM and cores — the aggregate-bandwidth property of E3 applied
end-to-end.
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import GiB, MiB
from repro.sort import RSort
from repro.workloads.kv import RECORD_BYTES, is_sorted

from benchmarks.conftest import print_table

MACHINES = [2, 4, 8, 12]
RECORDS_PER_WORKER = 10_000
PER_NODE_BYTES = 256 * GiB // 12  # E7's per-node share


def run_one(machines: int):
    scale = PER_NODE_BYTES // (RECORDS_PER_WORKER * RECORD_BYTES)
    cluster = build_cluster(
        num_machines=machines,
        config=RStoreConfig(stripe_size=1 * MiB),
        server_capacity=64 * GiB,
    )
    sorter = RSort(cluster, RECORDS_PER_WORKER, scale=scale, seed=8,
                   tag="e8")
    stats = cluster.run_app(sorter.run())
    output = cluster.run_app(sorter.collect_output())
    assert is_sorted(output)
    return stats.elapsed, stats.logical_bytes


def run_experiment():
    return [(m, *run_one(m)) for m in MACHINES]


def test_e8_sort_weak_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E8: RSort weak scaling (21.3 GB per node)",
        ["machines", "data (GB)", "time (s)", "GB/s aggregate"],
        [
            [m, f"{nbytes / 1e9:.0f}", f"{t:.1f}", f"{nbytes / t / 1e9:.2f}"]
            for m, t, nbytes in rows
        ],
    )
    benchmark.extra_info["rows"] = [
        {"machines": m, "elapsed_s": t, "bytes": b} for m, t, b in rows
    ]
    times = [t for _m, t, _b in rows]
    # weak scaling: per-node time stays within ~35% across 2 -> 12
    assert max(times) < 1.35 * min(times)
    # aggregate throughput grows nearly linearly with machines
    agg = [b / t for _m, t, b in rows]
    assert agg[-1] > 4 * agg[0]
