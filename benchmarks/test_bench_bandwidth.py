"""E3 — Aggregate bandwidth vs cluster size.

Anchors the abstract's headline number: "high aggregate bandwidth
(705 Gb/s) ... on our 12-machine testbed".  Every machine reads a
region striped over all memory servers; with N machines reading
concurrently the fabric should deliver close to N x link rate.  On FDR
(54.3 Gb/s usable per direction) 12 machines give ~650 Gb/s — the same
shape as the paper, within ~8% of its absolute number (their testbed's
aggregate counts slightly differently; see EXPERIMENTS.md).
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import GiB, MiB

from benchmarks.conftest import fmt_gbps, print_table

MACHINES = [2, 4, 6, 8, 10, 12]
PER_CLIENT_REAL = 16 * MiB
WIRE_SCALE = 16  # each client moves 256 MiB logical


def run_one(machines: int) -> float:
    cluster = build_cluster(
        num_machines=machines,
        config=RStoreConfig(stripe_size=1 * MiB),
        server_capacity=1 * GiB,
    )
    sim = cluster.sim
    region_size = machines * PER_CLIENT_REAL

    moved = {"bytes": 0}

    def reader(host, desc):
        """Read every stripe hosted on a *different* machine, all
        concurrently.

        The paper's number is fabric bandwidth, so loopback to the
        local memory server neither counts nor competes.
        """
        client = cluster.client(host)
        mapping = yield from client.map("bw")
        local = yield from client.alloc_local(region_size)
        stripe = desc.stripe_size

        def one(s):
            yield from mapping.read_into(
                local, local.addr + s.index * stripe, s.index * stripe,
                s.length, wire_scale=WIRE_SCALE,
            )
            moved["bytes"] += s.length * WIRE_SCALE

        procs = [
            cluster.sim.process(one(s))
            for s in desc.stripes
            if s.host_id != host
        ]
        yield cluster.sim.all_of(procs)

    def app():
        coordinator = cluster.client(0)
        desc = yield from coordinator.alloc("bw", region_size)
        # pre-map on every host so only the transfer is timed
        for host in range(machines):
            yield from cluster.client(host).map("bw")
        t0 = sim.now
        procs = [
            sim.process(reader(host, desc), name=f"bw-{host}")
            for host in range(machines)
        ]
        yield sim.all_of(procs)
        elapsed = sim.now - t0
        return moved["bytes"] * 8 / elapsed

    return cluster.run_app(app())


def run_experiment():
    return [(m, run_one(m)) for m in MACHINES]


def test_e3_aggregate_bandwidth(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    link = 54.3  # Gb/s usable per direction (FDR)
    print_table(
        "E3: aggregate read bandwidth vs cluster size (paper: 705 Gb/s @ 12)",
        ["machines", "aggregate (Gb/s)", "per-machine (Gb/s)",
         "link efficiency"],
        [
            [m, fmt_gbps(bw), fmt_gbps(bw / m), f"{bw / 1e9 / m / link:.2f}"]
            for m, bw in rows
        ],
    )
    benchmark.extra_info["rows"] = [
        {"machines": m, "aggregate_gbps": bw / 1e9} for m, bw in rows
    ]
    by_m = dict(rows)
    # near-linear scaling with cluster size
    assert by_m[12] > 5 * by_m[2]
    # each machine sustains most of its link
    for m, bw in rows:
        assert bw / 1e9 / m > 0.80 * link
    # the 12-machine aggregate lands in the paper's neighbourhood
    assert 550 < by_m[12] / 1e9 < 720
