"""E5 — PageRank: RStore-backed framework vs message passing.

Anchors the abstract's "outperforms state-of-the-art systems by margins
of 2.6-4.2x when calculating PageRank".  Both engines run the identical
vertex program on the same RMAT graph across 12 machines; the margin
comes from the substrate: bulk one-sided gathers + array kernels vs
per-edge message machinery over sockets.
"""

import numpy as np

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.graph import (
    MessagePassingEngine,
    PageRankProgram,
    RStoreGraphEngine,
)
from repro.graph.loader import Graph
from repro.simnet.config import GiB, KiB, MiB
from repro.workloads.graphs import rmat_edges

from benchmarks.conftest import fmt_ms, print_table

SCALE = 17          # 131k vertices
EDGE_FACTOR = 16    # ~2.1M edges
ITERATIONS = 10
MACHINES = 12


def run_experiment():
    src, dst = rmat_edges(scale=SCALE, edge_factor=EDGE_FACTOR, seed=42)
    graph = Graph.from_edges(1 << SCALE, src, dst)
    cluster = build_cluster(
        num_machines=MACHINES,
        config=RStoreConfig(stripe_size=512 * KiB),
        server_capacity=1 * GiB,
    )
    program = PageRankProgram(damping=0.85, iterations=ITERATIONS)
    rstore = RStoreGraphEngine(cluster, graph, tag="e5")
    r_stats = cluster.run_app(rstore.run(program))
    baseline = MessagePassingEngine(cluster, graph, tag="e5m")
    m_stats = cluster.run_app(baseline.run(program))
    assert np.allclose(r_stats.values, m_stats.values), "engines disagree"
    return {
        "graph": (graph.num_vertices, graph.num_edges),
        "rstore_s": r_stats.elapsed,
        "baseline_s": m_stats.elapsed,
        "rstore_setup_s": r_stats.setup_elapsed,
        "load_s": rstore.load_elapsed,
    }


def test_e5_pagerank(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    n, m = r["graph"]
    speedup = r["baseline_s"] / r["rstore_s"]
    print_table(
        f"E5: PageRank, RMAT n={n} m={m}, {ITERATIONS} iters, "
        f"{MACHINES} machines (paper: 2.6-4.2x)",
        ["system", "total (ms)", "per-iter (ms)"],
        [
            ["RStore framework", fmt_ms(r["rstore_s"]),
             fmt_ms(r["rstore_s"] / ITERATIONS)],
            ["message passing", fmt_ms(r["baseline_s"]),
             fmt_ms(r["baseline_s"] / ITERATIONS)],
            ["speedup", f"{speedup:.2f}x", ""],
        ],
    )
    benchmark.extra_info.update(r | {"speedup": speedup})
    # the paper's band, with modelling slack on both sides
    assert 2.0 < speedup < 5.5
