"""E17 — Data-path crossover: one-sided vs server-op vs remote-fetch.

The adaptive data path's pitch is that no single substrate wins
everywhere.  This bench maps the crossover on a hash table whose probe
chains deepen with key popularity: keys are inserted in *reverse*
popularity order, so the hottest keys arrive last, land at the end of
long chains — and the second-hottest key overflows its probe window
entirely, turning the hottest part of the workload into negative
lookups (the adversarial case for client-driven probing, which must
READ the full slot at every hop to learn it missed).

The grid sweeps value size x zipfian theta for all four path policies
and clocks the mean simulated get latency.  The regimes the cost model
predicts, and this table must reproduce:

* **server_op** wins small values: one ~4.5us RPC replaces an
  L-deep chain of READ+validate round trips, and the pickled reply is
  cheap to copy at 64B.
* **one_sided** wins large values on shallow chains (theta=0): the
  value rides NIC DMA with no CPU copy at either end, while both
  server-side paths pay per-byte CPU to move the reply.
* **remote_fetch** wins large values on deep/hot chains: the server
  walks the chain header-only and the result still comes back over a
  one-sided READ of the deposit buffer — it dodges one-sided's
  per-hop full-slot READs *and* server-op's channel copy.
* **adaptive** must sit within 10% of the per-cell best everywhere.

A second table sweeps counter-burst length: a single FAA beats an RPC,
a burst of eight amortizes one RPC over eight remote FAA round trips.

Results land in ``BENCH_datapath.json`` for the perf-trajectory index.
"""

import json
from pathlib import Path

from repro.cluster import build_cluster
from repro.coord.counter import AtomicCounter
from repro.core import RStoreConfig
from repro.datapath import PathPolicy
from repro.kv.hashkv import RKVStore
from repro.simnet.config import KiB, MiB
from repro.workloads.access import zipfian_keys

from benchmarks.conftest import fmt_us, print_table

VALUE_SIZES = [64, 8 * KiB, 32 * KiB]
THETAS = [0.0, 0.9, 1.2]
POLICIES = list(PathPolicy.POLICIES)

SLOTS = 272           # load 0.735: deep chains, one hot-key overflow
KEYS = 200
WARM_GETS = 100       # distribution-matched warm-up (selector settles)
GETS = 150            # measured zipfian lookups
BURST_SIZES = [1, 2, 4, 8]
BURSTS = 30
SEED = 7

JSON_PATH = Path(__file__).with_name("BENCH_datapath.json")


def _config():
    # probe_every=64 keeps the adaptive tax low once settled: probing a
    # 6x-slower mode every 32 ops would alone cost ~8% in the cells
    # with the widest mode spread
    return RStoreConfig(stripe_size=64 * KiB, datapath_probe_every=64)


def run_get_cell(policy: str, value_size: int, theta: float) -> dict:
    cluster = build_cluster(num_machines=4, config=_config(),
                            server_capacity=512 * MiB)
    sim = cluster.sim
    out = {"policy": policy, "value_size": value_size, "theta": theta}

    def app():
        writer = cluster.client(1)
        store = yield from RKVStore.create(writer, "xover", slots=SLOTS,
                                           key_size=16,
                                           value_size=value_size)
        # reverse-popularity insertion: the hottest keys arrive last,
        # at the end of the longest chains; whatever overflows the
        # probe window stays absent and is served as a negative lookup
        absent = 0
        for i in reversed(range(KEYS)):
            try:
                yield from store.put(b"k%05d" % i, b"v" * value_size)
            except Exception:
                absent += 1
        reader = yield from RKVStore.open(cluster.client(2), "xover",
                                          path_policy=policy)
        # warm-up: touch every key once (channels, QPs, fetch buffers),
        # then run the measured distribution so the adaptive selector
        # meets the regime before the clock starts
        for i in range(KEYS):
            yield from reader.get(b"k%05d" % i)
        for idx in zipfian_keys(WARM_GETS, KEYS, theta=theta,
                                seed=SEED + 1):
            yield from reader.get(b"k%05d" % idx)

        draws = zipfian_keys(GETS, KEYS, theta=theta, seed=SEED)
        hits = 0
        t0 = sim.now
        for idx in draws:
            value = yield from reader.get(b"k%05d" % idx)
            hits += value is not None
        elapsed = sim.now - t0
        out["latency_s"] = elapsed / GETS
        out["gets_per_s"] = GETS / elapsed
        out["hit_rate"] = hits / GETS
        out["absent_keys"] = absent

    cluster.run_app(app())
    return out


def run_burst_row(burst: int) -> dict:
    row = {"burst": burst}
    for policy in (PathPolicy.ONE_SIDED, PathPolicy.SERVER_OP):
        cluster = build_cluster(num_machines=4, config=_config(),
                                server_capacity=512 * MiB)
        sim = cluster.sim
        out = {}

        def app():
            client = cluster.client(1)
            ctr = yield from AtomicCounter.create(client, "e17",
                                                  path_policy=policy)
            deltas = list(range(1, burst + 1))
            yield from ctr.add_burst(deltas)  # warm the channel
            t0 = sim.now
            for _ in range(BURSTS):
                yield from ctr.add_burst(deltas)
            out["latency_s"] = (sim.now - t0) / BURSTS

        cluster.run_app(app())
        row[policy] = out["latency_s"]
    return row


def run_experiment():
    cells = [
        run_get_cell(policy, value_size, theta)
        for value_size in VALUE_SIZES
        for theta in THETAS
        for policy in POLICIES
    ]
    bursts = [run_burst_row(burst) for burst in BURST_SIZES]
    return {"cells": cells, "bursts": bursts}


def _fold(cells: list) -> list:
    """One row per (value_size, theta) with all four policies inline."""
    rows: dict = {}
    for cell in cells:
        row = rows.setdefault(
            (cell["value_size"], cell["theta"]),
            {"value_size": cell["value_size"], "theta": cell["theta"],
             "hit_rate": cell["hit_rate"]},
        )
        row[cell["policy"]] = cell["latency_s"]
        row[f"{cell['policy']}_gets_per_s"] = cell["gets_per_s"]
    folded = []
    for row in rows.values():
        explicit = {m: row[m] for m in PathPolicy.MODES}
        row["winner"] = min(explicit, key=explicit.get)
        row["adaptive_ratio"] = row["adaptive"] / explicit[row["winner"]]
        folded.append(row)
    return folded


def test_e17_datapath_crossover(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = _fold(results["cells"])
    print_table(
        f"E17: data-path crossover — {GETS} zipfian gets, "
        f"{KEYS} keys in {SLOTS} slots (reverse-popularity insert)",
        ["value", "theta", "one-sided (us)", "server-op (us)",
         "remote-fetch (us)", "adaptive (us)", "winner", "adp/best"],
        [
            [r["value_size"], r["theta"], fmt_us(r["one_sided"]),
             fmt_us(r["server_op"]), fmt_us(r["remote_fetch"]),
             fmt_us(r["adaptive"]), r["winner"],
             f"{r['adaptive_ratio']:.3f}"]
            for r in rows
        ],
    )
    print_table(
        f"E17b: counter bursts — {BURSTS} bursts per point",
        ["burst", "one-sided (us)", "server-op (us)", "winner"],
        [
            [b["burst"], fmt_us(b["one_sided"]), fmt_us(b["server_op"]),
             min(("one_sided", "server_op"), key=b.get)]
            for b in results["bursts"]
        ],
    )
    benchmark.extra_info["rows"] = rows
    JSON_PATH.write_text(json.dumps(
        {
            "benchmark": "datapath",
            "slots": SLOTS,
            "keys": KEYS,
            "gets": GETS,
            "rows": rows,
            "bursts": results["bursts"],
        },
        indent=2, sort_keys=True,
    ) + "\n")
    print(f"wrote {JSON_PATH.name}")

    # -- the crossover is real: every substrate owns at least one regime
    winners = {r["winner"] for r in rows}
    assert winners == set(PathPolicy.MODES), (
        f"expected every mode to win somewhere, winners: {winners}"
    )
    # small values: the single RPC beats the probe-chain conversation
    # in every theta regime
    for r in rows:
        if r["value_size"] == 64:
            assert r["winner"] == "server_op", r
    # large values, uniform access: shallow chains + DMA-ridden payload
    # keep the classic one-sided path on top
    # large values, hot skew: header-only server probing + one-sided
    # pickup dodges both per-hop READs and the channel copy
    by_cell = {(r["value_size"], r["theta"]): r for r in rows}
    assert by_cell[(32 * KiB, 0.0)]["winner"] == "one_sided"
    assert by_cell[(32 * KiB, 1.2)]["winner"] == "remote_fetch"
    # the adaptive policy tracks the per-regime best within 10%
    for r in rows:
        assert r["adaptive_ratio"] <= 1.10, (
            f"adaptive {r['adaptive_ratio']:.3f}x off best at "
            f"value={r['value_size']} theta={r['theta']}"
        )
    # bursts: a lone FAA beats an RPC; eight FAAs lose to one RPC
    by_burst = {b["burst"]: b for b in results["bursts"]}
    assert by_burst[1]["one_sided"] < by_burst[1]["server_op"]
    assert by_burst[8]["server_op"] < by_burst[8]["one_sided"]
