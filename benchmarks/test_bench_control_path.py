"""E1 — Control-path cost: allocate and map vs region size.

Anchors the abstract's "carefully separating resource setup from IO":
the very first allocation pays master↔server connection setup; steady
state allocations grow with stripe count (placement + batched server
reservations); a cold map pays per-server connection establishment; a
warm map — connections cached — costs a single name lookup.  This is
the cost RStore pays *once* so the data path (E2) never does.
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import GiB, KiB, MiB

from benchmarks.conftest import fmt_us, print_table

SIZES = [64 * KiB, 1 * MiB, 16 * MiB, 256 * MiB]


def run_experiment():
    cluster = build_cluster(
        num_machines=12,
        config=RStoreConfig(stripe_size=1 * MiB),
        server_capacity=2 * GiB,
    )
    sim = cluster.sim
    result = {"first_alloc": 0.0, "rows": []}

    def app():
        # The very first allocation establishes master<->server RPC
        # connections lazily; measure it separately.
        warm_client = cluster.client(0)
        t0 = sim.now
        yield from warm_client.alloc("e1-first", 12 * MiB)
        result["first_alloc"] = sim.now - t0

        for i, size in enumerate(SIZES):
            t0 = sim.now
            region = yield from warm_client.alloc(f"e1-{size}", size)
            t_alloc = sim.now - t0

            cold_client = cluster.client(1 + i)  # never mapped anything
            t0 = sim.now
            yield from cold_client.map(region)
            t_cold = sim.now - t0

            t0 = sim.now
            yield from cold_client.map(f"e1-{size}")  # by name: lookup+cached
            t_warm = sim.now - t0

            result["rows"].append(
                [size, len(region.stripes), t_alloc, t_cold, t_warm]
            )

    cluster.run_app(app())
    return result


def test_e1_control_path(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = result["rows"]
    print_table(
        "E1: control path — alloc / map latency vs region size (12 machines)",
        ["size", "stripes", "alloc (us)", "map cold (us)", "map warm (us)"],
        [
            [f"{size // KiB} KiB", stripes, fmt_us(a), fmt_us(c), fmt_us(w)]
            for size, stripes, a, c, w in rows
        ],
    )
    print(f"first-ever alloc (incl. master->server connects): "
          f"{fmt_us(result['first_alloc'])} us")
    benchmark.extra_info["first_alloc_s"] = result["first_alloc"]
    benchmark.extra_info["rows"] = [
        {"size": s, "stripes": n, "alloc_s": a, "map_cold_s": c,
         "map_warm_s": w}
        for s, n, a, c, w in rows
    ]
    allocs = [a for _s, _n, a, _c, _w in rows]
    colds = [c for _s, _n, _a, c, _w in rows]
    # steady-state allocation grows with stripe count
    assert allocs[-1] > allocs[0]
    # cold map grows with the number of servers to connect to
    assert colds[-1] > 5 * colds[0]
    # a warm map is orders cheaper than a cold one for striped regions
    for _size, stripes, _a, cold, warm in rows:
        if stripes >= 12:
            assert warm < cold / 20
    # the first allocation dominates all later ones (lazy connects)
    assert result["first_alloc"] > max(allocs)
