"""E4 — Small-operation throughput and server CPU involvement.

Anchors the offloading claim: RStore's data path is executed entirely
by NICs, so (a) small-op throughput scales with client parallelism and
op-issue rate, and (b) the memory server's CPU stays idle while the
two-sided and sockets designs burn server cores per byte served.
"""

from repro.baselines import TcpMemoryClient, TcpMemoryServer
from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB

from benchmarks.conftest import print_table

OPS_PER_CLIENT = 200
OP_SIZE = 64
CLIENT_COUNTS = [1, 2, 4, 8]
SERVER = 9


def build(two_sided=False):
    return build_cluster(
        num_machines=10,
        config=RStoreConfig(stripe_size=4 * MiB,
                            two_sided_data_path=two_sided),
        server_capacity=64 * MiB,
    )


def rstore_round(cluster, clients, tag):
    sim = cluster.sim

    def worker(host):
        client = cluster.client(host)
        mapping = yield from client.map(f"tp-{tag}")
        local = yield from client.alloc_local(4 * KiB)
        yield from mapping.read_into(local, local.addr, 0, OP_SIZE)  # warm
        yield from client.barrier(f"tp-{tag}-go", clients)
        for _ in range(OPS_PER_CLIENT):
            yield from mapping.read_into(local, local.addr, 0, OP_SIZE)

    def app():
        yield from cluster.client(0).alloc(
            f"tp-{tag}", 1 * MiB, preferred_host=SERVER
        )
        t0 = sim.now
        procs = [
            sim.process(worker(1 + i)) for i in range(clients)
        ]
        yield sim.all_of(procs)
        return clients * OPS_PER_CLIENT / (sim.now - t0)

    return cluster.run_app(app())


def tcp_round(cluster, clients, server, tag):
    sim = cluster.sim

    def worker(host, gate):
        client = yield from TcpMemoryClient(cluster, host).connect(server)
        yield from client.read(0, OP_SIZE)  # warm
        yield gate
        for _ in range(OPS_PER_CLIENT):
            yield from client.read(0, OP_SIZE)

    def app():
        gate = sim.event()
        procs = [sim.process(worker(1 + i, gate)) for i in range(clients)]
        yield sim.timeout(5e-3)  # let everyone connect and warm up
        t0 = sim.now
        gate.succeed()
        yield sim.all_of(procs)
        return clients * OPS_PER_CLIENT / (sim.now - t0)

    return cluster.run_app(app())


def run_experiment():
    result = {"rstore": [], "two_sided": [], "sockets": [], "cpu": {}}

    one_sided = build()
    for clients in CLIENT_COUNTS:
        result["rstore"].append(
            (clients, rstore_round(one_sided, clients, f"os{clients}"))
        )
    server_cpu_before = one_sided.net.host(SERVER).cpu.busy_seconds
    rstore_round(one_sided, 4, "cpu-probe")
    result["cpu"]["rstore"] = (
        one_sided.net.host(SERVER).cpu.busy_seconds - server_cpu_before
    )

    two = build(two_sided=True)
    for clients in CLIENT_COUNTS:
        result["two_sided"].append(
            (clients, rstore_round(two, clients, f"ts{clients}"))
        )
    before = two.net.host(SERVER).cpu.busy_seconds
    rstore_round(two, 4, "cpu-probe")
    result["cpu"]["two_sided"] = (
        two.net.host(SERVER).cpu.busy_seconds - before
    )

    sockets = build()
    tcp_server = TcpMemoryServer(sockets, host_id=SERVER, size=1 * MiB)
    for clients in CLIENT_COUNTS:
        result["sockets"].append(
            (clients, tcp_round(sockets, clients, tcp_server, f"tcp{clients}"))
        )
    before = sockets.net.host(SERVER).cpu.busy_seconds
    tcp_round(sockets, 4, tcp_server, "cpu-probe")
    result["cpu"]["sockets"] = (
        sockets.net.host(SERVER).cpu.busy_seconds - before
    )
    return result


def test_e4_small_op_throughput(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = []
    for i, clients in enumerate(CLIENT_COUNTS):
        rows.append([
            clients,
            f"{result['rstore'][i][1] / 1e3:.0f}",
            f"{result['two_sided'][i][1] / 1e3:.0f}",
            f"{result['sockets'][i][1] / 1e3:.0f}",
        ])
    print_table(
        f"E4: {OP_SIZE}-byte read throughput (kops/s) vs concurrent clients",
        ["clients", "RStore", "2-sided RDMA", "sockets"],
        rows,
    )
    cpu = result["cpu"]
    print(f"server CPU for 800 x {OP_SIZE}B reads: "
          f"RStore {cpu['rstore'] * 1e6:.1f} us, "
          f"two-sided {cpu['two_sided'] * 1e6:.1f} us, "
          f"sockets {cpu['sockets'] * 1e6:.1f} us")
    benchmark.extra_info.update(
        {k: [(c, v) for c, v in vals] for k, vals in result.items()
         if k != "cpu"}
    )
    benchmark.extra_info["server_cpu_s"] = cpu

    # one-sided beats both CPU-involving designs at every client count
    for i in range(len(CLIENT_COUNTS)):
        assert result["rstore"][i][1] > result["two_sided"][i][1]
        assert result["rstore"][i][1] > result["sockets"][i][1]
    # throughput grows with client parallelism
    assert result["rstore"][-1][1] > 2 * result["rstore"][0][1]
    # the offloading claim: server CPU essentially untouched by
    # one-sided reads (the tiny residue is the server's own heartbeats)
    assert cpu["rstore"] < cpu["two_sided"] / 50
    assert cpu["sockets"] > cpu["two_sided"]
