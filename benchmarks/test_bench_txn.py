"""E14 — OCC transactions vs naive 2PL under zipfian contention.

The transactional-dataplane study: four clients run a mixed workload
(70 % read-only four-key audits, 30 % two-key transfers) over one
shared 256-account table, with key popularity swept from uniform
(``theta = 0``) through YCSB-default skew (0.9) to pathological (1.2).
Both runners use the same SeqLock slots and the same token protocol —
they differ only in *when* they lock:

* **OCC** (:mod:`repro.txn`) — snapshot, validate, lock only the
  write-set at commit; conflicts abort and retry.
* **2PL** (:mod:`repro.baselines.twopl`) — lock every declared slot up
  front, hold across read + compute + write; audits lock too.

Storm's thesis (and this bench's acceptance bar): optimistic wins at
low-to-moderate contention because read-only work never locks; the
interesting story is how the gap narrows as skew concentrates writes
on a handful of hot slots.  Results land in ``BENCH_txn.json`` for
the perf trajectory.
"""

import json
import random
from pathlib import Path

from repro.baselines import TwoPhaseLocking
from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.kv import RKVStore
from repro.simnet.config import KiB, MiB
from repro.workloads.access import zipfian_keys

from benchmarks.conftest import print_table

ACCOUNTS = 256
SLOTS = 1024
CLIENT_HOSTS = (1, 2, 3, 4)
TXNS_PER_CLIENT = 60
AUDIT_KEYS = 4
AUDIT_RATIO = 0.7       # the rest are two-key transfers
THETAS = [0.0, 0.9, 1.2]
OPENING = 1000
SEED = 2024

JSON_PATH = Path(__file__).with_name("BENCH_txn.json")


def _keys():
    return [f"acct-{i:03d}".encode() for i in range(ACCOUNTS)]


def _client_ops(theta: float, host: int):
    """One client's op sequence: (kind, keys) tuples, zipfian-skewed."""
    draws = iter(zipfian_keys(
        TXNS_PER_CLIENT * AUDIT_KEYS * 2, ACCOUNTS, theta=theta,
        seed=SEED + host,
    ))
    rng = random.Random(SEED * 7 + host)
    keys = _keys()
    ops = []
    for _ in range(TXNS_PER_CLIENT):
        want = AUDIT_KEYS if rng.random() < AUDIT_RATIO else 2
        picked = []
        for index in draws:
            if keys[index] not in picked:
                picked.append(keys[index])
            if len(picked) == want:
                break
        ops.append(("audit" if want == AUDIT_KEYS else "transfer", picked))
    return ops


def _build():
    cluster = build_cluster(
        num_machines=5,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=64 * MiB,
    )

    def setup():
        store = yield from RKVStore.create(cluster.client(0), "bank",
                                           slots=SLOTS)
        for key in _keys():
            yield from store.put(key, str(OPENING).encode())

    cluster.run_app(setup())
    return cluster


def run_occ(theta: float) -> dict:
    cluster = _build()
    sim = cluster.sim

    def worker(host):
        view = yield from RKVStore.open(cluster.client(host), "bank")
        runtime = view.txn(label=f"occ-{host}")
        for kind, keys in _client_ops(theta, host):
            if kind == "audit":
                def audit(txn, keys=keys):
                    total = 0
                    for key in keys:
                        total += int((yield from txn.get(view, key)))
                    return total

                yield from runtime.run(audit)
            else:
                src, dst = keys

                def transfer(txn, src=src, dst=dst):
                    a = int((yield from txn.get(view, src)))
                    b = int((yield from txn.get(view, dst)))
                    yield from txn.put(view, src, str(a - 1).encode())
                    yield from txn.put(view, dst, str(b + 1).encode())

                yield from runtime.run(transfer)
        return runtime

    def app():
        t0 = sim.now
        procs = [cluster.spawn(worker(host)) for host in CLIENT_HOSTS]
        yield sim.all_of(procs)
        elapsed = sim.now - t0
        runtimes = [p.value for p in procs]
        return elapsed, runtimes

    elapsed, runtimes = cluster.run_app(app())
    commits = sum(rt.commits for rt in runtimes)
    aborts = sum(rt.aborts for rt in runtimes)
    assert commits == len(CLIENT_HOSTS) * TXNS_PER_CLIENT
    _assert_conserved(cluster)
    return {
        "system": "occ",
        "theta": theta,
        "elapsed_s": elapsed,
        "txn_per_s": commits / elapsed,
        "commits": commits,
        "aborts": aborts,
        "abort_rate": aborts / (commits + aborts) if commits else 1.0,
    }


def run_twopl(theta: float) -> dict:
    cluster = _build()
    sim = cluster.sim

    def worker(host):
        view = yield from RKVStore.open(cluster.client(host), "bank")
        runner = TwoPhaseLocking(cluster.client(host), label=f"2pl-{host}")
        for kind, keys in _client_ops(theta, host):
            if kind == "audit":
                yield from runner.run(view, keys, lambda values: {})
            else:
                src, dst = keys

                def move(values, src=src, dst=dst):
                    return {
                        src: str(int(values[src]) - 1).encode(),
                        dst: str(int(values[dst]) + 1).encode(),
                    }

                yield from runner.run(view, keys, move)
        return runner

    def app():
        t0 = sim.now
        procs = [cluster.spawn(worker(host)) for host in CLIENT_HOSTS]
        yield sim.all_of(procs)
        elapsed = sim.now - t0
        runners = [p.value for p in procs]
        return elapsed, runners

    elapsed, runners = cluster.run_app(app())
    commits = sum(r.commits for r in runners)
    lock_waits = sum(int(r._m_lock_waits.value) for r in runners)
    assert commits == len(CLIENT_HOSTS) * TXNS_PER_CLIENT
    _assert_conserved(cluster)
    return {
        "system": "2pl",
        "theta": theta,
        "elapsed_s": elapsed,
        "txn_per_s": commits / elapsed,
        "commits": commits,
        "lock_waits": lock_waits,
    }


def _assert_conserved(cluster):
    def check():
        store = yield from RKVStore.open(cluster.client(0), "bank")
        total = 0
        for key in _keys():
            total += int((yield from store.get(key)))
        return total

    assert cluster.run_app(check()) == ACCOUNTS * OPENING, (
        "the workload leaked money — a commit tore"
    )


def run_experiment():
    rows = []
    for theta in THETAS:
        rows.append(run_occ(theta))
        rows.append(run_twopl(theta))
    return rows


def test_e14_occ_vs_twopl_contention(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    by_key = {(r["system"], r["theta"]): r for r in rows}
    table = []
    for theta in THETAS:
        occ = by_key[("occ", theta)]
        twopl = by_key[("2pl", theta)]
        table.append([
            f"{theta:.1f}",
            f"{occ['txn_per_s'] / 1e3:.1f}",
            f"{occ['abort_rate'] * 100:.1f}%",
            f"{twopl['txn_per_s'] / 1e3:.1f}",
            f"{occ['txn_per_s'] / twopl['txn_per_s']:.2f}x",
        ])
    print_table(
        "E14: OCC vs naive 2PL, 70/30 audit/transfer mix, 4 clients",
        ["theta", "OCC ktxn/s", "OCC aborts", "2PL ktxn/s", "OCC/2PL"],
        table,
    )
    benchmark.extra_info["rows"] = rows
    JSON_PATH.write_text(json.dumps(
        {
            "benchmark": "txn",
            "experiment": "E14",
            "accounts": ACCOUNTS,
            "clients": len(CLIENT_HOSTS),
            "txns_per_client": TXNS_PER_CLIENT,
            "audit_ratio": AUDIT_RATIO,
            "rows": rows,
        },
        indent=2,
    ) + "\n")
    print(f"wrote {JSON_PATH.name}")

    # the acceptance bar: optimistic beats pessimistic at low-to-
    # moderate contention (uniform and YCSB-default skew)
    for theta in (0.0, 0.9):
        occ = by_key[("occ", theta)]
        twopl = by_key[("2pl", theta)]
        assert occ["txn_per_s"] > twopl["txn_per_s"], (
            f"theta={theta}: OCC ({occ['txn_per_s']:.0f} txn/s) did not "
            f"beat 2PL ({twopl['txn_per_s']:.0f} txn/s)"
        )
