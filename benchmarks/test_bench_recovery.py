"""E15 — Control-plane recovery time vs metadata-log size.

Measures the robustness tentpole end to end: the master crashes while
serving a populated cluster, restarts, replays its checkpoint + WAL,
and the bench clocks the gap from the crash instant to the **first
successful post-recovery ``map``** by a cold client (redial + replay +
lookup + QP setup).  Swept over the number of committed regions so the
replay component's growth is visible, seeding the perf-trajectory file
(``BENCH_recovery.json``) ROADMAP item 4 asks for.

Every run also proves zero committed-region loss: a pre-crash payload
is read back through the post-recovery mapping.
"""

import json
from pathlib import Path

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.errors import (
    DeadlineExceededError,
    MasterUnavailableError,
    StaleEpochError,
)
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

from benchmarks.conftest import fmt_ms, print_table

REGION_COUNTS = [4, 16, 64]
CRASH_AT = 0.5        # seconds after boot: setup is long done by then
OUTAGE = 0.05         # master down-time before the injector restarts it
POLL = 0.002          # client retry granularity while the master is gone
PAYLOAD = b"survived the crash"

JSON_PATH = Path(__file__).with_name("BENCH_recovery.json")


def run_one(n_regions: int) -> dict:
    faults = FaultInjector(seed=42)
    faults.crash_master(at=CRASH_AT, restart_after=OUTAGE)
    cluster = build_cluster(
        num_machines=6,
        config=RStoreConfig(
            stripe_size=64 * KiB,
            default_replication=2,
            control_deadline_s=0.5,
            recovery_grace_s=0.2,
        ),
        server_capacity=64 * MiB,
        faults=faults,
    )
    sim = cluster.sim
    out: dict = {"regions": n_regions}

    def app():
        writer = cluster.client(1)
        for i in range(n_regions):
            yield from writer.alloc(f"r{i}", 64 * KiB, replication=2)
        mapping = yield from writer.map("r0")
        yield from mapping.write(0, PAYLOAD)
        out["metalog_appends_at_crash"] = cluster.metalog.appends

        t_crash = cluster.boot_time + CRASH_AT
        yield sim.timeout(max(0.0, t_crash - sim.now) + 1e-4)
        assert not cluster.master.alive, "bench clock missed the crash"

        # a cold client that has never spoken to the master: its first
        # successful map is the user-visible recovery moment
        reader = cluster.client(2)
        while True:
            try:
                recovered = yield from reader.map("r0")
                break
            except (MasterUnavailableError, DeadlineExceededError,
                    StaleEpochError):
                yield sim.timeout(POLL)
        out["t_first_map_s"] = sim.now - t_crash
        out["t_replay_s"] = out["t_first_map_s"] - OUTAGE

        data = yield from recovered.read(0, len(PAYLOAD))
        assert data == PAYLOAD, "committed region lost across recovery"
        stats = yield from reader._master_call("cluster_stats")
        out["epoch"] = stats["epoch"]
        out["regions_after"] = stats["regions"]

    cluster.run_app(app())
    assert out["regions_after"] == n_regions
    assert out["epoch"] >= 1  # recovery bumped the fence
    return out


def run_experiment():
    return [run_one(n) for n in REGION_COUNTS]


def test_e15_recovery_time(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E15: master crash -> first successful map (outage 50 ms)",
        ["regions", "WAL appends", "crash->map (ms)", "replay+redial (ms)",
         "epoch"],
        [
            [r["regions"], r["metalog_appends_at_crash"],
             fmt_ms(r["t_first_map_s"]), fmt_ms(r["t_replay_s"]),
             r["epoch"]]
            for r in rows
        ],
    )
    benchmark.extra_info["rows"] = rows
    JSON_PATH.write_text(json.dumps(
        {
            "benchmark": "recovery",
            "outage_s": OUTAGE,
            "rows": rows,
        },
        indent=2,
    ) + "\n")
    print(f"wrote {JSON_PATH.name}")

    # recovery must be dominated by the injected outage, not by replay:
    # even the largest log replays in a small fraction of the down-time
    for r in rows:
        assert r["t_first_map_s"] < OUTAGE + 0.1, (
            f"recovery took {r['t_first_map_s']:.3f}s for "
            f"{r['regions']} regions — replay or redial is dragging"
        )
