"""E6 — The graph framework beyond PageRank: BFS, SSSP, WCC.

The paper motivates the framework as general-purpose ("low-latency
graph access"); this table shows the same engine/substrate gap holds
for traversal- and propagation-style algorithms, which are
convergence-driven rather than iteration-bounded.
"""

import numpy as np

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.graph import (
    BfsProgram,
    MessagePassingEngine,
    RStoreGraphEngine,
    SsspProgram,
    WccProgram,
)
from repro.graph.loader import Graph
from repro.simnet.config import GiB, KiB
from repro.workloads.graphs import rmat_edges

from benchmarks.conftest import fmt_ms, print_table

SCALE = 15
EDGE_FACTOR = 16
MACHINES = 12


def build_graph():
    src, dst = rmat_edges(scale=SCALE, edge_factor=EDGE_FACTOR, seed=11)
    # symmetrize: traversal algorithms want an undirected view
    n = 1 << SCALE
    rng = np.random.default_rng(5)
    weights = rng.uniform(1.0, 10.0, 2 * len(src))
    return Graph.from_edges(
        n,
        np.concatenate([src, dst]),
        np.concatenate([dst, src]),
        weights,
    )


def run_experiment():
    graph = build_graph()
    cluster = build_cluster(
        num_machines=MACHINES,
        config=RStoreConfig(stripe_size=512 * KiB),
        server_capacity=1 * GiB,
    )
    programs = [
        ("BFS", BfsProgram(source=0)),
        ("SSSP", SsspProgram(source=0)),
        ("WCC", WccProgram()),
    ]
    rows = []
    for i, (name, program) in enumerate(programs):
        rstore = RStoreGraphEngine(cluster, graph, tag=f"e6r{i}")
        r_stats = cluster.run_app(rstore.run(program))
        baseline = MessagePassingEngine(cluster, graph, tag=f"e6m{i}")
        m_stats = cluster.run_app(baseline.run(program))
        assert np.allclose(r_stats.values, m_stats.values,
                           equal_nan=True), f"{name}: engines disagree"
        rows.append([name, r_stats.iterations, r_stats.elapsed,
                     m_stats.elapsed])
    return rows


def test_e6_graph_algorithms(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"E6: traversal/propagation algorithms, RMAT scale {SCALE} "
        f"(symmetrized), {MACHINES} machines",
        ["algorithm", "supersteps", "RStore (ms)", "msg passing (ms)",
         "speedup"],
        [
            [name, iters, fmt_ms(r), fmt_ms(m), f"{m / r:.2f}x"]
            for name, iters, r, m in rows
        ],
    )
    benchmark.extra_info["rows"] = [
        {"algorithm": a, "iterations": i, "rstore_s": r, "baseline_s": m}
        for a, i, r, m in rows
    ]
    for _name, iters, r_elapsed, m_elapsed in rows:
        assert iters > 1
        assert m_elapsed > 1.3 * r_elapsed
