"""E16 — Control-plane scaling with metadata shards.

The partitioned control plane's pitch: N independent metadata shards
serve N times the allocation storm, while the client metadata cache
turns repeat ``map``\\ s into zero-RPC hits.  This bench sweeps the
shard count over a fixed concurrent allocation workload and clocks

* aggregate control-plane throughput (allocs/s of simulated time),
* cold ``map`` latency (lookup at the owning shard + QP setup),
* warm ``map`` latency (served from the client's lease cache),

and proves the warm path never touches a master.  Results seed
``BENCH_shard.json`` for the perf-trajectory index.
"""

import json
from pathlib import Path

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.obs import obs_for
from repro.obs.report import shard_census
from repro.simnet.config import KiB, MiB

from benchmarks.conftest import fmt_us, print_table

SHARD_COUNTS = [1, 2, 4, 8]
WRITERS = 4           # concurrent allocating clients
ALLOCS_EACH = 32      # regions per writer
SAMPLES = 16          # names probed for cold/warm map latency

JSON_PATH = Path(__file__).with_name("BENCH_shard.json")


def run_one(shards: int) -> dict:
    cluster = build_cluster(
        num_machines=8,
        config=RStoreConfig(stripe_size=64 * KiB, control_shards=shards),
        server_capacity=128 * MiB,
    )
    sim = cluster.sim
    metrics = obs_for(sim).metrics
    out: dict = {"shards": shards}

    def writer(host: int, tag: str):
        client = cluster.client(host)
        for i in range(ALLOCS_EACH):
            yield from client.alloc(f"t{host}/{tag}{i}", 64 * KiB)

    def app():
        # -- warm-up storm: pay every lazy master<->server connect and
        # client<->shard dial once, outside the measurement window
        procs = [
            sim.process(writer(host, "warm"), name=f"warmer-{host}")
            for host in range(1, 1 + WRITERS)
        ]
        yield sim.all_of(procs)

        # -- aggregate control throughput: 4 writers storm the plane
        t0 = sim.now
        procs = [
            sim.process(writer(host, "r"), name=f"writer-{host}")
            for host in range(1, 1 + WRITERS)
        ]
        yield sim.all_of(procs)
        elapsed = sim.now - t0
        total = WRITERS * ALLOCS_EACH
        out["alloc_elapsed_s"] = elapsed
        out["allocs_per_s"] = total / elapsed
        out["per_shard_rpcs"] = shard_census(metrics)

        # -- map latency, cold vs warm, from a fresh client
        reader = cluster.client(5)
        names = [f"t{1 + i % WRITERS}/r{i // WRITERS}"
                 for i in range(SAMPLES)]
        t0 = sim.now
        for name in names:
            yield from reader.map(name)
        out["map_cold_s"] = (sim.now - t0) / SAMPLES

        before = reader.master_calls
        t0 = sim.now
        for name in names:
            yield from reader.map(name)
        out["map_warm_s"] = (sim.now - t0) / SAMPLES
        out["warm_rpcs"] = reader.master_calls - before
        out["cache_hits"] = reader.metadata_cache_hits

    cluster.run_app(app())
    return out


def run_experiment():
    return [run_one(shards) for shards in SHARD_COUNTS]


def test_e16_shard_scaling(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        f"E16: control-plane scaling — {WRITERS} writers x "
        f"{ALLOCS_EACH} allocs, {SAMPLES} map probes",
        ["shards", "allocs/s", "map cold (us)", "map warm (us)",
         "warm RPCs"],
        [
            [r["shards"], f"{r['allocs_per_s']:,.0f}",
             fmt_us(r["map_cold_s"]), fmt_us(r["map_warm_s"]),
             r["warm_rpcs"]]
            for r in rows
        ],
    )
    benchmark.extra_info["rows"] = rows
    JSON_PATH.write_text(json.dumps(
        {
            "benchmark": "shard",
            "writers": WRITERS,
            "allocs_each": ALLOCS_EACH,
            "rows": [
                {k: v for k, v in r.items() if k != "per_shard_rpcs"}
                for r in rows
            ],
        },
        indent=2,
    ) + "\n")
    print(f"wrote {JSON_PATH.name}")

    by_shards = {r["shards"]: r for r in rows}
    # partitioning the namespace buys real control-plane throughput
    # (the curve need not be monotone — 4 writers hash unevenly over 4
    # shards — but the headline gain must be there)
    assert by_shards[8]["allocs_per_s"] > 2 * by_shards[1]["allocs_per_s"]
    assert by_shards[2]["allocs_per_s"] > by_shards[1]["allocs_per_s"]
    for r in rows:
        # the warm path is pure client state: zero RPCs, and orders of
        # magnitude cheaper than the cold lookup it replaced
        assert r["warm_rpcs"] == 0
        assert r["map_warm_s"] < r["map_cold_s"] / 20
        # every shard served some of the storm
        assert all(n > 0 for n in r["per_shard_rpcs"].values())
