"""E7 — Sorting 256 GB: RSort vs Hadoop TeraSort.

Anchors the abstract's "sort 256 GB of data in 31.7 sec, which is 8x
better than Hadoop TeraSort in a similar setting".  The run uses the
repository's wire-scaling convention: a tractable number of real
records stands for the full 2.56 billion, with every wire/disk/CPU
cost charged at the logical size — the identical code path is
validated on real bytes in tests/sort.
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import GiB, MiB
from repro.sort import RSort, TeraSortBaseline
from repro.workloads.kv import RECORD_BYTES, is_sorted

from benchmarks.conftest import print_table

MACHINES = 12
RECORDS_PER_WORKER = 10_000
TARGET_BYTES = 256 * GiB


def run_experiment():
    real_bytes = MACHINES * RECORDS_PER_WORKER * RECORD_BYTES
    scale = TARGET_BYTES // real_bytes
    cluster = build_cluster(
        num_machines=MACHINES,
        config=RStoreConfig(stripe_size=1 * MiB),
        server_capacity=64 * GiB,
    )
    rsort = RSort(cluster, RECORDS_PER_WORKER, scale=scale, seed=2,
                  tag="e7r")
    r_stats = cluster.run_app(rsort.run())
    output = cluster.run_app(rsort.collect_output())
    assert is_sorted(output)
    assert len(output) == rsort.total_records

    tera = TeraSortBaseline(cluster, RECORDS_PER_WORKER, scale=scale,
                            seed=2, tag="e7t")
    t_stats = cluster.run_app(tera.run())
    assert is_sorted(tera.collect_output())
    return {
        "logical_gb": rsort.logical_bytes / 1e9,
        "rsort_s": r_stats.elapsed,
        "tera_s": t_stats.elapsed,
        "rsort_Bps": r_stats.throughput_Bps,
        "tera_Bps": t_stats.throughput_Bps,
    }


def test_e7_sort_256gb(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    ratio = r["tera_s"] / r["rsort_s"]
    print_table(
        f"E7: sorting {r['logical_gb']:.0f} GB on {MACHINES} machines "
        "(paper: RSort 31.7 s, 8x vs Hadoop TeraSort)",
        ["system", "time (s)", "throughput (GB/s)"],
        [
            ["RSort", f"{r['rsort_s']:.1f}", f"{r['rsort_Bps'] / 1e9:.2f}"],
            ["TeraSort-like", f"{r['tera_s']:.1f}",
             f"{r['tera_Bps'] / 1e9:.2f}"],
            ["ratio", f"{ratio:.1f}x", ""],
        ],
    )
    benchmark.extra_info.update(r | {"ratio": ratio})
    # RSort lands in the paper's neighbourhood of 31.7 s (our sort CPU
    # model runs somewhat hot; see EXPERIMENTS.md)...
    assert 15 < r["rsort_s"] < 45
    # ...and the margin over the disk pipeline brackets the paper's 8x
    assert 6 < ratio < 16
