"""E9 — Ablating the separation philosophy.

What exactly does keeping setup off the data path buy?  Three designs
run the same workload (random 4 KiB reads plus a 16 MiB scan):

* **RStore** — metadata resolved and connections established at map
  time; pure one-sided data path.
* **resolve-per-IO** — every operation first asks the master where the
  bytes live (the design RStore's descriptor caching eliminates).
* **two-sided** — data moves through the server CPU with messaging
  (the design one-sided RDMA eliminates).
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB, us

from benchmarks.conftest import fmt_us, print_table

OPS = 100
OP_SIZE = 4 * KiB
SCAN_SIZE = 16 * MiB


def run_variant(name, **config_kwargs):
    cluster = build_cluster(
        num_machines=6,
        config=RStoreConfig(stripe_size=1 * MiB, **config_kwargs),
        server_capacity=128 * MiB,
    )
    sim = cluster.sim
    client = cluster.client(1)

    def app():
        yield from client.alloc("e9", SCAN_SIZE)
        mapping = yield from client.map("e9")
        local = yield from client.alloc_local(SCAN_SIZE)
        yield from mapping.read_into(local, local.addr, 0, OP_SIZE)  # warm

        t0 = sim.now
        for i in range(OPS):
            offset = (i * 37 * OP_SIZE) % (SCAN_SIZE - OP_SIZE)
            yield from mapping.read_into(local, local.addr, offset, OP_SIZE)
        small_lat = (sim.now - t0) / OPS

        t0 = sim.now
        yield from mapping.read_into(local, local.addr, 0, SCAN_SIZE)
        scan_s = sim.now - t0
        return small_lat, scan_s

    small_lat, scan_s = cluster.run_app(app())
    return [name, small_lat, scan_s, SCAN_SIZE * 8 / scan_s / 1e9]


def run_experiment():
    return [
        run_variant("RStore (separated)"),
        run_variant("resolve per IO", resolve_per_io=True),
        run_variant("two-sided data path", two_sided_data_path=True),
    ]


def run_replication_sweep():
    """Write cost vs replication factor (the availability extension)."""
    cluster = build_cluster(
        num_machines=6,
        config=RStoreConfig(stripe_size=1 * MiB),
        server_capacity=128 * MiB,
    )
    sim = cluster.sim
    client = cluster.client(1)
    rows = []

    def app():
        local = yield from client.alloc_local(SCAN_SIZE)
        for factor in (1, 2, 3):
            yield from client.alloc(f"rep{factor}", SCAN_SIZE,
                                    replication=factor)
            mapping = yield from client.map(f"rep{factor}")
            yield from mapping.write_from(local, local.addr, 0, 1024)  # warm
            t0 = sim.now
            yield from mapping.write_from(local, local.addr, 0, SCAN_SIZE)
            write_s = sim.now - t0
            t1 = sim.now
            yield from mapping.read_into(local, local.addr, 0, SCAN_SIZE)
            read_s = sim.now - t1
            rows.append([factor, write_s, read_s])

    cluster.run_app(app())
    return rows


def test_e9_separation_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E9: what separation buys (4 KiB random reads; 16 MiB scan)",
        ["design", "4KiB read (us)", "scan (ms)", "scan (Gb/s)"],
        [
            [name, fmt_us(lat), f"{scan * 1e3:.2f}", f"{gbps:.1f}"]
            for name, lat, scan, gbps in rows
        ],
    )
    benchmark.extra_info["rows"] = [
        {"design": n, "small_read_s": lat, "scan_s": s, "scan_gbps": g}
        for n, lat, s, g in rows
    ]
    rep_rows = run_replication_sweep()
    print_table(
        "E9b: replication extension — 16 MiB write/read vs copies",
        ["replication", "write (ms)", "read (ms)"],
        [
            [factor, f"{w * 1e3:.2f}", f"{r_ * 1e3:.2f}"]
            for factor, w, r_ in rep_rows
        ],
    )
    benchmark.extra_info["replication"] = [
        {"factor": f, "write_s": w, "read_s": r_} for f, w, r_ in rep_rows
    ]
    # writes scale with copy count; reads stay at single-copy cost
    assert rep_rows[1][1] > 1.6 * rep_rows[0][1]
    assert rep_rows[2][1] > 2.3 * rep_rows[0][1]
    assert rep_rows[2][2] < 1.5 * rep_rows[0][2]

    base_lat, per_io_lat, two_sided_lat = (r[1] for r in rows)
    base_scan, per_io_scan, two_sided_scan = (r[2] for r in rows)
    # resolving metadata per IO multiplies small-op latency
    assert per_io_lat > 2 * base_lat
    # pushing data through the server CPU hurts both latency and scans
    assert two_sided_lat > 1.5 * base_lat
    assert two_sided_scan > 2 * base_scan
    # the separated design keeps small reads in the us range
    assert base_lat < us(8)
