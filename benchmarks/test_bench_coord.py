"""E12 — Coordination primitives on one-sided atomics.

Anchors the coordination subsystem's pitch: after a one-time control
setup, locks, barriers and counters run at data-path latency with zero
master RPCs and zero server CPU.  Three panels:

* lock acquire/release latency, uncontended vs under a 4-way storm
  (backoff keeps contended handoff within a small multiple);
* sense-barrier latency vs party count (one FAA + sense-word polling —
  grows gently, stays microseconds, no master involvement);
* FAA counter throughput vs client count (NIC-serialized increments on
  one hot word — the ceiling every primitive shares).
"""

from repro.cluster import build_cluster
from repro.coord import AtomicCounter, RemoteLock, SenseBarrier
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB

from benchmarks.conftest import fmt_us, print_table

_MACHINES = 17  # host 0 for the master + up to 16 coordinating clients
_LOCK_ROUNDS = 40
_BARRIER_ROUNDS = 20
_FAA_OPS = 200


def build():
    return build_cluster(
        num_machines=_MACHINES,
        config=RStoreConfig(stripe_size=64 * KiB),
        server_capacity=16 * MiB,
    )


def lock_latency(cluster):
    """Mean acquire+release time, alone and under a 4-way storm."""
    sim = cluster.sim
    out = {}

    def setup():
        yield from RemoteLock.create(cluster.client(1), "bench")

    cluster.run_app(setup())

    def solo():
        lock = yield from RemoteLock.open(cluster.client(1), "bench")
        t0 = sim.now
        for _ in range(_LOCK_ROUNDS):
            yield from lock.acquire()
            yield from lock.release()
        out["uncontended_s"] = (sim.now - t0) / _LOCK_ROUNDS

    cluster.run_app(solo())

    def storm(host):
        lock = yield from RemoteLock.open(cluster.client(host), "bench")
        for _ in range(_LOCK_ROUNDS):
            yield from lock.acquire()
            yield sim.timeout(1e-6)  # a tiny critical section
            yield from lock.release()
        return lock

    def contended():
        t0 = sim.now
        procs = [cluster.spawn(storm(h)) for h in range(1, 5)]
        yield sim.all_of(procs)
        elapsed = sim.now - t0
        out["contended_s"] = elapsed / (4 * _LOCK_ROUNDS)
        out["contended_cas"] = sum(
            p.value.contended for p in procs
        )

    cluster.run_app(contended())
    return out


def barrier_latency(cluster, parties):
    """Mean per-round barrier cost with *parties* synchronized clients."""
    sim = cluster.sim
    tag = f"bench-{parties}"

    def setup():
        yield from SenseBarrier.create(
            cluster.client(1), tag, parties=parties
        )

    cluster.run_app(setup())
    out = {}

    def party(host):
        barrier = yield from SenseBarrier.open(
            cluster.client(host), tag, parties=parties
        )
        for _ in range(_BARRIER_ROUNDS):
            yield from barrier.wait()

    def app():
        t0 = sim.now
        procs = [
            cluster.spawn(party(1 + i)) for i in range(parties)
        ]
        yield sim.all_of(procs)
        out["per_round_s"] = (sim.now - t0) / _BARRIER_ROUNDS

    cluster.run_app(app())
    return out["per_round_s"]


def faa_throughput(cluster, clients):
    """Aggregate increments/s with *clients* hammering one counter."""
    sim = cluster.sim
    tag = f"faa-{clients}"

    def setup():
        yield from AtomicCounter.create(cluster.client(1), tag)

    cluster.run_app(setup())
    out = {}

    def hammer(host):
        counter = yield from AtomicCounter.open(cluster.client(host), tag)
        for _ in range(_FAA_OPS):
            yield from counter.increment()

    def app():
        t0 = sim.now
        procs = [cluster.spawn(hammer(1 + i)) for i in range(clients)]
        yield sim.all_of(procs)
        elapsed = sim.now - t0
        check = yield from AtomicCounter.open(cluster.client(1), tag)
        total = yield from check.read()
        assert total == clients * _FAA_OPS  # exact, even at full contention
        out["ops_per_s"] = clients * _FAA_OPS / elapsed

    cluster.run_app(app())
    return out["ops_per_s"]


def run_experiment():
    cluster = build()
    result = {
        "lock": lock_latency(cluster),
        "barrier_rows": [],
        "faa_rows": [],
    }
    for parties in (2, 4, 8, 16):
        result["barrier_rows"].append(
            [parties, barrier_latency(cluster, parties)]
        )
    for clients in (1, 2, 4, 8, 16):
        result["faa_rows"].append([clients, faa_throughput(cluster, clients)])
    return result


def test_e12_coordination(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lock = result["lock"]
    print_table(
        "E12a: remote lock acquire+release latency",
        ["mode", "per pair (us)"],
        [
            ["uncontended", fmt_us(lock["uncontended_s"])],
            ["4-way contended", fmt_us(lock["contended_s"])],
        ],
    )
    print(f"contended CAS losses: {lock['contended_cas']}")
    print_table(
        "E12b: sense-barrier latency vs parties",
        ["parties", "per round (us)"],
        [[p, fmt_us(s)] for p, s in result["barrier_rows"]],
    )
    print_table(
        "E12c: FAA counter throughput vs clients (one hot word)",
        ["clients", "kops/s"],
        [[c, f"{ops / 1e3:.0f}"] for c, ops in result["faa_rows"]],
    )
    benchmark.extra_info["lock"] = lock
    benchmark.extra_info["barrier_rows"] = [
        {"parties": p, "per_round_s": s} for p, s in result["barrier_rows"]
    ]
    benchmark.extra_info["faa_rows"] = [
        {"clients": c, "ops_per_s": ops} for c, ops in result["faa_rows"]
    ]
    # an uncontended acquire+release is two CAS round trips — data-path
    # latency, nowhere near control-path (tens of) microseconds
    assert lock["uncontended_s"] < 20e-6
    # backoff keeps the contended handoff within a small multiple
    assert lock["contended_s"] < 12 * lock["uncontended_s"]
    # barrier cost grows gently with parties and stays microseconds
    rounds = dict(result["barrier_rows"])
    assert rounds[16] < 8 * rounds[2]
    assert rounds[16] < 100e-6
    # each client is latency-bound, so throughput climbs with client
    # count — but the hot word serializes at the hosting NIC's engine,
    # so 16 clients land measurably below 16x one client
    ops = dict(result["faa_rows"])
    assert ops[16] > 2 * ops[1]
    assert ops[16] < 14 * ops[1]
