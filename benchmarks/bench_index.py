"""Aggregate every ``BENCH_*.json`` into one trajectory document.

Each benchmark that sweeps something interesting writes a
``BENCH_<name>.json`` next to itself (recovery, txn, ...).  This tool
folds all of them into ``BENCH_index.json`` — a single document a
re-anchor (or a human) can diff across revisions to see the perf
curve without hunting through individual files.

The index is a pure function of the input files: no timestamps, no
environment — two runs over the same results are byte-identical, so
a diff of the index is a diff of the *numbers*.

Run it directly (``python benchmarks/bench_index.py``) or let the CI
bench-smoke job refresh it after the benchmarks it runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["collect", "write_index", "main"]

INDEX_NAME = "BENCH_index.json"


def _headline(name: str, doc) -> dict:
    """A few at-a-glance numbers per benchmark, when recognizable."""
    rows = doc.get("rows") if isinstance(doc, dict) else None
    head: dict = {}
    if isinstance(rows, list) and rows:
        head["rows"] = len(rows)
        numeric: dict = {}
        for row in rows:
            if not isinstance(row, dict):
                continue
            for key, value in row.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    numeric.setdefault(key, []).append(value)
        for key, values in sorted(numeric.items()):
            head[f"max_{key}"] = max(values)
    return head


def collect(bench_dir: Path) -> dict:
    """Fold every ``BENCH_*.json`` under *bench_dir* into one document."""
    benchmarks: dict = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        if path.name == INDEX_NAME:
            continue
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            benchmarks[path.name] = {"error": str(exc)}
            continue
        benchmarks[path.name] = {
            "headline": _headline(path.name, doc),
            "document": doc,
        }
    return {
        "index": "perf trajectory: every BENCH_*.json in benchmarks/",
        "files": sorted(benchmarks),
        "benchmarks": benchmarks,
    }


def write_index(bench_dir: Path = None) -> Path:
    """Write (or refresh) ``BENCH_index.json``; returns its path."""
    bench_dir = bench_dir or Path(__file__).parent
    index_path = bench_dir / INDEX_NAME
    index_path.write_text(
        json.dumps(collect(bench_dir), indent=2, sort_keys=True) + "\n"
    )
    return index_path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="aggregate BENCH_*.json files into BENCH_index.json",
    )
    parser.add_argument(
        "--dir", type=Path, default=Path(__file__).parent,
        help="directory holding the BENCH_*.json files",
    )
    args = parser.parse_args(argv)
    path = write_index(args.dir)
    doc = json.loads(path.read_text())
    print(f"indexed {len(doc['files'])} benchmark file(s) -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
