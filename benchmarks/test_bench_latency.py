"""E2 — Data-path latency vs transfer size.

Anchors "close-to-hardware latency": RStore read/write latency tracks
raw verbs within a small constant, while the sockets store and the
two-sided ablation sit several times higher at small sizes.
"""

from repro.baselines import TcpMemoryClient, TcpMemoryServer
from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.rdma.types import Access, Opcode
from repro.rdma.wr import SendWR
from repro.simnet.config import KiB, MiB, us

from benchmarks.conftest import fmt_us, print_table

SIZES = [8, 64, 512, 4 * KiB, 32 * KiB, 256 * KiB, 1 * MiB]
REPS = 5


def build():
    return build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=4 * MiB),
        server_capacity=64 * MiB,
    )


def timed_loop(sim, op_factory):
    """Average simulated latency of REPS sequential ops (generator).

    One untimed warm-up op absorbs lazy first-touch costs (connection
    establishment in the two-sided mode, cache fills) so the number is
    steady-state latency, matching how such plots are measured.
    """
    yield from op_factory()
    t0 = sim.now
    for _ in range(REPS):
        yield from op_factory()
    return (sim.now - t0) / REPS


def raw_verbs_read(cluster, size):
    """One-sided READ straight on the verbs layer (no store above it)."""
    sim = cluster.sim
    nic_c, nic_s = cluster.nic(1), cluster.nic(2)

    def scenario():
        spd = yield from nic_s.alloc_pd()
        scq = yield from nic_s.create_cq()
        smr = yield from nic_s.reg_mr(spd, length=2 * MiB,
                                      access=Access.all_remote())
        cluster.cm.listen(nic_s, f"raw-{size}", spd, scq)
        cpd = yield from nic_c.alloc_pd()
        ccq = yield from nic_c.create_cq()
        cmr = yield from nic_c.reg_mr(cpd, length=2 * MiB)
        qp = yield from cluster.cm.connect(nic_c, 2, f"raw-{size}", cpd, ccq)

        def one_read():
            qp.post_send(SendWR(
                opcode=Opcode.RDMA_READ, local_mr=cmr, local_addr=cmr.addr,
                length=size, remote_addr=smr.addr, rkey=smr.rkey,
            ))
            yield from ccq.wait_for(1)

        return (yield from timed_loop(sim, one_read))

    return cluster.run_app(scenario())


def rstore_latency(cluster, size, write=False):
    sim = cluster.sim
    client = cluster.client(1)

    def scenario():
        name = f"e2-{'w' if write else 'r'}-{size}"
        yield from client.alloc(name, 2 * MiB, preferred_host=2)
        mapping = yield from client.map(name)
        local = yield from client.alloc_local(2 * MiB)

        def one_op():
            if write:
                yield from mapping.write_from(local, local.addr, 0, size)
            else:
                yield from mapping.read_into(local, local.addr, 0, size)

        return (yield from timed_loop(sim, one_op))

    return cluster.run_app(scenario())


def tcp_latency(cluster, server, size):
    sim = cluster.sim

    def scenario():
        client = yield from TcpMemoryClient(cluster, 1).connect(server)

        def one_op():
            yield from client.read(0, size)

        return (yield from timed_loop(sim, one_op))

    return cluster.run_app(scenario())


def two_sided_latency(size):
    cluster = build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=4 * MiB, two_sided_data_path=True),
        server_capacity=64 * MiB,
    )
    return rstore_latency(cluster, size)


def run_experiment():
    cluster = build()
    tcp_server = TcpMemoryServer(cluster, host_id=2, size=2 * MiB)
    rows = []
    for size in SIZES:
        rows.append([
            size,
            raw_verbs_read(cluster, size),
            rstore_latency(cluster, size, write=False),
            rstore_latency(cluster, size, write=True),
            two_sided_latency(size),
            tcp_latency(cluster, tcp_server, size),
        ])
    return rows


def test_e2_data_path_latency(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "E2: data-path latency vs transfer size",
        ["size (B)", "raw verbs (us)", "RStore rd (us)", "RStore wr (us)",
         "2-sided (us)", "sockets (us)"],
        [
            [s, fmt_us(raw), fmt_us(rd), fmt_us(wr), fmt_us(ts), fmt_us(tcp)]
            for s, raw, rd, wr, ts, tcp in rows
        ],
    )
    benchmark.extra_info["rows"] = [
        {"size": s, "raw_s": raw, "rstore_read_s": rd, "rstore_write_s": wr,
         "two_sided_s": ts, "sockets_s": tcp}
        for s, raw, rd, wr, ts, tcp in rows
    ]
    for size, raw, rd, _wr, two_sided, tcp in rows:
        # RStore tracks raw verbs closely (the "close-to-hardware" claim)
        assert raw <= rd < raw + us(1.0)
        # two-sided and sockets pay progressively more at small sizes
        if size <= 4 * KiB:
            assert two_sided > 1.5 * rd
            assert tcp > 3 * rd
    # small reads land in the ~2-4 us "close to hardware" window
    assert us(1.5) < rows[0][2] < us(4.5)
