#!/usr/bin/env python
"""Multi-key bank transfers that survive a mid-commit master crash.

Three clients move money between 16 shared accounts through the OCC
transaction runtime (:mod:`repro.txn`) while the fault schedule does
its worst: the master crashes in the middle of the run and a flaky
wire drops completions under client 2.  Transactions are pure
data-plane — snapshot, validate, lock, publish are all one-sided
reads and CASes against server DRAM — so committed transfers keep
flowing straight through the control-plane outage, and every abort
rolls back completely.  At the end the ledger still sums to exactly
what it opened with: money moved, none was minted or burned.

Run:  python examples/bank_transfer.py
"""

import random

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.kv import RKVStore
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

ACCOUNTS = 16
OPENING = 1000
TRANSFERS_PER_CLIENT = 20
CLIENT_HOSTS = (1, 2, 3)
CRASH_AT = 0.20     # seconds after boot: mid-workload
OUTAGE = 0.10       # master down-time


def main():
    faults = FaultInjector(seed=7)
    faults.crash_master(at=CRASH_AT, restart_after=OUTAGE)
    faults.fail_wire(2, start=0.05, duration=0.05, probability=1.0,
                     times=1)
    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(
            stripe_size=8 * KiB,
            control_deadline_s=0.3,
            recovery_grace_s=0.2,
        ),
        server_capacity=32 * MiB,
        faults=faults,
    )
    sim = cluster.sim
    keys = [f"acct-{i:02d}".encode() for i in range(ACCOUNTS)]

    def stamp(message):
        print(f"[{sim.now * 1e3:8.2f} ms] {message}")

    def worker(host):
        rng = random.Random(host * 97)
        view = yield from RKVStore.open(cluster.client(host), "ledger")
        runtime = view.txn(label=f"bank-{host}", retries=500)
        crossed_outage = False
        for _ in range(TRANSFERS_PER_CLIENT):
            src, dst = rng.sample(keys, 2)
            amount = rng.randint(1, 50)

            def transfer(txn, src=src, dst=dst, amount=amount):
                a = int((yield from txn.get(view, src)))
                b = int((yield from txn.get(view, dst)))
                yield from txn.put(view, src, str(a - amount).encode())
                yield from txn.put(view, dst, str(b + amount).encode())

            yield from runtime.run(transfer)
            if not cluster.master.alive and not crossed_outage:
                crossed_outage = True
                stamp(f"client {host} committed transfer #"
                      f"{runtime.commits} while the master was DOWN")
            yield sim.timeout(rng.uniform(0.005, 0.02))
        return runtime

    def app():
        store = yield from RKVStore.create(cluster.client(0), "ledger",
                                           slots=64)
        for key in keys:
            yield from store.put(key, str(OPENING).encode())
        stamp(f"ledger opened: {ACCOUNTS} accounts x {OPENING}")

        procs = [cluster.spawn(worker(host)) for host in CLIENT_HOSTS]
        yield sim.all_of(procs)
        runtimes = [p.value for p in procs]
        stamp(f"all {len(procs)} clients done "
              f"(master alive again: {cluster.master.alive})")

        balances = []
        for key in keys:
            balances.append(int((yield from store.get(key))))
        return balances, runtimes

    balances, runtimes = cluster.run_app(app())

    commits = sum(rt.commits for rt in runtimes)
    aborts = sum(rt.aborts for rt in runtimes)
    assert commits == len(CLIENT_HOSTS) * TRANSFERS_PER_CLIENT
    assert faults.injected["master_crashes"] == 1
    assert faults.injected["wire"] >= 1
    print(f"fault schedule: {faults.injected['master_crashes']} master "
          f"crash, {faults.injected['wire']} wire fault(s) — all ridden "
          f"out")
    print(f"transactions: {commits} committed, {aborts} aborted & "
          f"retried (conflicts + faults)")

    total = sum(balances)
    moved = sum(abs(b - OPENING) for b in balances) // 2
    assert total == ACCOUNTS * OPENING, (
        f"ledger leaked: {total} != {ACCOUNTS * OPENING}"
    )
    print(f"ledger total: {total} == {ACCOUNTS} x {OPENING} — "
          f"balance conserved ({moved} moved between accounts)")


if __name__ == "__main__":
    main()
