#!/usr/bin/env python
"""PageRank over a social-network-shaped graph, two ways.

Reproduces the paper's graph-processing scenario at laptop scale: an
RMAT power-law graph is loaded into RStore, the RStore-backed BSP
engine computes PageRank with one-sided gathers, and the same vertex
program is re-run on the message-passing baseline for comparison.

Run:  python examples/pagerank_social_graph.py
"""

import numpy as np

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.graph import (
    MessagePassingEngine,
    PageRankProgram,
    RStoreGraphEngine,
)
from repro.graph.loader import Graph
from repro.simnet.config import KiB, MiB
from repro.workloads.graphs import rmat_edges

SCALE = 15  # 32k vertices
EDGE_FACTOR = 16
MACHINES = 8
ITERATIONS = 10


def main():
    print(f"generating RMAT graph: 2^{SCALE} vertices, "
          f"{EDGE_FACTOR << SCALE} edges")
    src, dst = rmat_edges(scale=SCALE, edge_factor=EDGE_FACTOR, seed=7)
    graph = Graph.from_edges(1 << SCALE, src, dst)

    cluster = build_cluster(
        num_machines=MACHINES,
        config=RStoreConfig(stripe_size=512 * KiB),
        server_capacity=512 * MiB,
    )
    program = PageRankProgram(damping=0.85, iterations=ITERATIONS)

    rstore = RStoreGraphEngine(cluster, graph, tag="pr")
    r_stats = cluster.run_app(rstore.run(program))
    print(f"\nRStore engine : {r_stats.elapsed * 1e3:8.2f} ms "
          f"({ITERATIONS} iterations, "
          f"{r_stats.elapsed / ITERATIONS * 1e3:.2f} ms/iter; "
          f"setup {r_stats.setup_elapsed * 1e3:.2f} ms, "
          f"load {rstore.load_elapsed * 1e3:.2f} ms)")

    baseline = MessagePassingEngine(cluster, graph, tag="mp")
    m_stats = cluster.run_app(baseline.run(program))
    print(f"baseline      : {m_stats.elapsed * 1e3:8.2f} ms "
          f"({m_stats.elapsed / ITERATIONS * 1e3:.2f} ms/iter)")
    print(f"speedup       : {m_stats.elapsed / r_stats.elapsed:8.2f}x "
          f"(paper reports 2.6-4.2x at testbed scale)")

    assert np.allclose(r_stats.values, m_stats.values), "engines disagree!"
    top = np.argsort(r_stats.values)[::-1][:5]
    print("\ntop-5 vertices by rank:")
    for v in top:
        print(f"  vertex {v:6d}  rank {r_stats.values[v]:.6f}  "
              f"in-degree {graph.indptr[v + 1] - graph.indptr[v]}")


if __name__ == "__main__":
    main()
