#!/usr/bin/env python
"""Distributed key-value sort: RSort vs a Hadoop-TeraSort pipeline.

Reproduces the paper's sorting scenario: records live in distributed
DRAM, the shuffle is one-sided (remote fetch-and-add reserves space,
RDMA writes land the records), and the comparison baseline pays the
full map-reduce disk pipeline.  ``SCALE`` makes each real record stand
for many logical ones, so the simulated byte counts reach TeraSort
territory while the laptop only materializes a few MB.

Run:  python examples/distributed_sort.py
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import GiB, MiB
from repro.sort import RSort, TeraSortBaseline
from repro.workloads.kv import is_sorted

MACHINES = 8
RECORDS_PER_WORKER = 20_000
SCALE = 800  # each record stands for 800: ~12.8 GB logical


def main():
    cluster = build_cluster(
        num_machines=MACHINES,
        config=RStoreConfig(stripe_size=1 * MiB),
        server_capacity=4 * GiB,
    )

    rsort = RSort(cluster, RECORDS_PER_WORKER, scale=SCALE, seed=1,
                  tag="demo")
    logical_gb = rsort.logical_bytes / GiB
    print(f"sorting {logical_gb:.1f} GB (logical) across {MACHINES} machines")

    r_stats = cluster.run_app(rsort.run())
    output = cluster.run_app(rsort.collect_output())
    assert is_sorted(output), "output not sorted!"
    print(f"\nRSort         : {r_stats.elapsed:8.2f} s  "
          f"({r_stats.throughput_Bps / 1e9:.2f} GB/s aggregate)")

    tera = TeraSortBaseline(cluster, RECORDS_PER_WORKER, scale=SCALE,
                            seed=1, tag="demo-t")
    t_stats = cluster.run_app(tera.run())
    assert is_sorted(tera.collect_output())
    print(f"TeraSort-like : {t_stats.elapsed:8.2f} s  "
          f"({t_stats.throughput_Bps / 1e9:.2f} GB/s aggregate)")
    print(f"speedup       : {t_stats.elapsed / r_stats.elapsed:8.2f}x "
          f"(paper reports 8x at 256 GB on 12 machines)")


if __name__ == "__main__":
    main()
