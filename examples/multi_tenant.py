#!/usr/bin/env python
"""Multi-tenant isolation: quotas, shards, and the metadata cache.

Two tenants — ``acme`` and ``globex`` — share a cluster whose control
plane is partitioned into two metadata shards.  ``acme`` is capped at
8 MiB of logical bytes; ``globex`` is unlimited.  The script lets acme
allocate until it slams into its quota, then shows globex allocating
straight through, untouched — and finishes by demonstrating that a
re-``map`` under a live metadata lease costs zero master RPCs.

Run:  python examples/multi_tenant.py
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.errors import TenantQuotaExceededError
from repro.simnet.config import KiB, MiB


def main():
    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(
            stripe_size=256 * KiB,
            control_shards=2,
            tenant_quota_bytes={"acme": 8 * MiB},
        ),
        server_capacity=256 * MiB,
    )
    client = cluster.client(1)

    def app():
        # ---- acme fills its budget ----------------------------------
        granted = 0
        denied = None
        for index in range(32):
            name = f"acme/dataset-{index}"
            try:
                yield from client.alloc(name, 1 * MiB)
            except TenantQuotaExceededError as exc:
                denied = exc
                print(f"acme   : denied at allocation {index}: {exc}")
                break
            granted += 1
        print(f"acme   : {granted} MiB granted before the quota bit")
        assert denied is not None, "acme never hit its quota"

        # ---- globex sails through -----------------------------------
        for index in range(12):
            yield from client.alloc(f"globex/dataset-{index}", 1 * MiB)
        print("globex : 12 MiB granted — unaffected by acme's quota")

        # ---- the cache: map twice, pay the master once --------------
        mapping = yield from client.map("globex/dataset-0")
        yield from mapping.write(0, b"tenant isolation, demonstrated")
        before = client.master_calls
        mapping = yield from client.map("globex/dataset-0")
        data = yield from mapping.read(0, 30)
        print(f"cache  : re-map cost {client.master_calls - before} "
              f"master RPCs -> {data!r}")
        print(f"cache  : {client.metadata_cache_hits} hits, "
              f"{client.metadata_cache_misses} misses so far")

    cluster.run_app(app())

    # the per-shard ledgers agree with what each tenant holds
    for shard, master in enumerate(cluster.masters):
        for tenant in sorted(master.tenant_bytes):
            held = master.tenant_bytes[tenant]
            print(f"ledger : shard {shard} holds "
                  f"{held / MiB:.1f} MiB for {tenant!r}")


if __name__ == "__main__":
    main()
