#!/usr/bin/env python
"""Producer/consumer coordination over shared distributed memory.

Shows the synchronization side of the API: a producer streams chunks
into a shared region and publishes a watermark with remote atomics; a
consumer on another machine polls the watermark with one-sided reads
and drains data as it appears — no server code anywhere, the classic
RStore pattern of using DRAM + atomics as the coordination fabric.

Run:  python examples/producer_consumer_notify.py
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB

CHUNK = 32 * KiB
CHUNKS = 16
HEADER = 8  # the watermark counter lives at offset 0


def main():
    cluster = build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=256 * KiB),
        server_capacity=64 * MiB,
    )
    sim = cluster.sim
    producer_client = cluster.client(1)
    consumer_client = cluster.client(2)

    def producer():
        region = yield from producer_client.alloc(
            "stream", HEADER + CHUNKS * CHUNK
        )
        mapping = yield from producer_client.map(region)
        yield from producer_client.notify("stream-ready")
        for i in range(CHUNKS):
            payload = bytes([i % 256]) * CHUNK
            yield from mapping.write(HEADER + i * CHUNK, payload)
            # bump the watermark so the consumer sees chunk i
            yield from mapping.faa(0, 1)
            yield sim.timeout(50e-6)  # production cadence
        print(f"[{sim.now * 1e3:7.3f} ms] producer: all {CHUNKS} chunks out")

    def consumer():
        yield from consumer_client.wait_note("stream-ready")
        mapping = yield from consumer_client.map("stream")
        consumed = 0
        while consumed < CHUNKS:
            raw = yield from mapping.read(0, 8)
            available = int.from_bytes(raw, "little")
            while consumed < available:
                chunk = yield from mapping.read(
                    HEADER + consumed * CHUNK, CHUNK
                )
                assert chunk == bytes([consumed % 256]) * CHUNK
                print(f"[{sim.now * 1e3:7.3f} ms] consumer: chunk "
                      f"{consumed} verified")
                consumed += 1
            if consumed < CHUNKS:
                yield sim.timeout(20e-6)  # poll interval
        print(f"[{sim.now * 1e3:7.3f} ms] consumer: stream complete")

    def app():
        p = cluster.spawn(producer(), name="producer")
        c = cluster.spawn(consumer(), name="consumer")
        yield sim.all_of([p, c])

    cluster.run_app(app())


if __name__ == "__main__":
    main()
