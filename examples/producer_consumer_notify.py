#!/usr/bin/env python
"""Producer/consumer coordination over shared distributed memory.

Shows the synchronization side of the API, upgraded to the
coordination subsystem: a producer streams chunks through a
``DoorbellQueue`` — an MPSC ring living in a mapped region, with
FAA-reserved slots, version-word publish, and a doorbell counter — and
a consumer on another machine drains it.  No server code anywhere: the
NIC is the queue.  When idle, the consumer polls a single 8-byte
doorbell word instead of scanning the data region (the old watermark
pattern this example used to hand-roll).

Run:  python examples/producer_consumer_notify.py
"""

from repro.cluster import build_cluster
from repro.coord import DoorbellQueue
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB

CHUNK = 32 * KiB
CHUNKS = 16
RING_SLOTS = 4  # bounded: the ring wraps 4 times over the run


def main():
    cluster = build_cluster(
        num_machines=3,
        config=RStoreConfig(stripe_size=256 * KiB),
        server_capacity=64 * MiB,
    )
    sim = cluster.sim
    producer_client = cluster.client(1)
    consumer_client = cluster.client(2)

    def producer():
        # setup (control path, once): alloc + map the ring region
        queue = yield from DoorbellQueue.create(
            producer_client, "stream", capacity=RING_SLOTS,
            slot_payload=CHUNK, preferred_host=2,
        )
        yield from producer_client.notify("stream-ready")
        for i in range(CHUNKS):
            payload = bytes([i % 256]) * CHUNK
            # data path: FAA-reserve a slot, RDMA-write the chunk,
            # publish the slot's sequence word, ring the doorbell
            yield from queue.send(payload)
            yield sim.timeout(50e-6)  # production cadence
        print(f"[{sim.now * 1e3:7.3f} ms] producer: all {CHUNKS} chunks "
              f"out ({queue.stalls} ring-full stalls)")

    def consumer():
        yield from consumer_client.wait_note("stream-ready")
        queue = yield from DoorbellQueue.open(
            consumer_client, "stream", capacity=RING_SLOTS,
            slot_payload=CHUNK,
        )
        for i in range(CHUNKS):
            chunk = yield from queue.recv()
            assert chunk == bytes([i % 256]) * CHUNK
            print(f"[{sim.now * 1e3:7.3f} ms] consumer: chunk "
                  f"{i} verified")
        print(f"[{sim.now * 1e3:7.3f} ms] consumer: stream complete "
              f"({queue.polls} idle doorbell polls)")

    def app():
        p = cluster.spawn(producer(), name="producer")
        c = cluster.spawn(consumer(), name="consumer")
        yield sim.all_of([p, c])

    cluster.run_app(app())


if __name__ == "__main__":
    main()
