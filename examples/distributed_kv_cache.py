#!/usr/bin/env python
"""A serverless distributed KV cache on the memory-like API.

The hash table lives entirely in RStore regions: gets are optimistic
one-sided reads, puts lock slots with remote compare-and-swap.  No
machine runs any cache server code — the memory servers' CPUs stay
idle while four clients hammer the shared table.  A memcached-style
sockets server handles the same workload for comparison.

Run:  python examples/distributed_kv_cache.py
"""

from repro.baselines import TcpKvClient, TcpKvServer
from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.kv import RKVStore
from repro.simnet.config import KiB, MiB

MACHINES = 5
OPS_PER_CLIENT = 100


def main():
    cluster = build_cluster(
        num_machines=MACHINES,
        config=RStoreConfig(stripe_size=256 * KiB),
        server_capacity=64 * MiB,
    )
    sim = cluster.sim

    def rstore_worker(host, table_name, done):
        view = yield from RKVStore.open(cluster.client(host), table_name)
        for i in range(OPS_PER_CLIENT):
            key = f"h{host}-{i % 20}".encode()
            if i % 4 == 0:
                yield from view.put(key, f"value-{i}".encode())
            else:
                yield from view.get(key)
        done.append(host)

    def run_rstore():
        creator = cluster.client(1)
        store = yield from RKVStore.create(creator, "cache", slots=1024)
        yield from store.put(b"warm", b"up")
        done = []
        t0 = sim.now
        procs = [
            sim.process(rstore_worker(h, "cache", done))
            for h in (1, 2, 3, 4)
        ]
        yield sim.all_of(procs)
        return 4 * OPS_PER_CLIENT / (sim.now - t0)

    def tcp_worker(client, done):
        for i in range(OPS_PER_CLIENT):
            key = f"c{client.host_id}-{i % 20}".encode()
            if i % 4 == 0:
                yield from client.put(key, f"value-{i}".encode())
            else:
                yield from client.get(key)
        done.append(client.host_id)

    def run_tcp():
        server = TcpKvServer(cluster, host_id=0)
        clients = []
        for host in (1, 2, 3, 4):
            clients.append(
                (yield from TcpKvClient(cluster, host).connect(server))
            )
        done = []
        t0 = sim.now
        procs = [sim.process(tcp_worker(c, done)) for c in clients]
        yield sim.all_of(procs)
        return 4 * OPS_PER_CLIENT / (sim.now - t0)

    rstore_ops = cluster.run_app(run_rstore())
    idle = all(
        cluster.net.host(h).cpu.busy_seconds < 1e-2
        for h in range(MACHINES)
        if h != 1
    )
    tcp_ops = cluster.run_app(run_tcp())

    print(f"RStore KV (one-sided) : {rstore_ops / 1e3:7.1f} kops/s "
          f"(server CPUs idle: {idle})")
    print(f"sockets KV (memcached): {tcp_ops / 1e3:7.1f} kops/s "
          "(every op crosses the server CPU)")
    print(f"speedup               : {rstore_ops / tcp_ops:7.2f}x")


if __name__ == "__main__":
    main()
