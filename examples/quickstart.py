#!/usr/bin/env python
"""Quickstart: the memory-like API in five minutes.

Builds a 4-machine simulated cluster, allocates a named region of
distributed DRAM, maps it, and runs one-sided reads/writes/atomics —
then prints where the region's stripes landed and what each step cost
in *simulated* time.

Run:  python examples/quickstart.py
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.simnet.config import KiB, MiB


def main():
    cluster = build_cluster(
        num_machines=4,
        config=RStoreConfig(stripe_size=1 * MiB),
        server_capacity=256 * MiB,
    )
    client = cluster.client(1)
    sim = cluster.sim

    def app():
        # ---- control path: pay once ---------------------------------
        t0 = sim.now
        region = yield from client.alloc("greeting", 4 * MiB)
        t_alloc = sim.now - t0
        print(f"alloc  : {t_alloc * 1e6:8.1f} us  "
              f"({len(region.stripes)} stripes on servers {region.hosts})")

        t0 = sim.now
        mapping = yield from client.map(region)
        t_map = sim.now - t0
        print(f"map    : {t_map * 1e6:8.1f} us  (connections + caching)")

        # ---- data path: one-sided RDMA, microseconds ----------------
        t0 = sim.now
        yield from mapping.write(0, b"hello, distributed DRAM!")
        t_write = sim.now - t0
        print(f"write  : {t_write * 1e6:8.1f} us")

        t0 = sim.now
        data = yield from mapping.read(0, 24)
        t_read = sim.now - t0
        print(f"read   : {t_read * 1e6:8.1f} us  -> {data!r}")

        # remote atomics on an 8-byte counter at offset 1 MiB
        old = yield from mapping.faa(1 * MiB, 7)
        old2 = yield from mapping.faa(1 * MiB, 5)
        print(f"atomics: fetch-and-add returned {old}, then {old2}")

        # a second client maps the same region by name and sees the data
        other = cluster.client(3)
        their_mapping = yield from other.map("greeting")
        their_view = yield from their_mapping.read(0, 24)
        print(f"shared : client 3 reads {their_view!r}")

        yield from client.free("greeting")
        print("freed  : region released cluster-wide")

    cluster.run_app(app())
    print(f"\nsimulated time elapsed: {sim.now:.6f} s")


if __name__ == "__main__":
    main()
