#!/usr/bin/env python
"""Riding through a master crash — WAL replay, epoch fencing, retry.

A client writes a dataset, the master is killed mid-workload, and a
scheduled restart replays the metadata write-ahead log: every region
committed before the crash survives, allocations attempted during the
outage fail fast with a typed error (never silently hang), and the
recovered master comes back with a **bumped cluster epoch** so any
stale-epoch straggler is fenced instead of corrupting state.  The
printed timeline shows each phase as the cluster lived it.

Run:  python examples/master_failover.py
"""

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.core.errors import (
    DeadlineExceededError,
    MasterUnavailableError,
    StaleEpochError,
)
from repro.simnet.config import KiB, MiB
from repro.simnet.faults import FaultInjector

CRASH_AT = 0.10     # seconds after boot
OUTAGE = 0.08       # master down-time
PAYLOAD = b"metadata must survive the master"


def main():
    faults = FaultInjector(seed=11)
    faults.crash_master(at=CRASH_AT, restart_after=OUTAGE)
    cluster = build_cluster(
        num_machines=5,
        config=RStoreConfig(
            stripe_size=64 * KiB,
            control_deadline_s=0.05,   # tighter than the outage: the
            recovery_grace_s=0.1,      # mid-crash alloc MUST fail fast
        ),
        server_capacity=64 * MiB,
        faults=faults,
    )
    sim = cluster.sim
    client = cluster.client(1)

    def stamp(message):
        print(f"[{sim.now * 1e3:8.2f} ms] {message}")

    def app():
        # -- before the crash: commit a region ---------------------------
        yield from client.alloc("ledger", 256 * KiB, replication=2)
        mapping = yield from client.map("ledger")
        yield from mapping.write(0, PAYLOAD)
        stamp(f"'ledger' committed (WAL appends so far: "
              f"{cluster.metalog.appends})")

        # -- during the outage: allocations fail fast --------------------
        t_crash = cluster.boot_time + CRASH_AT
        yield sim.timeout(max(0.0, t_crash - sim.now) + 0.005)
        stamp(f"master alive: {cluster.master.alive} — trying to alloc "
              f"through the outage")
        try:
            yield from client.alloc("doomed", 64 * KiB)
            raise AssertionError("alloc should not survive the outage")
        except (MasterUnavailableError, DeadlineExceededError) as exc:
            stamp(f"alloc failed fast: {type(exc).__name__}: {exc}")

        # -- after the restart: replay + epoch bump ----------------------
        while True:
            try:
                stats = yield from client._master_call("cluster_stats")
                if not stats["recovering"]:
                    break
            except (MasterUnavailableError, DeadlineExceededError,
                    StaleEpochError):
                pass
            yield sim.timeout(0.01)
        stamp(f"master recovered: epoch {stats['epoch']}, "
              f"{stats['regions']} region(s) replayed from the WAL, "
              f"{stats['alive_servers']} servers re-registered")

        # the pre-crash mapping still works: a fenced op refreshes the
        # client's metadata once and replays, invisibly to the caller
        data = yield from mapping.read(0, len(PAYLOAD))
        assert data == PAYLOAD
        stamp(f"pre-crash mapping reads back intact -> {data[:17]!r}...")

        region = yield from client.alloc("after", 64 * KiB)
        stamp(f"post-recovery alloc works: 'after' "
              f"(region id {region.region_id}, epoch {region.epoch})")
        return stats

    stats = cluster.run_app(app())
    print(f"client retry budget spent: "
          f"{client.master_redials} redial(s), "
          f"{client.retries_fenced} fenced refresh(es)")
    assert stats["epoch"] >= 1
    print("master failover survived: no committed region lost")


if __name__ == "__main__":
    main()
