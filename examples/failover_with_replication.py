#!/usr/bin/env python
"""Surviving a memory-server crash — and healing from it.

Two regions hold the same dataset — one single-copy (the paper's
volatile store) and one with replication=2 (this reproduction's
availability extension).  A memory server is then killed.  The master's
lease checker detects the failure, promotes surviving replicas, and the
replicated region keeps serving reads while the single-copy one is
gone.  The background repair planner then re-replicates the degraded
stripes onto live servers, so the durable region ends the run back at
two copies of every stripe — the printed repair timeline shows each
step as the master took it.

Run:  python examples/failover_with_replication.py
"""

from repro.cluster import build_cluster
from repro.core import RegionUnavailableError, RStoreConfig
from repro.simnet.config import KiB, MiB

MACHINES = 5


def main():
    cluster = build_cluster(
        num_machines=MACHINES,
        config=RStoreConfig(
            stripe_size=64 * KiB,
            heartbeat_interval_s=0.05,
            lease_timeout_s=0.2,
        ),
        server_capacity=64 * MiB,
    )
    sim = cluster.sim
    client = cluster.client(1)
    payload = b"the dataset we cannot afford to lose"

    def setup():
        for name, replication in (("fragile", 1), ("durable", 2)):
            yield from client.alloc(name, 256 * KiB, replication=replication)
            mapping = yield from client.map(name)
            yield from mapping.write(0, payload)
        fragile = yield from client.lookup("fragile")
        return fragile

    fragile = cluster.run_app(setup())
    # kill a server that hosts part of the single-copy region (and is
    # neither the master's machine nor one of our client machines)
    victim = next(h for h in fragile.hosts if h not in (0, 1, 2))
    print(f"[{sim.now * 1e3:8.2f} ms] both regions written; "
          f"killing memory server {victim}")
    cluster.kill_server(victim)
    cluster.run(until=sim.now + 0.5)
    print(f"[{sim.now * 1e3:8.2f} ms] lease expired; master state:")
    for name in ("fragile", "durable"):
        region = cluster.master.regions[name]
        status = "AVAILABLE" if region.available else (
            f"UNAVAILABLE ({region.unavailable_reason})"
        )
        copies = min(s.replication for s in region.stripes)
        print(f"    {name:8s} v{region.version}  {status}  "
              f"(min copies per stripe: {copies})")

    print("repair timeline (from the master's planner):")
    for when, message in cluster.master.repair.log:
        print(f"    [{when * 1e3:8.2f} ms] {message}")
    durable = cluster.master.regions["durable"]
    healed = all(
        s.replication == durable.target_replication for s in durable.stripes
    )
    print(f"    durable healed back to replication="
          f"{durable.target_replication}: {healed}")

    def read_back():
        reader = cluster.client(2)
        try:
            mapping = yield from reader.map("fragile")
            yield from mapping.read(0, len(payload))
            raise AssertionError("fragile region should be unavailable")
        except RegionUnavailableError as exc:
            print(f"    fragile : lost, as expected ({exc})")
        mapping = yield from reader.map("durable")
        data = yield from mapping.read(0, len(payload))
        assert data == payload
        print(f"    durable : intact -> {data[:23]!r}...")

    cluster.run_app(read_back())


if __name__ == "__main__":
    main()
