"""A sockets-based in-memory store: the pre-RDMA design point.

One server host exposes a byte-addressable buffer over TCP RPC; every
read and write is a request/response pair through the kernel stack and
the server's CPU.  Functionally equivalent to an RStore region mapped
by one client — the benchmarks run the same access patterns against
both and the difference is pure substrate.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.builder import Cluster
from repro.rpc.endpoint import TcpRpcClient, TcpRpcServer
from repro.simnet.config import MiB

__all__ = ["TcpMemoryServer", "TcpMemoryClient", "TcpKvServer",
           "TcpKvClient"]

_PORT = 7900


class TcpMemoryServer:
    """Serves read/write on a host-local buffer over sockets."""

    def __init__(self, cluster: Cluster, host_id: int, size: int = 64 * MiB,
                 port: int = _PORT):
        self.cluster = cluster
        self.host_id = host_id
        self.port = port
        self.buffer = bytearray(size)
        self._cpu = cluster.net.host(host_id).cpu
        self._rpc = TcpRpcServer(
            cluster.sim, cluster.tcp_stacks[host_id], port
        )
        self._rpc.register("read", self._read)
        self._rpc.register("write", self._write)
        self._rpc.start()

    def _read(self, offset, length):
        if offset < 0 or offset + length > len(self.buffer):
            raise ValueError("read out of bounds")
        yield from self._cpu.copy(length)
        return bytes(self.buffer[offset : offset + length])

    def _write(self, offset, payload):
        if offset < 0 or offset + len(payload) > len(self.buffer):
            raise ValueError("write out of bounds")
        yield from self._cpu.copy(len(payload))
        self.buffer[offset : offset + len(payload)] = payload
        return len(payload)


class TcpMemoryClient:
    """Client for :class:`TcpMemoryServer` with the Mapping-ish API."""

    def __init__(self, cluster: Cluster, host_id: int):
        self.cluster = cluster
        self.host_id = host_id
        self._rpc: Optional[TcpRpcClient] = None

    def connect(self, server: TcpMemoryServer):
        """Open the connection (generator)."""
        self._rpc = TcpRpcClient(
            self.cluster.sim, self.cluster.tcp_stacks[self.host_id]
        )
        yield from self._rpc.connect(
            self.cluster.tcp_stacks[server.host_id], server.port
        )
        return self

    def read(self, offset: int, length: int):
        """Read bytes (generator); response size carries the payload."""
        data = yield from self._rpc.call("read", offset, length)
        return data

    def write(self, offset: int, payload: bytes):
        """Write bytes (generator)."""
        count = yield from self._rpc.call("write", offset, payload)
        return count


class TcpKvServer:
    """A memcached-style KV service over sockets (dict on the server).

    Comparator for the one-sided hash table (:mod:`repro.kv`): every
    get/put is a request/response through the server's kernel stack and
    CPU, the design point RDMA stores displaced.
    """

    def __init__(self, cluster: Cluster, host_id: int, port: int = _PORT + 1):
        self.cluster = cluster
        self.host_id = host_id
        self.port = port
        self.table: dict[bytes, bytes] = {}
        self._cpu = cluster.net.host(host_id).cpu
        self._rpc = TcpRpcServer(
            cluster.sim, cluster.tcp_stacks[host_id], port
        )
        self._rpc.register("get", self._get)
        self._rpc.register("put", self._put)
        self._rpc.register("delete", self._delete)
        self._rpc.start()

    def _get(self, key):
        value = self.table.get(key)
        yield from self._cpu.copy(len(value) if value else len(key))
        return value

    def _put(self, key, value):
        yield from self._cpu.copy(len(key) + len(value))
        self.table[key] = value
        return True

    def _delete(self, key):
        yield from self._cpu.copy(len(key))
        return self.table.pop(key, None) is not None


class TcpKvClient:
    """Client for :class:`TcpKvServer`."""

    def __init__(self, cluster: Cluster, host_id: int):
        self.cluster = cluster
        self.host_id = host_id
        self._rpc: Optional[TcpRpcClient] = None

    def connect(self, server: TcpKvServer):
        """Open the connection (generator)."""
        self._rpc = TcpRpcClient(
            self.cluster.sim, self.cluster.tcp_stacks[self.host_id]
        )
        yield from self._rpc.connect(
            self.cluster.tcp_stacks[server.host_id], server.port
        )
        return self

    def get(self, key: bytes):
        value = yield from self._rpc.call("get", key)
        return value

    def put(self, key: bytes, value: bytes):
        result = yield from self._rpc.call("put", key, value)
        return result

    def delete(self, key: bytes):
        result = yield from self._rpc.call("delete", key)
        return result
