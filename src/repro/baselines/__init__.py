"""Comparator systems the paper measures against.

* :mod:`repro.baselines.tcp_store` — a sockets-based in-memory store
  (two-sided request/response through the server CPU), the classic
  pre-RDMA design point for E2/E4.
* :mod:`repro.baselines.twopl` — a naive two-phase-locking transaction
  runner, the pessimistic comparator for the OCC runtime (E14).
* The graph and sort comparators live with their applications
  (:mod:`repro.graph.baseline`, :mod:`repro.sort.terasort`).
"""

from repro.baselines.tcp_store import (
    TcpKvClient,
    TcpKvServer,
    TcpMemoryClient,
    TcpMemoryServer,
)
from repro.baselines.twopl import TwoPhaseLocking, TwoPLError

__all__ = [
    "TcpKvClient",
    "TcpKvServer",
    "TcpMemoryClient",
    "TcpMemoryServer",
    "TwoPhaseLocking",
    "TwoPLError",
]
