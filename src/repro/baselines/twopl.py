"""A naive two-phase-locking transaction runner: the E14 comparator.

The pre-OCC design point ("RDMA vs. RPC for Implementing Distributed
Data Structures" argues the lock-based variant): declare every key up
front, lock *all* of their slots before reading anything, hold the
locks across read + compute + write, release at the end.  Growing and
shrinking phases are strict, and locks are taken in global
``(region, offset)`` order, so the runner is deadlock-free — but
readers block writers and writers block everyone, which is exactly
the contention behaviour E14 measures against the optimistic runtime
(:mod:`repro.txn`).

Slots are locked with the same SeqLock token protocol the OCC runtime
uses (unique odd tokens, ambiguous CAS completions resolved by a
follow-up read), so the two runners differ only in *when* they lock,
not in how.
"""

from __future__ import annotations

from repro.coord import Backoff
from repro.core.errors import DeadlineExceededError, RecoverableError
from repro.kv.hashkv import _PROBE_LIMIT, _TOMBSTONE, KvError, _hash64

__all__ = ["TwoPhaseLocking", "TwoPLError"]

_WORD = 8
#: per-slot lock acquisition attempts before giving up (each waits on
#: the shared backoff, which also enforces the caller's deadline)
_LOCK_ATTEMPTS = 4096
#: replays of one idempotent publish/abort write under faults
_APPLY_ATTEMPTS = 64
#: 2PL tokens share the transaction token space (far above versions)
_TOKEN_BASE = (1 << 62) | (1 << 61)


class TwoPLError(KvError):
    """The 2PL runner could not serve the declared keyset."""


class TwoPhaseLocking:
    """Pessimistic multi-key transactions over hashkv tables."""

    def __init__(self, client, label: str = "2pl", deadline: float = None):
        self.client = client
        self.label = label
        self.deadline = deadline
        _m = client.obs.metrics
        _labels = dict(label=label, host=client.nic.host.host_id)
        self._m_commits = _m.counter("txn.twopl_commits", **_labels)
        self._m_lock_waits = _m.counter("txn.twopl_lock_waits", **_labels)
        self._m_commit_s = _m.histogram("txn.twopl_commit_s", **_labels)

    @property
    def commits(self) -> int:
        return int(self._m_commits.value)

    def _token(self) -> int:
        seq = getattr(self.client, "_txn_token_seq", 0) + 1
        self.client._txn_token_seq = seq
        host_id = self.client.nic.host.host_id
        return (_TOKEN_BASE | (host_id << 24) | ((seq % (1 << 23)) << 1)
                | 1)

    def _find_slot(self, store, key: bytes):
        """The slot holding *key* (generator); 2PL cannot insert —
        every declared key must already exist."""
        store._check_key(key)
        base = _hash64(key)
        for probe in range(_PROBE_LIMIT):
            index = (base + probe) % store.slots
            version, key_len, slot_key, _value = (
                yield from store.snapshot_slot(index)
            )
            if key_len == 0:
                break
            if key_len != _TOMBSTONE and slot_key == key:
                return index
        raise TwoPLError(
            f"declared key {key!r} not present — the naive 2PL runner "
            "only updates existing keys"
        )

    def _replay(self, op_factory, backoff):
        """Drive one idempotent publish/abort write through faults
        (generator) — same post-decision discipline as repro.txn."""
        for _attempt in range(_APPLY_ATTEMPTS):
            try:
                yield from op_factory()
                return
            except RecoverableError:
                yield from backoff.pause()
        raise TwoPLError(
            f"idempotent 2PL write did not land within "
            f"{_APPLY_ATTEMPTS} attempts"
        )

    def run(self, store, keys, fn, deadline: float = None):
        """One pessimistic transaction (generator).

        Locks every declared key's slot in global order, reads the
        values under lock, applies ``fn(values) -> updates`` (a plain
        function over ``{key: value}`` returning ``{key: new_value}``
        for the keys it changes), publishes the updates, and releases
        everything.  Returns ``fn``'s updates dict.
        """
        client = self.client
        sim = client.sim
        deadline = self.deadline if deadline is None else deadline
        token = self._token()
        backoff = Backoff.for_client(client, f"twopl-{self.label}",
                                     deadline=deadline)
        replay = Backoff.for_client(client, f"twopl-apply-{self.label}",
                                    base_s=1e-3, max_s=50e-3)
        start = sim.now
        # -- growing phase: resolve slots, lock them in global order
        slots = {}
        for key in set(keys):
            index = yield from self._find_slot(store, key)
            slots[(store.mapping.name, store.slot_lock(index).offset)] = (
                key, index
            )
        held = []  # (lock, pre-lock version, key, index)
        try:
            for rkey in sorted(slots):
                key, index = slots[rkey]
                lock = store.slot_lock(index)
                for _attempt in range(_LOCK_ATTEMPTS):
                    word = yield from self._read_version(store, index)
                    if word % 2 == 0:
                        got = yield from lock.try_lock(word, token=token)
                        if got:
                            held.append((lock, word, key, index))
                            break
                    self._m_lock_waits.inc()
                    yield from backoff.pause()
                else:
                    raise DeadlineExceededError(
                        f"2PL lock on {rkey} not acquired within "
                        f"{_LOCK_ATTEMPTS} attempts"
                    )
            # -- read under lock: values are stable while we hold them
            values = {}
            for _lock, _word, key, index in held:
                _version, key_len, slot_key, value = (
                    yield from store.snapshot_slot(index)
                )
                if key_len in (0, _TOMBSTONE) or slot_key != key:
                    raise TwoPLError(
                        f"slot {index} no longer holds {key!r} — it was "
                        "deleted between probe and lock"
                    )
                values[key] = value
            updates = fn(dict(values)) or {}
            unknown = set(updates) - set(values)
            if unknown:
                raise TwoPLError(
                    f"updates for undeclared keys: {sorted(unknown)}"
                )
            # -- write + shrinking phase: publish changed, restore rest
            for lock, word, key, _index in held:
                if key in updates:
                    body = store._encode_body(key, updates[key])
                    yield from self._replay(
                        lambda lock=lock, word=word, body=body:
                            lock.publish(token, body,
                                         new_version=word + 2),
                        replay,
                    )
                else:
                    yield from self._replay(
                        lambda lock=lock, word=word: lock.abort(word),
                        replay,
                    )
            held = []
            self._m_commits.inc()
            self._m_commit_s.observe(sim.now - start)
            return updates
        except BaseException:
            for lock, word, _key, _index in held:
                yield from self._replay(
                    lambda lock=lock, word=word: lock.abort(word), replay
                )
            raise

    def _read_version(self, store, index):
        """One slot's current version word (generator)."""
        lock = store.slot_lock(index)
        rsan = self.client.rsan
        with rsan.exempt(self.client._rsan_actor):
            raw = yield from lock.mapping.read(lock.offset, _WORD)
        return int.from_bytes(raw, "little")
