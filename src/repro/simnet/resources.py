"""Synchronization resources for simulated processes.

Two primitives cover everything the reproduction needs:

* :class:`Resource` — a counted semaphore (CPU cores, NIC DMA engines,
  bounded server worker pools).
* :class:`Store` — an unbounded-or-bounded FIFO of items (message queues,
  work queues, completion channels).

Both hand out plain :class:`~repro.simnet.kernel.Event` objects so they
compose with ``yield`` / ``AllOf`` / ``AnyOf`` like any other event.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Optional

from repro.simnet.kernel import Event, SimulationError, Simulator

__all__ = ["Resource", "Store"]


class Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        super().__init__(resource.sim)
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...  # hold the resource
        finally:
            resource.release(req)

    or, for the common hold-for-a-duration pattern::

        yield from resource.occupy(duration)
    """

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set[Request] = set()
        self._waiting: deque[Request] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue_len(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> Request:
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: Request) -> None:
        if request not in self._users:
            raise SimulationError("releasing a request that holds no slot")
        self._users.remove(request)
        while self._waiting and len(self._users) < self.capacity:
            nxt = self._waiting.popleft()
            self._users.add(nxt)
            nxt.succeed()

    def occupy(self, duration: float):
        """Hold one slot for *duration* simulated seconds (generator)."""
        req = self.request()
        yield req
        try:
            yield self.sim.timeout(duration)
        finally:
            self.release(req)


class Store:
    """A FIFO of items with blocking ``get`` and optionally bounded ``put``."""

    def __init__(self, sim: Simulator, capacity: float = math.inf):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """A snapshot of queued items (for inspection in tests)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Queue *item*; the returned event fires once it is accepted."""
        event = Event(self.sim)
        if self._getters:
            # Hand the item straight to the oldest waiting getter.
            getter = self._getters.popleft()
            getter.succeed(item)
            event.succeed()
        elif len(self._items) < self.capacity:
            self._items.append(item)
            event.succeed()
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        """The returned event fires with the oldest available item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
            self._admit_putter()
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns ``None`` when the store is empty."""
        if not self._items:
            return None
        item = self._items.popleft()
        self._admit_putter()
        return item

    def _admit_putter(self) -> None:
        if self._putters and len(self._items) < self.capacity:
            event, item = self._putters.popleft()
            if self._getters:
                self._getters.popleft().succeed(item)
            else:
                self._items.append(item)
            event.succeed()
