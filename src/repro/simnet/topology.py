"""Cluster topology: hosts behind a single cut-through switch.

The paper's testbed is 12 machines on one FDR switch, so the fabric
model is deliberately simple: every host has a full-duplex link to one
switch with an uncongested backplane.  Congestion therefore happens
exactly where it does on such a pod — at host egress and host ingress.

A frame's journey is computed analytically at send time (one simulator
event per frame): serialize on the sender's egress channel, cross two
propagation hops plus the switch latency, serialize on the receiver's
ingress channel.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.simnet.config import NetworkConfig
from repro.simnet.cpu import Cpu
from repro.simnet.kernel import Event, Simulator
from repro.simnet.link import Channel

__all__ = ["Host", "Network"]


class Host:
    """A machine: CPU model plus the two directions of its fabric link."""

    def __init__(self, sim: Simulator, host_id: int, config: NetworkConfig):
        self.sim = sim
        self.host_id = host_id
        self.name = f"host{host_id}"
        self.config = config
        self.cpu = Cpu(
            sim,
            cores=config.cores_per_host,
            copy_bandwidth_Bps=config.copy_bandwidth_Bps,
        )
        self.egress = Channel(sim, config.link_rate_bps, f"{self.name}.tx")
        self.ingress = Channel(sim, config.link_rate_bps, f"{self.name}.rx")
        self.loopback = Channel(sim, config.loopback_rate_bps,
                                f"{self.name}.loop")
        #: arbitrary attachment point for services (NICs, daemons)
        self.services: dict[str, object] = {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Host {self.name}>"


class Rack:
    """A top-of-rack domain with an (optionally oversubscribed) uplink."""

    def __init__(self, sim: Simulator, rack_id: int, num_hosts: int,
                 config: NetworkConfig):
        self.rack_id = rack_id
        uplink_rate = max(
            config.link_rate_bps,
            num_hosts * config.link_rate_bps / config.oversubscription,
        )
        self.up = Channel(sim, uplink_rate, f"rack{rack_id}.up")
        self.down = Channel(sim, uplink_rate, f"rack{rack_id}.down")


class Network:
    """The fabric: owns the hosts and moves frames between them.

    With ``config.racks == 1`` (the default, the paper's testbed) every
    host hangs off one cut-through switch.  With more racks, hosts are
    assigned round-robin and cross-rack frames additionally traverse the
    source rack's uplink and the destination rack's downlink, whose
    capacity is governed by ``config.oversubscription``.
    """

    def __init__(
        self,
        sim: Simulator,
        num_hosts: int,
        config: Optional[NetworkConfig] = None,
    ):
        if num_hosts < 1:
            raise ValueError(f"need at least one host, got {num_hosts}")
        self.sim = sim
        self.config = config or NetworkConfig()
        self.hosts = [Host(sim, i, self.config) for i in range(num_hosts)]
        self.racks = [
            Rack(sim, r, -(-num_hosts // self.config.racks), self.config)
            for r in range(self.config.racks)
        ]
        #: total bytes carried across the switch
        self.bytes_carried = 0
        #: total frames carried
        self.frames_carried = 0
        #: optional partition filter: ``filter(src_id, dst_id) -> bool``;
        #: True silently drops the message (its delivery event never
        #: fires — the fabric ate it, exactly like a real partition)
        self.fault_filter: Optional[Callable[[int, int], bool]] = None
        #: messages eaten by the fault filter
        self.messages_dropped = 0

    def rack_of(self, host: Host) -> Rack:
        return self.racks[host.host_id % self.config.racks]

    def __len__(self) -> int:
        return len(self.hosts)

    def host(self, host_id: int) -> Host:
        return self.hosts[host_id]

    @property
    def one_way_base_delay(self) -> float:
        """Propagation + switch latency excluding serialization."""
        cfg = self.config
        return 2 * cfg.link_prop_delay_s + cfg.switch_latency_s

    def transmit_frame(
        self,
        src: Host,
        dst: Host,
        nbytes: int,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> Event:
        """Send one unfragmented frame from *src* to *dst*."""
        return self.transmit_message(
            src, dst, nbytes, frame_size=max(nbytes, 1),
            on_delivered=on_delivered,
        )

    def transmit_message(
        self,
        src: Host,
        dst: Host,
        nbytes: int,
        frame_size: Optional[int] = None,
        header_bytes: int = 0,
        on_delivered: Optional[Callable[[], None]] = None,
    ) -> Event:
        """Send a whole message, fragmented into frames; one event fires
        when the **last** frame is delivered.

        The egress chain is computed analytically at send time (no
        per-frame simulator events).  The *ingress* reservation is
        deferred to the first frame's arrival: receiver-side channel
        time is claimed in arrival order, so concurrent senders share a
        hot receiver fairly instead of in send-call order.  Cost: two
        simulator events per message regardless of frame count.
        """
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        sim = self.sim
        if (
            self.fault_filter is not None
            and src is not dst
            and self.fault_filter(src.host_id, dst.host_id)
        ):
            # partitioned: the message vanishes in the fabric; no bytes
            # are accounted and the returned event never fires — loss is
            # the caller's (transport's) problem, as on a real network
            self.messages_dropped += 1
            return Event(sim)
        frame_size = frame_size or self.config.frame_size
        nframes = max(1, -(-nbytes // frame_size))
        wire_bytes = nbytes + nframes * header_bytes
        self.bytes_carried += wire_bytes
        self.frames_carried += nframes
        done = Event(sim)
        if src is dst:
            finish = src.loopback.reserve(nbytes, earliest=sim.now)
            sim.timeout(finish - sim.now).add_callback(
                lambda _e: done.succeed()
            )
        else:
            src_rack = self.rack_of(src)
            dst_rack = self.rack_of(dst)
            cross_rack = src_rack is not dst_rack
            base = self.one_way_base_delay
            if cross_rack:
                # two extra hops: ToR -> spine -> ToR
                base += 2 * self.config.link_prop_delay_s + \
                    self.config.switch_latency_s
            frames = []
            remaining = nbytes
            for _ in range(nframes):
                payload = min(frame_size, remaining)
                remaining -= payload
                frame_bytes = payload + header_bytes
                # sender-side chain: host egress, then the rack uplink
                out_done = src.egress.reserve(frame_bytes, earliest=sim.now)
                if cross_rack:
                    out_done = src_rack.up.reserve(frame_bytes,
                                                   earliest=out_done)
                frames.append((frame_bytes, out_done))
            first_arrival = frames[0][1] + base

            def claim_ingress(_event):
                # receiver-side chain, claimed in arrival order: the
                # rack downlink (cross-rack only), then host ingress
                last = sim.now
                for frame_bytes, out_done in frames:
                    at = out_done + base
                    if cross_rack:
                        at = dst_rack.down.reserve(frame_bytes, earliest=at)
                    last = dst.ingress.reserve(frame_bytes, earliest=at)
                sim.timeout(last - sim.now).add_callback(
                    lambda _e: done.succeed()
                )

            sim.timeout(first_arrival - sim.now).add_callback(claim_ingress)
        if on_delivered is not None:
            done.add_callback(lambda _e: on_delivered())
        return done

    def aggregate_bandwidth_bps(self, since: float = 0.0) -> float:
        """Total payload bandwidth carried since *since* (bits/s)."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return self.bytes_carried * 8.0 / elapsed
