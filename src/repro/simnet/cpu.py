"""Host CPU cost model.

CPython wall-time is meaningless for performance claims, so every
simulated activity charges CPU time *explicitly* through this model: a
host has a fixed number of cores (a counted :class:`Resource`), and work
occupies one core for a computed duration.  Benchmarks then read
utilization off the model — e.g. to show that one-sided RDMA leaves the
server CPU idle while the sockets baseline burns cores.
"""

from __future__ import annotations

from repro.simnet.kernel import Simulator
from repro.simnet.resources import Resource

__all__ = ["Cpu"]


class Cpu:
    """A multi-core CPU charging explicit durations."""

    def __init__(
        self,
        sim: Simulator,
        cores: int = 8,
        copy_bandwidth_Bps: float = 3.2e9,
    ):
        self.sim = sim
        self.cores = cores
        self.copy_bandwidth_Bps = copy_bandwidth_Bps
        self._res = Resource(sim, capacity=cores)
        #: accumulated core-seconds of work executed
        self.busy_seconds = 0.0

    def run(self, seconds: float):
        """Occupy one core for *seconds* (generator)."""
        if seconds < 0:
            raise ValueError(f"negative CPU time {seconds}")
        req = self._res.request()
        yield req
        try:
            yield self.sim.timeout(seconds)
            self.busy_seconds += seconds
        finally:
            self._res.release(req)

    def copy(self, nbytes: int):
        """Charge a memory copy of *nbytes* on one core (generator)."""
        yield from self.run(nbytes / self.copy_bandwidth_Bps)

    @property
    def active(self) -> int:
        """Cores currently executing work."""
        return self._res.count

    @property
    def runnable_backlog(self) -> int:
        """Work items waiting for a free core."""
        return self._res.queue_len

    def utilization(self, since: float = 0.0) -> float:
        """Average core utilization (0..1) since *since*."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / (elapsed * self.cores))
