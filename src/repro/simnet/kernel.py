"""The discrete-event simulation kernel.

A small, self-contained kernel in the style of simpy: simulated
activities are Python generators ("processes") that ``yield`` events.
The :class:`Simulator` owns the virtual clock and an event queue; it
advances time by popping the earliest scheduled event and running its
callbacks, which typically resume the processes waiting on it.

Design notes
------------
* Time is a ``float`` in **seconds**.  Data sizes elsewhere in the code
  base are ``int`` **bytes**; rates are bits/second.
* Events scheduled for the same instant run in FIFO order of scheduling
  (a monotonically increasing sequence number breaks heap ties), so
  simulations are fully deterministic.
* A failed event whose exception is never delivered to a waiting process
  re-raises out of :meth:`Simulator.run` — errors never pass silently.
"""

from __future__ import annotations

import heapq
from collections.abc import Generator
from typing import Any, Callable, Iterable, Optional

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Condition",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "Simulator",
    "SimulationError",
]

_PENDING = object()


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel itself."""


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    The ``cause`` attribute carries the value passed to ``interrupt``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0] if self.args else None


class Event:
    """An occurrence at a point in simulated time.

    Events start *pending*; they become *triggered* once scheduled with a
    value (or an exception) and *processed* once the simulator has run
    their callbacks.  Processes wait on events by yielding them.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_processed", "defused")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: callables invoked with the event when it is processed
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._processed = False
        #: set when a failure has been delivered to a process and should
        #: not also crash the simulation
        self.defused = False

    @property
    def triggered(self) -> bool:
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        return self._processed

    @property
    def ok(self) -> bool:
        """Whether the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError("event value not yet available")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, scheduling it for *now*."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, scheduling it for *now*."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self, delay=0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run *callback(event)* when the event is processed.

        If the event was already processed the callback is scheduled to
        run immediately (at the current simulated instant) rather than
        being lost — this makes already-completed events safe to wait on.
        """
        if self._processed:
            self.sim._schedule_call(callback, self)
        else:
            assert self.callbacks is not None
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = (
            "processed"
            if self._processed
            else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay)


class Process(Event):
    """Wraps a generator; the event triggers when the generator returns.

    The generator's ``return`` value becomes the event value, so parent
    processes can do ``result = yield from sub()`` or wait on a spawned
    process with ``result = yield proc``.
    """

    __slots__ = ("generator", "_waiting_on", "name")

    def __init__(
        self, sim: "Simulator", generator: Generator, name: str = ""
    ):
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(sim)
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._waiting_on: Optional[Event] = None
        # Kick the process off at the current instant.
        init = Event(sim)
        init._ok = True
        init._value = None
        sim._schedule(init, delay=0.0)
        init.add_callback(self._resume)

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current instant."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already terminated")
        if self._waiting_on is None:
            # The process is just starting (or being resumed this very
            # instant); deliver the interrupt right after.
            hit = Event(self.sim)
            hit._ok = False
            hit._value = Interrupt(cause)
            hit.defused = True
            self.sim._schedule(hit, delay=0.0)
            hit.add_callback(self._resume)
            return
        target = self._waiting_on
        if target.callbacks is None:
            # The awaited event has fired and the resume is already in
            # flight; the interrupt arrives too late to matter.
            return
        if self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._waiting_on = None
        hit = Event(self.sim)
        hit._ok = False
        hit._value = Interrupt(cause)
        hit.defused = True
        self.sim._schedule(hit, delay=0.0)
        hit.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        self._waiting_on = None
        self.sim._active_process = self
        try:
            if event._ok:
                target = self.generator.send(event._value)
            else:
                event.defused = True
                target = self.generator.throw(event._value)
        except StopIteration as stop:
            self.sim._active_process = None
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.sim._active_process = None
            self._ok = False
            self._value = exc
            self.sim._schedule(self, delay=0.0)
            return
        self.sim._active_process = None
        if not isinstance(target, Event):
            exc = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances"
            )
            self.generator.throw(exc)
            raise exc
        if target.sim is not self.sim:
            raise SimulationError("cannot wait on an event from another simulator")
        self._waiting_on = target
        target.add_callback(self._resume)


class Condition(Event):
    """Waits on a set of events until an evaluation predicate holds."""

    __slots__ = ("events", "_count", "_needed")

    def __init__(self, sim: "Simulator", events: Iterable[Event], needed: int):
        super().__init__(sim)
        self.events = list(events)
        self._count = 0
        self._needed = min(needed, len(self.events)) if self.events else 0
        if not self.events:
            self.succeed([])
            return
        for event in self.events:
            event.add_callback(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                # Nobody will look at this failure through the condition.
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._count >= self._needed:
            # Only events that have actually fired (been processed) count;
            # Timeouts carry their value from construction, so checking
            # ``triggered`` would leak future values.
            self.succeed([e._value for e in self.events if e._processed and e._ok])


class AllOf(Condition):
    """Triggers when every event has succeeded; fails fast on any failure."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        events = list(events)
        super().__init__(sim, events, needed=len(events))


class AnyOf(Condition):
    """Triggers when at least one event has succeeded."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim, events, needed=1)


class Simulator:
    """Owns the virtual clock, the event queue, and process scheduling."""

    def __init__(self):
        self._now = 0.0
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        return self._active_process

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start *generator* as a new process."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, event))

    def _schedule_call(self, callback: Callable[[Event], None], event: Event) -> None:
        """Schedule a bare callback invocation at the current instant."""
        proxy = Event(self)
        proxy._ok = event._ok
        proxy._value = event._value
        proxy.defused = True
        self._schedule(proxy, delay=0.0)
        proxy.add_callback(lambda _e: callback(event))

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Process the next scheduled event."""
        when, _seq, event = heapq.heappop(self._queue)
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        event._processed = True
        if callbacks:
            for callback in callbacks:
                callback(event)
        if not event._ok and not event.defused:
            exc = event._value
            raise exc

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the queue drains, a deadline passes, or an event fires.

        ``until`` may be an absolute simulated time or an :class:`Event`
        (commonly a :class:`Process`); in the latter case the event's
        value is returned.
        """
        if isinstance(until, Event):
            stop = until
            while not stop.processed:
                if not self._queue:
                    raise SimulationError(
                        "event queue drained before the awaited event fired "
                        "(deadlock: a process is waiting on an event nobody "
                        "will trigger)"
                    )
                self.step()
            if stop._ok:
                return stop._value
            raise stop._value
        deadline = float("inf") if until is None else float(until)
        while self._queue and self._queue[0][0] <= deadline:
            self.step()
        if until is not None and self._now < deadline:
            self._now = deadline
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")
