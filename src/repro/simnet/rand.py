"""Deterministic randomness for simulations.

Every component that needs randomness derives a private
:class:`random.Random` stream from a root seed plus a stable label, so
simulations are reproducible regardless of component construction order.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["derive_rng", "derive_seed"]


def derive_seed(root_seed: int, label: str) -> int:
    """Derive a stable 64-bit seed from *root_seed* and *label*."""
    digest = hashlib.sha256(f"{root_seed}:{label}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(root_seed: int, label: str) -> random.Random:
    """A private RNG stream for the component named *label*."""
    return random.Random(derive_seed(root_seed, label))
