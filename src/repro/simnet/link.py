"""Point-to-point channel model.

Each host connects to the switch with a full-duplex link; each direction
is an independent :class:`Channel` that serializes frames at the link
rate.  A frame transfer across the fabric occupies the sender's egress
channel and the receiver's ingress channel in sequence, which is what
creates realistic fan-in (incast) and fan-out contention.

The model is *conservative work-conserving FIFO*: a channel transmits
frames back-to-back in arrival order.  Because the NIC engine fragments
messages into frames and round-robins between queue pairs, concurrent
flows share a channel in proportion to their offered frames, which
approximates fair sharing at frame granularity.
"""

from __future__ import annotations

from repro.simnet.kernel import Simulator, Timeout

__all__ = ["Channel"]


class Channel:
    """One direction of a link: serializes frames at a fixed rate."""

    def __init__(self, sim: Simulator, rate_bps: float, name: str = ""):
        if rate_bps <= 0:
            raise ValueError(f"rate must be positive, got {rate_bps}")
        self.sim = sim
        self.rate_bps = rate_bps
        self.name = name
        self._busy_until = 0.0
        #: total bytes ever serialized on this channel
        self.bytes_sent = 0
        #: total seconds the channel spent transmitting
        self.busy_seconds = 0.0

    def serialization_time(self, nbytes: int) -> float:
        return nbytes * 8.0 / self.rate_bps

    def reserve(self, nbytes: int, earliest: float) -> float:
        """Reserve the channel for one frame; return its finish time.

        ``earliest`` is the first instant the frame can start (e.g. its
        arrival time at this channel).  The reservation is made
        immediately — callers must reserve in the order frames actually
        reach the channel, which the NIC engine guarantees.
        """
        if nbytes < 0:
            raise ValueError(f"negative frame size {nbytes}")
        start = max(earliest, self._busy_until, self.sim.now)
        tx_time = self.serialization_time(nbytes)
        finish = start + tx_time
        self._busy_until = finish
        self.bytes_sent += nbytes
        self.busy_seconds += tx_time
        return finish

    @property
    def busy_until(self) -> float:
        return self._busy_until

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of time spent transmitting since *since*."""
        elapsed = self.sim.now - since
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_seconds / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Channel {self.name} {self.rate_bps / 1e9:.1f} Gb/s>"
