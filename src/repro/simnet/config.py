"""Network and host configuration for the simulated cluster.

The default constants model the paper's testbed: machines on a single
FDR InfiniBand (56 Gb/s) switch with ConnectX-3-class NICs.  Everything
is a plain dataclass field so ablation benchmarks can sweep parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NetworkConfig", "KiB", "MiB", "GiB", "Gbps", "us", "ms"]

KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB


def Gbps(value: float) -> float:
    """Convert gigabits/second to bits/second."""
    return value * 1e9


def us(value: float) -> float:
    """Convert microseconds to seconds."""
    return value * 1e-6


def ms(value: float) -> float:
    """Convert milliseconds to seconds."""
    return value * 1e-3


@dataclass
class NetworkConfig:
    """Fabric parameters, defaulted to an FDR InfiniBand single-switch pod.

    ``link_rate_bps`` is the usable data rate per direction: FDR signals
    at 56 Gb/s; with 64b/66b encoding the data rate is ~54.3 Gb/s.
    """

    #: usable data rate of each host link, per direction (bits/s)
    link_rate_bps: float = Gbps(54.3)
    #: one-way propagation + PHY latency of a single link hop (s)
    link_prop_delay_s: float = us(0.25)
    #: switch forwarding latency, cut-through (s)
    switch_latency_s: float = us(0.25)
    #: fabric MTU: messages are fragmented into frames of this size for
    #: multiplexing fairness.  4 KiB matches the IB MTU; benchmarks that
    #: push many GiB may raise it to bound simulator event counts (the
    #: bandwidth error from coarser frames is negligible for large IO).
    frame_size: int = 64 * KiB
    #: number of cores per host, for the CPU cost model
    cores_per_host: int = 8
    #: NIC loopback / memory-DMA bandwidth for host-local transfers
    #: (DDR3-era memory subsystem; local IO serializes on this, it is
    #: not free parallelism)
    loopback_rate_bps: float = 102.4e9  # 12.8 GB/s
    #: number of racks; 1 = the paper's single-switch pod.  With more
    #: racks, hosts are distributed round-robin and cross-rack traffic
    #: shares each rack's uplink
    racks: int = 1
    #: rack uplink oversubscription: uplink capacity =
    #: hosts_in_rack * link_rate / oversubscription (1.0 = full bisection)
    oversubscription: float = 1.0

    def __post_init__(self):
        if self.racks < 1:
            raise ValueError(f"need at least one rack, got {self.racks}")
        if self.oversubscription < 1.0:
            raise ValueError(
                f"oversubscription must be >= 1, got {self.oversubscription}"
            )
    #: memory copy bandwidth per core (bytes/s) — used by the sockets
    #: stack and by applications that touch every byte
    copy_bandwidth_Bps: float = 3.2e9

    def frame_time(self, nbytes: int) -> float:
        """Serialization delay of *nbytes* on one link direction."""
        return nbytes * 8.0 / self.link_rate_bps
