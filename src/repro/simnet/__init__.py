"""Discrete-event cluster simulator underpinning the RStore reproduction.

The package provides a compact, simpy-like simulation kernel
(:mod:`repro.simnet.kernel`), synchronization resources
(:mod:`repro.simnet.resources`), and a cluster model — hosts with a CPU
cost model, full-duplex links and a single-switch fabric
(:mod:`repro.simnet.topology`).

All simulated activities are generator coroutines driven by
:class:`~repro.simnet.kernel.Simulator`.  Code inside the simulation uses
``yield`` / ``yield from`` to wait for events; wall-clock time never
appears anywhere — time is charged explicitly through links, NIC models
and the CPU cost model so that the *simulated* clock is the measurement.
"""

from repro.simnet.kernel import (
    Event,
    Interrupt,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.simnet.faults import FaultInjector
from repro.simnet.resources import Resource, Store
from repro.simnet.config import NetworkConfig
from repro.simnet.topology import Host, Network

__all__ = [
    "Event",
    "FaultInjector",
    "Host",
    "Interrupt",
    "Network",
    "NetworkConfig",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "Store",
    "Timeout",
]
