"""Deterministic fault injection for cluster simulations.

A :class:`FaultInjector` is a *schedule* of misbehaviour declared before
(or while) a simulation runs, plus the hooks that make components act on
it.  Everything is driven by the simulated clock and a seeded RNG
stream, so a fault scenario replays bit-for-bit from its seed:

* **server crashes** — kill a memory server's host at a chosen time;
* **heartbeat drops / delays** — make a healthy server look dead to the
  master (false-positive death), then let it resume and rejoin;
* **master crashes** — fail-stop the master at a chosen time and
  optionally restart it later; the restarted master replays its
  metadata log (see ``core/metalog.py``) and re-learns the membership;
* **network partitions** — split the fabric into groups (or one-way
  splits) whose cross-traffic silently vanishes; transports time out,
  clients fail fast against their deadlines;
* **transient RPC failures** — a control-plane call fails with a remote
  ``RStoreError`` without running its handler (callers must retry);
* **wire faults** — a one-sided data operation launched by a chosen
  host completes with ``RETRY_EXC_ERR``, erroring its QP exactly like a
  peer dying mid-flight (clients must remap and replay).  By default
  the op dies *before* launch; ``where="ack"`` instead applies it
  remotely and loses only the acknowledgement — the ambiguous case
  that forbids replaying atomics.

Wiring happens in :meth:`attach`, which the cluster builder calls right
after boot when given ``faults=``; all windows are in seconds **after
attach** so scenarios do not depend on how long booting took.

    faults = FaultInjector(seed=11)
    faults.crash_server(3, at=0.5)
    faults.drop_heartbeats(2, start=1.0, duration=0.2)
    faults.fail_rpc(0, method="lookup", start=0.1, duration=0.05)
    faults.fail_wire(1, start=0.3, duration=0.1, probability=0.5)
    cluster = build_cluster(8, faults=faults)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.rdma.types import Opcode
from repro.simnet.rand import derive_rng

__all__ = ["FaultInjector"]

#: wire faults default to the one-sided data path — RPC SENDs carry the
#: control plane, whose resilience is exercised by fail_rpc instead
_DATA_OPCODES = frozenset({
    Opcode.RDMA_READ,
    Opcode.RDMA_WRITE,
    Opcode.RDMA_WRITE_IMM,
    Opcode.ATOMIC_CAS,
    Opcode.ATOMIC_FAA,
})


@dataclass
class _Window:
    """One fault window: [start, end) in post-attach simulated seconds."""

    start: float
    end: float
    #: heartbeat windows: "drop" or "delay"; delay seconds for "delay"
    mode: str = "drop"
    delay: float = 0.0
    #: rpc/wire windows: which method (None = all) and how likely
    method: Optional[str] = None
    probability: float = 1.0
    #: wire windows: "launch" fails before the op leaves the NIC;
    #: "ack" lets the remote side apply it, then loses the completion
    where: str = "launch"
    #: cap on injections from this window (None = unlimited)
    times: Optional[int] = None
    fired: int = 0

    def open_at(self, now: float) -> bool:
        if not (self.start <= now < self.end):
            return False
        return self.times is None or self.fired < self.times


class FaultInjector:
    """A seeded, scheduled source of failures for one cluster."""

    def __init__(self, seed: int = 7):
        self.seed = seed
        self._rng = derive_rng(seed, "fault-injector")
        self._crashes: list[tuple[float, int]] = []
        #: (at, restart_after, shard) triples
        self._master_crashes: list[tuple[float, Optional[float], int]] = []
        self._heartbeat: dict[int, list[_Window]] = {}
        self._rpc: dict[int, list[_Window]] = {}
        self._wire: dict[int, list[_Window]] = {}
        #: (window, blocked(src, dst)) pairs; see :meth:`partition`
        self._partitions: list = []
        self._cluster = None
        self._t0 = 0.0
        #: injection timeline: ``(sim_time, message)`` pairs
        self.log: list[tuple[float, str]] = []
        self.injected = {"crashes": 0, "heartbeats": 0, "rpc": 0,
                         "wire": 0, "master_crashes": 0, "partition": 0}

    # -- schedule declaration ------------------------------------------------

    def crash_server(self, host_id: int, at: float) -> "FaultInjector":
        """Kill *host_id*'s server (NIC and all) *at* seconds in."""
        self._crashes.append((at, host_id))
        return self

    def crash_master(self, at: float,
                     restart_after: Optional[float] = None,
                     shard: int = 0) -> "FaultInjector":
        """Fail-stop one metadata shard's master *at* seconds in;
        optionally restart it *restart_after* seconds later.

        The crash loses every piece of that shard's in-memory state —
        namespace slice, membership, in-flight repair — and tears down
        every control-plane connection to it; other shards keep
        serving.  The restart replays the shard's write-ahead log and
        runs the recovery protocol (epoch bump, re-registration grace,
        repair resumption).
        """
        if restart_after is not None and restart_after <= 0:
            raise ValueError("restart_after must be positive")
        self._master_crashes.append((at, restart_after, shard))
        return self

    def partition(self, groups, start: float,
                  duration: float) -> "FaultInjector":
        """Split the fabric: hosts in different *groups* cannot exchange
        messages during ``[start, start + duration)``.

        *groups* is a list of host-id lists.  Hosts not listed in any
        group keep full connectivity.  The split is symmetric; see
        :meth:`partition_oneway` for asymmetric loss.
        """
        membership: dict[int, int] = {}
        for index, group in enumerate(groups):
            for host_id in group:
                if host_id in membership:
                    raise ValueError(f"host {host_id} is in two groups")
                membership[host_id] = index

        def blocked(src: int, dst: int) -> bool:
            return (
                src in membership and dst in membership
                and membership[src] != membership[dst]
            )

        self._partitions.append(
            (_Window(start, start + duration), blocked,
             f"partition {groups}")
        )
        return self

    def partition_oneway(self, src_hosts, dst_hosts, start: float,
                         duration: float) -> "FaultInjector":
        """Asymmetric split: messages from *src_hosts* to *dst_hosts*
        vanish; the reverse direction still flows.

        Blocking only the reply direction (the server side as *srcs*)
        yields the nasty case: requests arrive and are applied, but
        the acknowledgements never come back — initiators see ambiguous
        timeouts on operations that actually happened.
        """
        srcs = frozenset(src_hosts)
        dsts = frozenset(dst_hosts)

        def blocked(src: int, dst: int) -> bool:
            return src in srcs and dst in dsts

        self._partitions.append(
            (_Window(start, start + duration), blocked,
             f"one-way partition {sorted(srcs)} -> {sorted(dsts)}")
        )
        return self

    def drop_heartbeats(self, host_id: int, start: float,
                        duration: float) -> "FaultInjector":
        """Silently skip every heartbeat in the window — the server
        stays healthy but the master's lease expires."""
        self._heartbeat.setdefault(host_id, []).append(
            _Window(start, start + duration, mode="drop")
        )
        return self

    def delay_heartbeats(self, host_id: int, start: float, duration: float,
                         delay: float) -> "FaultInjector":
        """Add *delay* seconds in front of each heartbeat in the window."""
        self._heartbeat.setdefault(host_id, []).append(
            _Window(start, start + duration, mode="delay", delay=delay)
        )
        return self

    def fail_rpc(self, host_id: int, start: float, duration: float,
                 method: Optional[str] = None, probability: float = 1.0,
                 times: Optional[int] = None) -> "FaultInjector":
        """Fail control RPCs served *on host_id* inside the window."""
        self._rpc.setdefault(host_id, []).append(
            _Window(start, start + duration, method=method,
                    probability=probability, times=times)
        )
        return self

    def fail_wire(self, host_id: int, start: float, duration: float,
                  probability: float = 1.0,
                  times: Optional[int] = None,
                  where: str = "launch") -> "FaultInjector":
        """Fail one-sided operations *launched by host_id* in the window
        with a completion error (the QP goes to ERROR, like real RC).

        ``where="launch"`` (default) drops the op before it reaches the
        remote NIC — nothing is applied.  ``where="ack"`` lets the
        remote side execute the op and loses only the acknowledgement:
        the launcher sees the same completion error, but a one-sided
        WRITE has landed and an atomic *has* mutated the remote word —
        the case that makes blind atomic replay double-apply.
        """
        if where not in ("launch", "ack"):
            raise ValueError(f"unknown wire fault point {where!r}")
        self._wire.setdefault(host_id, []).append(
            _Window(start, start + duration, probability=probability,
                    times=times, where=where)
        )
        return self

    # -- wiring --------------------------------------------------------------

    def attach(self, cluster) -> "FaultInjector":
        """Arm the schedule against a booted cluster."""
        self._cluster = cluster
        self._t0 = cluster.sim.now
        for host_id, server in cluster.servers.items():
            server.faults = self
            if server._rpc is not None and host_id in self._rpc:
                server._rpc.fault_hook = self._rpc_hook(host_id)
        for master in cluster.masters:
            if master is None:
                continue
            master_host = master.nic.host.host_id
            if master_host in self._rpc:
                master._rpc.fault_hook = self._rpc_hook(master_host)
        for host_id, windows in self._wire.items():
            if any(w.where == "launch" for w in windows):
                cluster.nics[host_id].fault_hook = self._wire_hook(host_id)
            if any(w.where == "ack" for w in windows):
                cluster.nics[host_id].ack_fault_hook = self._ack_hook(host_id)
        for at, host_id in sorted(self._crashes):
            cluster.sim.process(
                self._crash_proc(at, host_id), name=f"fault-crash-{host_id}"
            )
        for index, (at, restart_after, shard) in enumerate(
            sorted(self._master_crashes,
                   key=lambda c: (c[0], c[2]))
        ):
            cluster.sim.process(
                self._master_crash_proc(at, restart_after, shard),
                name=f"fault-crash-master-{index}",
            )
        if self._partitions:
            # arming the filter also arms the NIC-side partition
            # watchdogs; it stays None otherwise so partition-free runs
            # carry zero extra timers
            cluster.net.fault_filter = self._partition_filter
        return self

    # -- hooks (consulted by the components) ---------------------------------

    def heartbeat_action(self, host_id: int) -> tuple[str, float]:
        """What should this heartbeat round do?  ``("drop", 0)``,
        ``("delay", extra_seconds)``, or ``("send", 0)``."""
        now = self._now()
        for window in self._heartbeat.get(host_id, ()):
            if window.open_at(now):
                window.fired += 1
                self.injected["heartbeats"] += 1
                if window.mode == "drop":
                    self._note(f"dropped heartbeat from server {host_id}")
                    return "drop", 0.0
                self._note(
                    f"delayed heartbeat from server {host_id} "
                    f"by {window.delay}s"
                )
                return "delay", window.delay
        return "send", 0.0

    def _rpc_hook(self, host_id: int):
        def hook(service_id: str, method: str) -> str:
            now = self._now()
            for window in self._rpc.get(host_id, ()):
                if not window.open_at(now):
                    continue
                if window.method is not None and window.method != method:
                    continue
                if self._rng.random() >= window.probability:
                    continue
                window.fired += 1
                self.injected["rpc"] += 1
                self._note(
                    f"failed rpc {method!r} on {service_id!r} "
                    f"(host {host_id})"
                )
                return f"injected fault: {method} on host {host_id}"
            return ""

        return hook

    def _wire_hook(self, host_id: int):
        def hook(_launch_host: int, wr) -> str:
            return self._wire_fault(host_id, wr, "launch")

        return hook

    def _ack_hook(self, host_id: int):
        def hook(_launch_host: int, wr) -> str:
            return self._wire_fault(host_id, wr, "ack")

        return hook

    def _wire_fault(self, host_id: int, wr, where: str) -> str:
        if wr.opcode not in _DATA_OPCODES:
            return ""
        now = self._now()
        for window in self._wire.get(host_id, ()):
            if window.where != where:
                continue
            if not window.open_at(now):
                continue
            if self._rng.random() >= window.probability:
                continue
            window.fired += 1
            self.injected["wire"] += 1
            self._note(
                f"failed {wr.opcode.name} launched by host {host_id} "
                f"({'before launch' if where == 'launch' else 'ack lost'})"
            )
            return f"injected wire fault on host {host_id} ({where})"
        return ""

    # -- internals -----------------------------------------------------------

    def _now(self) -> float:
        assert self._cluster is not None, "attach() the injector first"
        return self._cluster.sim.now - self._t0

    def _note(self, message: str) -> None:
        self.log.append((self._cluster.sim.now, message))

    def _crash_proc(self, at: float, host_id: int):
        yield self._cluster.sim.timeout(at)
        server = self._cluster.servers.get(host_id)
        if server is None or not server.alive:
            return
        self.injected["crashes"] += 1
        self._note(f"crashed server {host_id}")
        self._cluster.kill_server(host_id)

    def _master_crash_proc(self, at: float, restart_after: Optional[float],
                           shard: int):
        yield self._cluster.sim.timeout(at)
        master = self._cluster.masters[shard]
        if master is None or not master.alive:
            return
        self.injected["master_crashes"] += 1
        self._note(f"crashed the master (shard {shard})")
        self._cluster.crash_master(shard)
        if restart_after is None:
            return
        yield self._cluster.sim.timeout(restart_after)
        self._note(f"restarting the master (shard {shard})")
        yield from self._cluster.restart_master(shard)
        self._note(f"master restarted (shard {shard})")

    def _partition_filter(self, src: int, dst: int) -> bool:
        now = self._now()
        for window, blocked, label in self._partitions:
            if not window.open_at(now):
                continue
            if not blocked(src, dst):
                continue
            if window.fired == 0:
                self._note(f"{label} started eating traffic")
            window.fired += 1
            self.injected["partition"] += 1
            return True
        return False
