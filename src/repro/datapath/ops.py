"""The slot codec shared by both ends of the kv data path.

``repro.kv.hashkv`` pioneered this layout inline; the server-op
executor (:mod:`repro.datapath.server_exec`) must parse and encode the
exact same bytes against the arena, so the codec lives here — pure
functions over ``bytes``, no simulation or client dependencies.

Slot layout (all fields 8-byte aligned)::

    [ version 8B ][ key_len 8B ][ key ... ][ val_len 8B ][ value ... ]

The version word is the SeqLock word (``0`` never written, even =
stable, odd = writer in flight); ``key_len`` of ``2**63 - 1`` marks a
tombstone so linear probing keeps finding later entries.
"""

from __future__ import annotations

import hashlib

__all__ = [
    "WORD", "TOMBSTONE", "hash64", "pad", "slot_size",
    "parse_body", "encode_body",
]

WORD = 8
TOMBSTONE = (1 << 63) - 1


def hash64(key: bytes) -> int:
    """The table's slot hash: 8 bytes of blake2b, little-endian."""
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(),
                          "little")


def pad(n: int) -> int:
    """Round *n* up to the 8-byte slot alignment."""
    return -(-n // WORD) * WORD


def slot_size(key_size: int, value_size: int) -> int:
    """Bytes per slot: version + key_len + padded key + val_len +
    padded value."""
    return WORD + WORD + pad(key_size) + WORD + pad(value_size)


def parse_body(body: bytes, key_size: int):
    """Split a slot body (everything after the version word).

    Returns ``(key_len, key, value)``; the key is empty for free and
    tombstoned slots.
    """
    key_len = int.from_bytes(body[0:WORD], "little")
    key = body[WORD:WORD + key_len] if key_len not in (0, TOMBSTONE) else b""
    val_off = WORD + pad(key_size)
    val_len = int.from_bytes(body[val_off:val_off + WORD], "little")
    value = body[val_off + WORD:val_off + WORD + val_len]
    return key_len, key, value


def encode_body(key: bytes, value: bytes, key_size: int, value_size: int,
                tombstone: bool = False) -> bytes:
    """One slot body: what a writer publishes after the version word."""
    key_len = TOMBSTONE if tombstone else len(key)
    body = key_len.to_bytes(WORD, "little")
    body += key.ljust(pad(key_size), b"\0")
    body += len(value).to_bytes(WORD, "little")
    body += value.ljust(pad(value_size), b"\0")
    return body
