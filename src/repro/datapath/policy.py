"""Per-mapping data-path policy: which substrate runs an operation.

Three concrete modes plus the adaptive chooser:

* ``one_sided`` — the classic RStore path: the client drives every
  probe/lock/publish with one-sided READ/WRITE/CAS and the server CPU
  stays idle.
* ``server_op`` — the whole composite op (a probe chain, a counter
  burst) ships to the owning memory server over the RPC channel and is
  applied there against the arena; one round trip replaces a
  pointer-chasing conversation.
* ``remote_fetch`` — RFP-style: the server computes the result and
  deposits it into a per-client fetch buffer; the client picks it up
  with a one-sided READ, so large results never ride the (pickled,
  CPU-charged) message channel.

:class:`AdaptiveSelector` implements ``adaptive``: a per-op-class
EWMA of observed latency per mode, with deterministic round-robin
probing and hysteresis + patience so the choice cannot flap on noise.
It draws no randomness (repro-lint RL002: seeded replay must hold).
"""

from __future__ import annotations

__all__ = ["PathPolicy", "AdaptiveSelector"]


class PathPolicy:
    """The policy vocabulary (plain strings, picklable, config-able)."""

    ONE_SIDED = "one_sided"
    SERVER_OP = "server_op"
    REMOTE_FETCH = "remote_fetch"
    ADAPTIVE = "adaptive"

    #: the concrete substrates an op can actually run on
    MODES = (ONE_SIDED, SERVER_OP, REMOTE_FETCH)
    #: everything a mapping may be opened with
    POLICIES = MODES + (ADAPTIVE,)

    @classmethod
    def validate(cls, policy: str) -> str:
        if policy not in cls.POLICIES:
            raise ValueError(
                f"unknown path policy {policy!r} "
                f"(expected one of {', '.join(cls.POLICIES)})"
            )
        return policy


class _ClassState:
    """Selector state for one op class (get/put/multi_get/burst)."""

    __slots__ = ("ewma", "samples", "current", "streak", "count",
                 "probe_cursor")

    def __init__(self):
        #: mode -> smoothed latency (seconds); absent = never sampled
        self.ewma: dict[str, float] = {}
        #: mode -> warm samples folded in (drives bias correction)
        self.samples: dict[str, int] = {}
        self.current: str | None = None
        self.streak = 0
        self.count = 0
        self.probe_cursor = 0


class AdaptiveSelector:
    """Deterministic per-op-class mode chooser with hysteresis.

    ``choose`` returns the mode to run the next op on; ``observe``
    feeds the measured latency back.  Cold start samples every mode
    once (in a fixed order); afterwards the current best-by-EWMA mode
    serves, with every ``probe_every``-th op per class re-sampling a
    non-current mode round-robin so a regime shift is eventually seen.
    A switch requires ``patience`` consecutive observations in which
    some other mode beats the current one by more than ``hysteresis``
    (relative) — flapping between near-equal modes is impossible.
    """

    def __init__(self, modes=PathPolicy.MODES, probe_every: int = 32,
                 hysteresis: float = 0.2, patience: int = 3,
                 alpha: float = 0.3):
        if probe_every < 2:
            raise ValueError("probe_every must be at least 2")
        if not 0 <= hysteresis < 1:
            raise ValueError("hysteresis must be in [0, 1)")
        if patience < 1:
            raise ValueError("patience must be at least 1")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.modes = tuple(modes)
        self.probe_every = probe_every
        self.hysteresis = hysteresis
        self.patience = patience
        self.alpha = alpha
        self.switches = 0
        self._classes: dict[str, _ClassState] = {}

    def _state(self, op_class: str) -> _ClassState:
        st = self._classes.get(op_class)
        if st is None:
            st = self._classes[op_class] = _ClassState()
        return st

    def mode_for(self, op_class: str):
        """The currently preferred mode (None while still cold)."""
        return self._state(op_class).current

    def choose(self, op_class: str, modes=None) -> str:
        """The mode the next *op_class* operation should run on."""
        allowed = tuple(modes) if modes is not None else self.modes
        st = self._state(op_class)
        st.count += 1
        for mode in allowed:
            if mode not in st.ewma:
                return mode  # cold start: sample each mode once
        if st.current is None or st.current not in allowed:
            st.current = min(allowed, key=lambda m: st.ewma[m])
        if st.count % self.probe_every == 0 and len(allowed) > 1:
            others = [m for m in allowed if m != st.current]
            probe = others[st.probe_cursor % len(others)]
            st.probe_cursor += 1
            return probe
        return st.current

    def observe(self, op_class: str, mode: str, latency_s: float,
                cold: bool = False) -> None:
        """Feed one observed end-to-end latency back into the EWMA.

        A *cold* observation — the op paid a one-time setup cost such
        as a channel dial or a fetch-buffer allocation — is discarded:
        the selector ranks steady-state data-path cost, and a sample
        inflated by amortizable setup would poison a mode's EWMA for
        hundreds of operations.  A mode whose cold-start sample is
        dropped simply stays unsampled and is chosen again.
        """
        if cold:
            return
        st = self._state(op_class)
        prev = st.ewma.get(mode)
        n = st.samples.get(mode, 0) + 1
        st.samples[mode] = n
        # bias-corrected smoothing: the first few samples average as a
        # true mean (1/n weight) instead of letting sample #1 dominate
        # the estimate — a single deep-chain or contended op must not
        # misrank a mode for hundreds of operations
        alpha = max(self.alpha, 1.0 / n)
        st.ewma[mode] = (latency_s if prev is None
                         else prev + alpha * (latency_s - prev))
        if st.current is None:
            if all(m in st.ewma for m in self.modes):
                st.current = min(self.modes, key=lambda m: st.ewma[m])
            return
        best = min(st.ewma, key=lambda m: st.ewma[m])
        cur = st.ewma.get(st.current)
        if (best != st.current and cur is not None
                and st.ewma[best] < cur * (1 - self.hysteresis)):
            st.streak += 1
            if st.streak >= self.patience:
                st.current = best
                st.streak = 0
                self.switches += 1
        else:
            st.streak = 0
