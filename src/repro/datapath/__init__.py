"""Adaptive data-path selection: one-sided vs server-op vs remote-fetch.

Per "RDMA vs. RPC for Implementing Distributed Data Structures" the
winning substrate flips with op size, pointer-chasing depth, and
contention, and RFP shows server-computes/client-fetches beats both
for some shapes.  This package adds the two missing substrates and the
per-mapping policy that picks between them:

* :mod:`repro.datapath.policy` — :class:`PathPolicy` and the
  deterministic :class:`AdaptiveSelector`.
* :mod:`repro.datapath.ops` — the slot codec shared with ``repro.kv``.
* :mod:`repro.datapath.server_exec` — the server-side executor
  (``dp_exec`` handler); imported by :mod:`repro.core.server` only.
* :mod:`repro.datapath.router` — the client side: probe-run planning,
  fetch buffers, retry/fencing; imported lazily by the client.

This module re-exports only the dependency-free pieces so importing
``repro.datapath`` never drags in the RPC or client machinery.
"""

from repro.datapath.ops import slot_size
from repro.datapath.policy import AdaptiveSelector, PathPolicy

__all__ = ["PathPolicy", "AdaptiveSelector", "slot_size"]
