"""Client side of the server-op and remote-fetch data paths.

The :class:`DataPathRouter` plans a composite op (a kv probe chain, a
counter burst) against the current region descriptor, ships it to the
owning memory server(s) as ``dp_exec`` RPCs, and classifies the
outcome: busy slots back off and re-drive, stale epochs refresh the
descriptor and retry, dead channels redial — all bounded by the same
``data_retry_limit`` the one-sided path honours.

**Probe-run segmentation.**  A probe chain of up to ``probe_limit``
slots may span stripe boundaries; consecutive same-host slots group
into *runs* and each run is one ``dp_exec``.  A run answering
``("continue",)`` hands the chain to the next run, exactly as the
one-sided prober walks slot by slot.

**Remote fetch (RFP).**  Per server host, the router lazily allocates
a small fetch region *placed on that server*; a remote-fetch op asks
the server to deposit its (pickled) result there and returns a tiny
acknowledgement, and the client picks the payload up with a one-sided
READ — large results never ride the CPU-charged message channel.  A
per-host flag serializes buffer use; hosts whose placement hint could
not be honoured silently degrade to plain server-op.
"""

from __future__ import annotations

import pickle

from repro.coord.base import Backoff
from repro.core.client import _translated
from repro.core.errors import (
    RetryBudgetExceededError,
    RStoreError,
    StaleEpochError,
)
from repro.datapath import ops
from repro.rpc.channel import ChannelClosed
from repro.rpc.endpoint import RpcError, RpcRemoteError

__all__ = ["DataPathRouter"]

#: extra re-drives allowed for benign slot contention ("busy" replies)
#: on top of the fault retry budget — contention is not a fault
_BUSY_BUDGET = 256


class _BusySlot(Exception):
    """Internal: a server-op observed a locked slot; re-drive the op."""


class _FetchBuffer:
    """One per-server deposit region owned by this client."""

    __slots__ = ("mapping", "addr", "capacity", "usable", "busy", "waiters")

    def __init__(self, mapping, addr: int, capacity: int, usable: bool):
        self.mapping = mapping
        self.addr = addr
        self.capacity = capacity
        #: placement hint honoured — deposits actually land server-local
        self.usable = usable
        self.busy = False
        self.waiters: list = []


class DataPathRouter:
    """Plans and drives server-op / remote-fetch executions."""

    def __init__(self, client):
        self.client = client
        self.sim = client.sim
        self.config = client.config
        #: server host -> lazily opened fetch buffer
        self._fetch_bufs: dict[int, _FetchBuffer] = {}
        self._busy_backoff = Backoff.for_client(
            client, "datapath-busy", budget=_BUSY_BUDGET)
        self._redial_backoff = Backoff.for_client(client, "datapath-redial")
        _m = client.obs.metrics
        _host = client.nic.host.host_id
        self._m_server_ops = _m.counter("datapath.server_ops", host=_host)
        self._m_remote_fetches = _m.counter("datapath.remote_fetches",
                                            host=_host)
        self._m_busy_retries = _m.counter("datapath.busy_retries",
                                          host=_host)
        self._m_bytes_fetched = _m.counter("datapath.bytes_fetched",
                                           host=_host)

    # -- metrics -------------------------------------------------------------

    @property
    def server_ops(self) -> int:
        """Composite ops shipped to a memory server."""
        return self._m_server_ops.value

    @property
    def remote_fetches(self) -> int:
        """Server-op results picked up via the fetch buffer."""
        return self._m_remote_fetches.value

    @property
    def busy_retries(self) -> int:
        """Ops re-driven because a server-op found a locked slot."""
        return self._m_busy_retries.value

    # -- plumbing ------------------------------------------------------------

    def _request(self, op: str, mapping, **fields) -> dict:
        client = self.client
        req = {
            "op": op,
            "region": mapping.name,
            "shard": mapping.shard,
            "epoch": client._epochs.get(mapping.shard, 0),
            "actor": client._rsan_actor,
            "deposit": None,
        }
        req.update(fields)
        return req

    def _call(self, host_id: int, request: dict):
        """One ``dp_exec`` round trip (generator), redialing dead
        channels up to the data retry budget."""
        client = self.client
        for attempt in range(self.config.data_retry_limit + 1):
            rpc = yield from client._mem_channel(host_id)
            try:
                reply = yield from rpc.call("dp_exec", request)
            except RpcRemoteError as exc:
                raise _translated(exc) from None
            except (RpcError, ChannelClosed):
                client._mem_channel_drop(host_id)
                if attempt >= self.config.data_retry_limit:
                    raise
                yield from self._redial_backoff.pause()
                continue
            self._m_server_ops.inc()
            return reply
        raise RStoreError("unreachable")  # pragma: no cover

    def _refresh(self, mapping):
        """Stale-epoch recovery (generator): learn the shard's current
        epoch, refetch the descriptor, and retarget the mapping."""
        client = self.client
        client._m_retries_fenced.inc()
        stats = yield from client._master_call("cluster_stats",
                                               shard=mapping.shard)
        client._note_epoch(stats["epoch"], mapping.shard)
        client._meta_evict(mapping.name)
        mapping.desc = yield from client.lookup(mapping.name)

    def _locate_slot(self, desc, slot_off: int, slot_size: int):
        """``(host_id, arena_addr)`` of one slot (never straddles)."""
        for stripe, within, _take in desc.locate(slot_off, slot_size):
            return stripe.host_id, stripe.addr + within
        raise RStoreError(f"offset {slot_off} outside region {desc.name!r}")

    def _probe_runs(self, desc, store, base: int):
        """The probe chain as maximal same-host runs, in probe order."""
        runs: list[tuple[int, list]] = []
        for probe in range(store.probe_limit):
            index = (base + probe) % store.slots
            slot_off = index * store.slot_size
            host_id, addr = self._locate_slot(desc, slot_off,
                                              store.slot_size)
            if runs and runs[-1][0] == host_id:
                runs[-1][1].append((slot_off, addr))
            else:
                runs.append((host_id, [(slot_off, addr)]))
        return runs

    # -- remote-fetch buffers ------------------------------------------------

    def _open_fetch_buffer(self, server_host: int):
        """Allocate this client's deposit region on *server_host*
        (generator); marks it unusable if placement missed the hint."""
        client = self.client
        size = self.config.datapath_fetch_bytes
        name = f"dpfetch.h{client.nic.host.host_id}.s{server_host}"
        try:
            yield from client.alloc(name, size, stripe_size=size,
                                    preferred_host=server_host,
                                    replication=1)
        except RStoreError:
            # already allocated (an earlier router on this host); map it
            pass
        mapping = yield from client.map(name)
        host_id, addr = self._locate_slot(mapping.desc, 0, size)
        client.setup_events += 1
        return _FetchBuffer(mapping, addr, size,
                            usable=(host_id == server_host))

    def _fetch_acquire(self, server_host: int):
        """Exclusive use of the host's fetch buffer (generator); returns
        ``None`` when deposits cannot land server-local."""
        buf = self._fetch_bufs.get(server_host)
        if buf is None:
            buf = yield from self._open_fetch_buffer(server_host)
            self._fetch_bufs[server_host] = buf
        if not buf.usable:
            return None
        while buf.busy:
            event = self.sim.event()
            buf.waiters.append(event)
            yield event
        buf.busy = True
        return buf

    @staticmethod
    def _fetch_release(buf) -> None:
        if buf is None:
            return
        buf.busy = False
        if buf.waiters:
            buf.waiters.pop(0).succeed(None)

    def _collect(self, buf, reply):
        """Resolve a deposited reply (generator): one-sided pickup READ
        of the fetch buffer, then unpickle the real result."""
        if reply[0] != "deposited":
            return reply
        nbytes = reply[1]
        client = self.client
        # the deposit write happened before the RPC reply was sent and
        # the buffer is exclusively ours until released: benign by
        # construction, like the coordination internals
        with client.rsan.exempt(client._rsan_actor):
            blob = yield from buf.mapping.read(0, nbytes)
        self._m_remote_fetches.inc()
        self._m_bytes_fetched.inc(nbytes)
        return pickle.loads(bytes(blob))

    def _exec(self, host_id: int, request: dict, fetch: bool):
        """One composite op against one host (generator), with the
        optional deposit round trip folded in."""
        buf = None
        if fetch:
            buf = yield from self._fetch_acquire(host_id)
            if buf is not None:
                request = dict(request, deposit=(buf.addr, buf.capacity))
        try:
            reply = yield from self._call(host_id, request)
            result = yield from self._collect(buf, reply)
        finally:
            self._fetch_release(buf)
        return result

    # -- kv operations -------------------------------------------------------

    def kv_get(self, store, key: bytes, fetch: bool = False):
        """Server-side probe-chain lookup (generator)."""
        base = ops.hash64(key)
        self._busy_backoff.reset()
        for _attempt in range(self.config.data_retry_limit + _BUSY_BUDGET):
            try:
                result = yield from self._kv_get_once(store, base, key,
                                                      fetch)
                return result
            except _BusySlot:
                self._m_busy_retries.inc()
                yield from self._busy_backoff.pause()
            except StaleEpochError:
                yield from self._refresh(store.mapping)
        raise RetryBudgetExceededError(
            f"kv get of {key!r} kept racing writers")

    def _kv_get_once(self, store, base: int, key: bytes, fetch: bool):
        for host_id, slots in self._probe_runs(store.mapping.desc, store,
                                               base):
            request = self._request(
                "kv_get", store.mapping, key=key, slots=slots,
                key_size=store.key_size, value_size=store.value_size,
            )
            reply = yield from self._exec(host_id, request, fetch)
            tag = reply[0]
            if tag == "hit":
                return reply[1]
            if tag == "free":
                return None
            if tag == "busy":
                raise _BusySlot()
            # ("continue",): the chain spills into the next run
        return None  # probe window exhausted without a match

    def kv_put(self, store, key: bytes, value: bytes, fetch: bool = False):
        """Server-side probe-chain store (generator).

        ``fetch`` degrades to plain server-op — a store's reply is a
        status tuple, so there is nothing worth depositing.
        """
        base = ops.hash64(key)
        self._busy_backoff.reset()
        for _attempt in range(self.config.data_retry_limit + _BUSY_BUDGET):
            try:
                stored = yield from self._kv_put_once(store, base, key,
                                                      value)
                return stored
            except _BusySlot:
                self._m_busy_retries.inc()
                yield from self._busy_backoff.pause()
            except StaleEpochError:
                yield from self._refresh(store.mapping)
        raise RetryBudgetExceededError(
            f"kv put of {key!r} kept racing writers")

    def _kv_put_once(self, store, base: int, key: bytes, value: bytes):
        for host_id, slots in self._probe_runs(store.mapping.desc, store,
                                               base):
            request = self._request(
                "kv_put", store.mapping, key=key, value=value, slots=slots,
                key_size=store.key_size, value_size=store.value_size,
            )
            reply = yield from self._call(host_id, request)
            tag = reply[0]
            if tag == "stored":
                return True
            if tag == "busy":
                raise _BusySlot()
            # ("continue",): no eligible slot in this run
        return False  # probe window exhausted: table full for this key

    def kv_multi_get(self, store, keys: list, fetch: bool = False):
        """Batched server-side lookups (generator), values in key order.

        Keys whose entire probe chain lives on one host batch into one
        ``dp_exec`` per host; chain-straddling keys fall back to
        :meth:`kv_get`.  Busy keys re-drive individually.
        """
        results: list = [None] * len(keys)
        per_host: dict[int, list] = {}
        scattered: list[int] = []
        desc = store.mapping.desc
        for i, key in enumerate(keys):
            runs = self._probe_runs(desc, store, ops.hash64(key))
            if len(runs) == 1:
                host_id, slots = runs[0]
                per_host.setdefault(host_id, []).append((i, key, slots))
            else:
                scattered.append(i)
        for host_id, batch in per_host.items():
            request = self._request(
                "kv_multi_get", store.mapping,
                entries=[(key, slots) for _i, key, slots in batch],
                key_size=store.key_size, value_size=store.value_size,
            )
            reply = yield from self._exec(host_id, request, fetch)
            for (i, key, _slots), outcome in zip(batch, reply[1]):
                if outcome[0] == "hit":
                    results[i] = outcome[1]
                elif outcome[0] == "busy":
                    scattered.append(i)  # re-drive with busy handling
        for i in scattered:
            results[i] = yield from self.kv_get(store, keys[i], fetch=fetch)
        return results

    # -- counters ------------------------------------------------------------

    def counter_burst(self, counter, deltas: list, fetch: bool = False):
        """A burst of FAA deltas applied server-side (generator);
        returns the post-add values in delta order."""
        mapping = counter.mapping
        for _attempt in range(self.config.data_retry_limit + 1):
            host_id, addr = self._locate_slot(mapping.desc, counter.offset,
                                              ops.WORD)
            request = self._request("counter_burst", mapping, addr=addr,
                                    deltas=list(deltas))
            try:
                reply = yield from self._exec(host_id, request, fetch)
            except StaleEpochError:
                yield from self._refresh(mapping)
                continue
            return reply[1]
        raise RetryBudgetExceededError(
            f"counter burst on {mapping.name!r} kept hitting stale epochs")
