"""Server-side execution of composite data-path operations.

The ``dp_exec`` handler a :class:`~repro.core.server.MemoryServer`
registers on its RPC endpoint.  A client ships one *composite* op — a
kv probe chain, a counter burst — and the server applies it against
the arena, replacing a multi-round one-sided conversation with a
single round trip.

Correctness relies on two disciplines:

* **Atomic application.**  Simulation code between yields runs
  atomically in simulated time, so every slot snapshot is read in one
  yield-free block (never torn) and every mutation re-validates and
  writes in one yield-free block (never interleaved with a racing
  one-sided writer).  CPU time is charged *before* each such block.
* **Equivalent happens-before edges.**  A server-op emits exactly the
  sync edges its one-sided equivalent would — a validated read
  acquires the slot's published version key, a store acquires the
  old version and releases the new one — on the *client's* RSan actor
  id, so mixing modes under the sanitizer stays race-clean and
  mode-equivalent.

Epoch fencing mirrors the NIC's WR-level fence: requests are stamped
with the client's observed shard epoch and a fenced request raises
:class:`~repro.core.errors.StaleEpochError` before touching memory.

This module is *data-plane only*: repro-lint RL007 forbids server-op
handlers from importing master/RPC/shard machinery or dialing a
control endpoint — the server that registers the handler owns the
channel; the executor only ever touches the arena.
"""

from __future__ import annotations

import pickle

from repro.core.errors import RStoreError, StaleEpochError
from repro.datapath import ops
from repro.sanitize.rsan import rsan_for

__all__ = ["ServerOpExecutor"]

#: results that carry a payload worth depositing; pure statuses always
#: return inline (a deposited "busy" would waste the pickup READ)
_DEPOSITABLE = ("hit", "multi", "counted")


class ServerOpExecutor:
    """Applies composite client ops against one server's arena."""

    def __init__(self, server):
        self.server = server
        self.sim = server.sim
        self.nic = server.nic
        self.cpu = server.nic.host.cpu
        self.mr = server.arena_mr
        self.rsan = rsan_for(server.sim)
        _m = server.nic.obs.metrics
        _host = server.host_id
        self._m_applied = _m.counter("datapath.server_ops_applied",
                                     host=_host)
        self._m_deposited = _m.counter("datapath.server_bytes_deposited",
                                       host=_host)
        self._ops = {
            "kv_get": self._kv_get,
            "kv_put": self._kv_put,
            "kv_multi_get": self._kv_multi_get,
            "counter_burst": self._counter_burst,
        }

    # -- entry point ---------------------------------------------------------

    def execute(self, request: dict):
        """The ``dp_exec`` RPC handler (generator)."""
        shard = request.get("shard", 0)
        epoch = request.get("epoch", 0)
        if self.nic.fenced(shard, epoch):
            raise StaleEpochError(
                f"server-op stamped epoch {epoch} is behind shard "
                f"{shard}'s fence {self.nic.fence_for(shard)}"
            )
        handler = self._ops.get(request.get("op"))
        if handler is None:
            raise RStoreError(f"unknown server op {request.get('op')!r}")
        result = yield from handler(request)
        self._m_applied.inc()
        deposit = request.get("deposit")
        if deposit is not None and result[0] in _DEPOSITABLE:
            result = yield from self._deposit(deposit, result)
        return result

    # -- helpers -------------------------------------------------------------

    def _snapshot(self, addr: int, length: int) -> bytes:
        """Read arena bytes with no yield — atomic in simulated time."""
        return self.mr.buffer.read(self.mr.offset_of(addr), length)

    def _sync_key(self, req: dict, slot_off: int, version: int) -> tuple:
        # the SeqLock view's key: region name + record offset + version
        return ("seqlock", req["region"], slot_off, version)

    def _deposit(self, deposit, result):
        """Write the pickled result into the client's fetch buffer.

        The RPC reply is sent only after this handler returns, so the
        deposit is durably in place before the client's one-sided
        pickup READ can possibly be issued.
        """
        addr, capacity = deposit
        blob = pickle.dumps(result)
        if len(blob) > capacity:
            raise RStoreError(
                f"result of {len(blob)} bytes exceeds the fetch buffer "
                f"({capacity} bytes) — raise datapath_fetch_bytes"
            )
        yield from self.cpu.copy(len(blob))
        self.mr.buffer.write(self.mr.offset_of(addr), blob)
        self._m_deposited.inc(len(blob))
        return ("deposited", len(blob))

    # -- kv ops --------------------------------------------------------------

    def _probe(self, req: dict, key: bytes, slots):
        """Walk one probe run (generator).

        This is where server-side execution earns its keep on deep
        chains: the prober touches only the slot *header* (version +
        key) per hop — local memory, a few dozen bytes — and pays for
        the value exactly once, on the matching slot.  The one-sided
        equivalent must READ the full slot every hop because it cannot
        know a slot misses until the bytes arrive.

        Yields CPU charges; returns one of::

            ("hit", slot_off, version, value)   key found, read validated
            ("free", ...)                       never-used slot ends chain
            ("busy",)                           a writer holds a slot word
            ("continue",)                       run exhausted, chain goes on
        """
        key_size = req["key_size"]
        head = ops.WORD + ops.WORD + ops.pad(key_size)
        size = ops.slot_size(key_size, req["value_size"])
        for slot_off, addr in slots:
            yield from self.cpu.copy(head)
            header = self._snapshot(addr, head)  # consistent: no yield
            version = int.from_bytes(header[:ops.WORD], "little")
            if version % 2 == 1:
                return ("busy",)
            key_len = int.from_bytes(header[ops.WORD:2 * ops.WORD],
                                     "little")
            slot_key = (header[2 * ops.WORD:2 * ops.WORD + key_len]
                        if key_len not in (0, ops.TOMBSTONE) else b"")
            if key_len != 0 and (key_len == ops.TOMBSTONE
                                 or slot_key != key):
                # validated observation of a non-matching slot: the
                # one-sided prober acquires its version key too
                self.rsan.sync_acquire(
                    req["actor"], self._sync_key(req, slot_off, version))
                continue  # occupied by someone else: keep probing
            if key_len == 0:
                # never-used slot ends the chain; its version key is
                # what the one-sided prober would have validated
                self.rsan.sync_acquire(
                    req["actor"], self._sync_key(req, slot_off, version))
                return ("free", slot_off, version, None)
            # key match: now pay for the value and re-validate — the
            # CPU charge yields, so the slot may have changed under us
            yield from self.cpu.copy(size - head)
            blob = self._snapshot(addr, size)  # consistent: no yield
            cur_version = int.from_bytes(blob[:ops.WORD], "little")
            if cur_version % 2 == 1 or cur_version != version:
                return ("busy",)  # racing writer: caller re-drives
            # the one-sided prober acquires the validated snapshot's
            # version key (SeqLock.read) — mirror it at the validated
            # instant
            self.rsan.sync_acquire(req["actor"],
                                   self._sync_key(req, slot_off, version))
            _len, _key, value = ops.parse_body(blob[ops.WORD:], key_size)
            return ("hit", slot_off, version, value)
        return ("continue",)

    def _kv_get(self, req: dict):
        outcome = yield from self._probe(req, req["key"], req["slots"])
        if outcome[0] == "hit":
            return ("hit", outcome[3])
        if outcome[0] == "free":
            return ("free",)
        return outcome  # ("busy",) or ("continue",)

    def _kv_put(self, req: dict):
        key, value = req["key"], req["value"]
        key_size, value_size = req["key_size"], req["value_size"]
        size = ops.slot_size(key_size, value_size)
        body = ops.encode_body(key, value, key_size, value_size,
                               tombstone=req.get("tombstone", False))
        for slot_off, addr in req["slots"]:
            yield from self.cpu.copy(size)
            blob = self._snapshot(addr, size)
            version = int.from_bytes(blob[:ops.WORD], "little")
            if version % 2 == 1:
                return ("busy",)
            self.rsan.sync_acquire(req["actor"],
                                   self._sync_key(req, slot_off, version))
            key_len, slot_key, _val = ops.parse_body(blob[ops.WORD:],
                                                     key_size)
            if key_len not in (0, ops.TOMBSTONE) and slot_key != key:
                continue  # occupied by another key: keep probing
            # claim this slot.  Charge the publish copy first (it
            # yields), then re-validate + write in one atomic block.
            yield from self.cpu.copy(size)
            blob = self._snapshot(addr, size)
            cur_version = int.from_bytes(blob[:ops.WORD], "little")
            if cur_version % 2 == 1:
                return ("busy",)
            cur_len, cur_key, _val = ops.parse_body(blob[ops.WORD:],
                                                    key_size)
            if cur_len not in (0, ops.TOMBSTONE) and cur_key != key:
                return ("busy",)  # a racer claimed it for another key
            new_version = cur_version + 2
            actor = req["actor"]
            # lock + publish edges at the apply instant — identical to
            # the one-sided try_lock/publish pair, with no observable
            # odd-version window because nothing yields in between
            self.rsan.sync_acquire(
                actor, self._sync_key(req, slot_off, cur_version))
            self.rsan.sync_release(
                actor, self._sync_key(req, slot_off, new_version))
            self.mr.buffer.write(
                self.mr.offset_of(addr),
                new_version.to_bytes(ops.WORD, "little") + body,
            )
            return ("stored", new_version)
        return ("continue",)

    def _kv_multi_get(self, req: dict):
        """Batched lookups whose whole probe chain lives on this host."""
        results = []
        for key, slots in req["entries"]:
            sub = dict(req, key=key, slots=slots)
            outcome = yield from self._kv_get(sub)
            if outcome[0] == "free" or outcome[0] == "continue":
                # a full single-host chain that ends or exhausts is a
                # definitive miss — same verdict the one-sided prober
                # reaches after its probe window
                outcome = ("miss",)
            results.append(outcome)
        return ("multi", results)

    # -- counters ------------------------------------------------------------

    def _counter_burst(self, req: dict):
        """Apply a burst of FAA deltas to one counter word.

        One read-modify-write, atomic in simulated time — equivalent
        to the deltas landing back-to-back on the remote FAA unit.
        Counter words are RSan-exempt on the one-sided path, so no
        sync edges are emitted here either.
        """
        deltas = req["deltas"]
        yield from self.cpu.copy(ops.WORD * max(1, len(deltas)))
        offset = self.mr.offset_of(req["addr"])
        word = int.from_bytes(self.mr.buffer.read(offset, ops.WORD),
                              "little")
        values = []
        for delta in deltas:
            word = (word + delta) % (1 << 64)
            values.append(word)
        self.mr.buffer.write(offset, word.to_bytes(ops.WORD, "little"))
        return ("counted", values)
