"""A key-value layer built purely on RStore's memory-like API.

The abstract positions RStore's API as general enough to build systems
on ("a distributed graph processing framework and a Key-Value sorter");
this package adds the era's third canonical workload — a distributed
hash table in the style of Pilaf/FaRM, built with **no server code at
all**:

* the table is one RStore region, slots aligned so no slot straddles a
  stripe;
* ``get`` is optimistic: one one-sided read, validated by re-reading
  the slot's version word;
* ``put``/``delete`` lock a slot with a remote compare-and-swap on the
  version word (odd = locked), write, then unlock with a version bump.

Multiple clients on different machines operate on the same table
concurrently; the memory servers never execute a single instruction on
its behalf.
"""

from repro.kv.hashkv import KvError, KvFullError, RKVStore

__all__ = ["KvError", "KvFullError", "RKVStore"]
