"""One-sided distributed hash table over an RStore region.

Slot layout (all fields 8-byte aligned)::

    [ version 8B ][ key_len 8B ][ key ... ][ val_len 8B ][ value ... ]

``version`` semantics:

* ``0``     — slot never used
* even > 0  — stable; bumped by 2 on every successful mutation
* odd       — locked by a writer (CAS'd from the even value)

Readers never lock: a ``get`` reads the whole slot in one one-sided
read, then validates by re-reading the version word; if it changed (or
was odd), the read raced a writer and retries — the classic optimistic
protocol RDMA stores use.  Writers serialize per slot through a remote
CAS.  Deletes leave a tombstone (``key_len`` of ``2**63-1``) so linear
probing keeps finding later entries.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from repro.core.client import Mapping, RStoreClient
from repro.core.errors import RStoreError

__all__ = ["RKVStore", "KvError", "KvFullError"]

_WORD = 8
_TOMBSTONE = (1 << 63) - 1
#: linear-probe window before declaring the table full for a key
_PROBE_LIMIT = 16
#: optimistic-read retries before giving up (a writer livelocking us
#: this long means something is deeply wrong in simulation)
_READ_RETRIES = 64


class KvError(RStoreError):
    """Key-value layer failure."""


class KvFullError(KvError):
    """No free slot within the probe window for this key."""


def _hash64(key: bytes) -> int:
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(),
                          "little")


class RKVStore:
    """A fixed-capacity hash table shared by any number of clients."""

    def __init__(self, client: RStoreClient, name: str, mapping: Mapping,
                 slots: int, key_size: int, value_size: int):
        self.client = client
        self.name = name
        self.mapping = mapping
        self.slots = slots
        self.key_size = key_size
        self.value_size = value_size
        self.slot_size = self._slot_size(key_size, value_size)
        # -- client-local metrics
        self.read_retries = 0
        self.lock_retries = 0

    # -- construction ----------------------------------------------------------

    @staticmethod
    def _slot_size(key_size: int, value_size: int) -> int:
        def pad(n):
            return -(-n // _WORD) * _WORD

        return _WORD + _WORD + pad(key_size) + _WORD + pad(value_size)

    @classmethod
    def create(cls, client: RStoreClient, name: str, slots: int,
               key_size: int = 32, value_size: int = 128):
        """Allocate and map a fresh table (generator)."""
        if slots < 1:
            raise KvError("need at least one slot")
        slot_size = cls._slot_size(key_size, value_size)
        # stripe on a slot boundary so no slot (and no version word)
        # ever straddles two memory servers
        base_stripe = max(client.config.stripe_size, slot_size)
        stripe_size = (base_stripe // slot_size) * slot_size
        region_size = slots * slot_size
        yield from client.alloc(f"kv.{name}", region_size,
                                stripe_size=stripe_size)
        mapping = yield from client.map(f"kv.{name}")
        store = cls(client, name, mapping, slots, key_size, value_size)
        yield from client.notify(
            f"kv.{name}.meta",
            {"slots": slots, "key_size": key_size, "value_size": value_size},
        )
        return store

    @classmethod
    def open(cls, client: RStoreClient, name: str):
        """Map an existing table from another client (generator)."""
        meta = yield from client.wait_note(f"kv.{name}.meta")
        mapping = yield from client.map(f"kv.{name}")
        return cls(client, name, mapping, meta["slots"], meta["key_size"],
                   meta["value_size"])

    # -- helpers -----------------------------------------------------------------

    def _check_key(self, key: bytes) -> None:
        if not key:
            raise KvError("empty keys are not allowed")
        if len(key) > self.key_size:
            raise KvError(
                f"key of {len(key)} bytes exceeds slot key size "
                f"{self.key_size}"
            )

    def _slot_offset(self, index: int) -> int:
        return (index % self.slots) * self.slot_size

    def _parse(self, blob: bytes):
        version = int.from_bytes(blob[0:8], "little")
        key_len = int.from_bytes(blob[8:16], "little")
        key_area = 8 + 8
        pad_key = -(-self.key_size // _WORD) * _WORD
        key = blob[key_area : key_area + key_len] if key_len not in (
            0, _TOMBSTONE
        ) else b""
        val_off = key_area + pad_key
        val_len = int.from_bytes(blob[val_off : val_off + 8], "little")
        value = blob[val_off + 8 : val_off + 8 + val_len]
        return version, key_len, key, value

    def _encode_body(self, key: bytes, value: bytes, tombstone=False) -> bytes:
        pad_key = -(-self.key_size // _WORD) * _WORD
        pad_val = -(-self.value_size // _WORD) * _WORD
        key_len = _TOMBSTONE if tombstone else len(key)
        body = key_len.to_bytes(8, "little")
        body += key.ljust(pad_key, b"\0")
        body += len(value).to_bytes(8, "little")
        body += value.ljust(pad_val, b"\0")
        return body

    def _read_slot(self, index: int):
        """Optimistically read one consistent slot snapshot (generator)."""
        offset = self._slot_offset(index)
        for _attempt in range(_READ_RETRIES):
            blob = yield from self.mapping.read(offset, self.slot_size)
            version, key_len, key, value = self._parse(blob)
            if version % 2 == 1:
                self.read_retries += 1
                continue
            check = yield from self.mapping.read(offset, _WORD)
            if int.from_bytes(check, "little") == version:
                return version, key_len, key, value
            self.read_retries += 1
        raise KvError(f"slot {index} kept changing under {_READ_RETRIES} reads")

    def _lock_slot(self, index: int, expected_version: int):
        """Try to CAS-lock a slot (generator); returns success."""
        offset = self._slot_offset(index)
        old = yield from self.mapping.cas(
            offset, expected_version, expected_version + 1
        )
        if old != expected_version:
            self.lock_retries += 1
            return False
        return True

    def _unlock_slot(self, index: int, locked_version: int):
        """Publish the new contents: version -> next even (generator)."""
        assert locked_version % 2 == 1, "unlocking a slot we never locked"
        offset = self._slot_offset(index)
        new_version = locked_version + 1
        yield from self.mapping.write(
            offset, new_version.to_bytes(8, "little")
        )

    # -- the API -------------------------------------------------------------------

    def put(self, key: bytes, value: bytes):
        """Insert or overwrite (generator)."""
        self._check_key(key)
        if len(value) > self.value_size:
            raise KvError(
                f"value of {len(value)} bytes exceeds slot value size "
                f"{self.value_size}"
            )
        base = _hash64(key)
        while True:
            target = None
            for probe in range(_PROBE_LIMIT):
                index = (base + probe) % self.slots
                version, key_len, slot_key, _v = yield from self._read_slot(index)
                if key_len == 0 or key_len == _TOMBSTONE or slot_key == key:
                    target = (index, version)
                    break
            if target is None:
                raise KvFullError(
                    f"no slot for key within {_PROBE_LIMIT} probes"
                )
            index, version = target
            locked = yield from self._lock_slot(index, version)
            if not locked:
                continue  # lost the race; re-probe from scratch
            # guard against a racing writer having claimed the slot for
            # a different key between our read and our lock
            offset = self._slot_offset(index)
            blob = yield from self.mapping.read(offset, self.slot_size)
            _v, cur_len, cur_key, _val = self._parse(blob)
            if cur_len not in (0, _TOMBSTONE) and cur_key != key:
                # a racing writer claimed this slot for another key
                # between our probe and our lock: restore the original
                # version (contents untouched) and re-probe
                yield from self.mapping.write(
                    offset, version.to_bytes(8, "little")
                )
                continue
            yield from self.mapping.write(
                offset + _WORD, self._encode_body(key, value)
            )
            yield from self._unlock_slot(index, version + 1)
            return

    def get(self, key: bytes):
        """Lookup (generator); returns the value or ``None``."""
        self._check_key(key)
        base = _hash64(key)
        for probe in range(_PROBE_LIMIT):
            index = (base + probe) % self.slots
            _version, key_len, slot_key, value = yield from self._read_slot(index)
            if key_len == 0:
                return None  # never-used slot terminates the probe chain
            if key_len == _TOMBSTONE:
                continue
            if slot_key == key:
                return value
        return None

    def delete(self, key: bytes):
        """Remove (generator); returns whether the key existed."""
        self._check_key(key)
        base = _hash64(key)
        while True:
            found = None
            for probe in range(_PROBE_LIMIT):
                index = (base + probe) % self.slots
                version, key_len, slot_key, _v = yield from self._read_slot(index)
                if key_len == 0:
                    return False
                if key_len != _TOMBSTONE and slot_key == key:
                    found = (index, version)
                    break
            if found is None:
                return False
            index, version = found
            locked = yield from self._lock_slot(index, version)
            if not locked:
                continue
            offset = self._slot_offset(index)
            yield from self.mapping.write(
                offset + _WORD, self._encode_body(b"", b"", tombstone=True)
            )
            yield from self._unlock_slot(index, version + 1)
            return True

    def contains(self, key: bytes):
        """Membership test (generator)."""
        value = yield from self.get(key)
        return value is not None
