"""One-sided distributed hash table over an RStore region.

Slot layout (all fields 8-byte aligned)::

    [ version 8B ][ key_len 8B ][ key ... ][ val_len 8B ][ value ... ]

Each slot is one :class:`~repro.coord.SeqLock` record: the version
word carries the writer lock (odd = locked) and the optimistic-read
validation (readers snapshot the slot, then re-check the word).  The
protocol used to be inlined here; it now lives in ``repro.coord`` and
this table is its heaviest user — one SeqLock view per slot, writer
contention paced by the shared :class:`~repro.coord.Backoff`
discipline.  Deletes leave a tombstone (``key_len`` of ``2**63-1``) so
linear probing keeps finding later entries.
"""

from __future__ import annotations

from repro.coord import Backoff, CoordError, SeqLock
from repro.core.client import Mapping, RStoreClient
from repro.core.errors import RStoreError
from repro.datapath import ops
from repro.datapath.policy import AdaptiveSelector, PathPolicy

__all__ = ["RKVStore", "KvError", "KvFullError"]

_WORD = ops.WORD
_TOMBSTONE = ops.TOMBSTONE
#: linear-probe window before declaring the table full for a key
_PROBE_LIMIT = 16
#: optimistic-read retries before giving up (a writer livelocking us
#: this long means something is deeply wrong in simulation)
_READ_RETRIES = 64

#: store ops never remote-fetch: a put's reply is a status tuple, so
#: the deposit path has nothing to save over plain server-op
_PUT_MODES = (PathPolicy.ONE_SIDED, PathPolicy.SERVER_OP)


class KvError(RStoreError):
    """Key-value layer failure."""


class KvFullError(KvError):
    """No free slot within the probe window for this key."""


#: module-level alias kept for the txn/baseline importers
_hash64 = ops.hash64


class RKVStore:
    """A fixed-capacity hash table shared by any number of clients."""

    #: linear-probe window, exposed for the data-path router's planner
    probe_limit = _PROBE_LIMIT

    def __init__(self, client: RStoreClient, name: str, mapping: Mapping,
                 slots: int, key_size: int, value_size: int):
        self.client = client
        self.name = name
        self.mapping = mapping
        self.slots = slots
        self.key_size = key_size
        self.value_size = value_size
        self.slot_size = self._slot_size(key_size, value_size)
        self._backoff = Backoff.for_client(client, f"kv-{name}")
        cfg = client.config
        #: per-op-class mode chooser, only under the adaptive policy
        self._selector = None
        if mapping.path_policy == PathPolicy.ADAPTIVE:
            self._selector = AdaptiveSelector(
                probe_every=cfg.datapath_probe_every,
                hysteresis=cfg.datapath_hysteresis,
                patience=cfg.datapath_patience,
                alpha=cfg.datapath_ewma_alpha,
            )
        # -- client-local metrics
        _labels = dict(table=name, host=client.nic.host.host_id)
        self._m_read_retries = client.obs.metrics.counter(
            "kv.read_retries", **_labels)
        self._m_lock_retries = client.obs.metrics.counter(
            "kv.lock_retries", **_labels)

    @property
    def read_retries(self) -> int:
        """Slot snapshots rerun because a writer raced the read."""
        return int(self._m_read_retries.value)

    @property
    def lock_retries(self) -> int:
        """Writer lock attempts that lost the version race."""
        return int(self._m_lock_retries.value)

    # -- construction ----------------------------------------------------------

    @staticmethod
    def _slot_size(key_size: int, value_size: int) -> int:
        return ops.slot_size(key_size, value_size)

    @classmethod
    def create(cls, client: RStoreClient, name: str, slots: int,
               key_size: int = 32, value_size: int = 128,
               path_policy: str = None):
        """Allocate and map a fresh table (generator)."""
        if slots < 1:
            raise KvError("need at least one slot")
        slot_size = cls._slot_size(key_size, value_size)
        # stripe on a slot boundary so no slot (and no version word)
        # ever straddles two memory servers
        base_stripe = max(client.config.stripe_size, slot_size)
        stripe_size = (base_stripe // slot_size) * slot_size
        region_size = slots * slot_size
        yield from client.alloc(f"kv.{name}", region_size,
                                stripe_size=stripe_size)
        mapping = yield from client.map(f"kv.{name}",
                                        path_policy=path_policy)
        store = cls(client, name, mapping, slots, key_size, value_size)
        yield from client.notify(
            f"kv.{name}.meta",
            {"slots": slots, "key_size": key_size, "value_size": value_size},
        )
        return store

    @classmethod
    def open(cls, client: RStoreClient, name: str, path_policy: str = None):
        """Map an existing table from another client (generator)."""
        meta = yield from client.wait_note(f"kv.{name}.meta")
        mapping = yield from client.map(f"kv.{name}",
                                        path_policy=path_policy)
        return cls(client, name, mapping, meta["slots"], meta["key_size"],
                   meta["value_size"])

    # -- helpers -----------------------------------------------------------------

    def _check_key(self, key: bytes) -> None:
        if not key:
            raise KvError("empty keys are not allowed")
        if len(key) > self.key_size:
            raise KvError(
                f"key of {len(key)} bytes exceeds slot key size "
                f"{self.key_size}"
            )

    def _slot_offset(self, index: int) -> int:
        return (index % self.slots) * self.slot_size

    def slot_lock(self, index: int) -> SeqLock:
        """The SeqLock view over one slot (cheap, created per use).

        Public because the transaction runtime (:mod:`repro.txn`)
        locks and publishes slots through the same per-slot version
        metadata the table's own writers use.
        """
        return SeqLock(
            self.mapping,
            self._slot_offset(index),
            self.slot_size - _WORD,
            max_read_retries=_READ_RETRIES,
        )

    # kept for callers written against the pre-txn private name
    _slot_lock = slot_lock

    def _parse_body(self, body: bytes):
        """Split a slot body (everything after the version word)."""
        return ops.parse_body(body, self.key_size)

    def _encode_body(self, key: bytes, value: bytes, tombstone=False) -> bytes:
        return ops.encode_body(key, value, self.key_size, self.value_size,
                               tombstone=tombstone)

    def snapshot_slot(self, index: int):
        """One raw slot snapshot in a single one-sided READ (generator).

        Returns ``(version, key_len, key, value)``.  The version may be
        odd (a writer is mid-publish) and the snapshot is *unvalidated*
        — transactional readers (:mod:`repro.txn`) re-check the version
        word at commit time instead of paying a validation read here.
        A single READ of one slot is internally consistent: slots never
        straddle stripes, so the snapshot lands as one DMA.
        """
        blob = yield from self.mapping.read(
            self._slot_offset(index), self.slot_size
        )
        version = int.from_bytes(blob[:_WORD], "little")
        key_len, key, value = self._parse_body(blob[_WORD:])
        return version, key_len, key, value

    def _read_slot(self, index: int):
        """Optimistically read one consistent slot snapshot (generator)."""
        lock = self._slot_lock(index)
        # slot views share one registry counter per slot, so fold in the
        # *delta* this view added, not its cumulative value
        before = lock.read_retries
        try:
            version, body = yield from lock.read()
        except CoordError as exc:
            raise KvError(
                f"slot {index} kept changing under {_READ_RETRIES} reads"
            ) from exc
        finally:
            self._m_read_retries.inc(lock.read_retries - before)
        key_len, key, value = self._parse_body(body)
        return version, key_len, key, value

    # -- the API -------------------------------------------------------------------

    def txn(self, label: str = None, retries: int = None,
            deadline: float = None):
        """A transaction runtime bound to this table's client.

        Returns a :class:`repro.txn.TxnRuntime`; transactions started
        from it may span this table, other tables, and raw SeqLock
        records — see :mod:`repro.txn`.
        """
        from repro.txn import TxnRuntime  # deferred: txn imports kv

        return TxnRuntime(
            self.client,
            label=label if label is not None else f"kv-{self.name}",
            retries=retries,
            deadline=deadline,
        )

    # -- mode dispatch (see repro.datapath) ----------------------------------

    def _pick(self, op_class: str, modes=PathPolicy.MODES):
        """``(mode, token)`` for the next *op_class* operation; the
        timing token is only taken under the adaptive policy."""
        policy = self.mapping.path_policy
        if policy == PathPolicy.ADAPTIVE:
            return (self._selector.choose(op_class, modes),
                    (self.client.sim.now, self.client.setup_events))
        return policy, None

    def _done(self, op_class: str, mode: str, token) -> None:
        if token is not None:
            started_at, setup_before = token
            self._selector.observe(
                op_class, mode, self.client.sim.now - started_at,
                cold=self.client.setup_events != setup_before,
            )

    def put(self, key: bytes, value: bytes):
        """Insert or overwrite (generator)."""
        self._check_key(key)
        if len(value) > self.value_size:
            raise KvError(
                f"value of {len(value)} bytes exceeds slot value size "
                f"{self.value_size}"
            )
        mode, started_at = self._pick("put", modes=_PUT_MODES)
        if mode == PathPolicy.ONE_SIDED:
            yield from self._put_one_sided(key, value)
        else:
            stored = yield from self.client.datapath.kv_put(self, key, value)
            if not stored:
                raise KvFullError(
                    f"no slot for key within {_PROBE_LIMIT} probes"
                )
        self._done("put", mode, started_at)

    def _put_one_sided(self, key: bytes, value: bytes):
        base = _hash64(key)
        self._backoff.reset()
        while True:
            target = None
            for probe in range(_PROBE_LIMIT):
                index = (base + probe) % self.slots
                version, key_len, slot_key, _v = yield from self._read_slot(index)
                if key_len == 0 or key_len == _TOMBSTONE or slot_key == key:
                    target = (index, version)
                    break
            if target is None:
                raise KvFullError(
                    f"no slot for key within {_PROBE_LIMIT} probes"
                )
            index, version = target
            lock = self._slot_lock(index)
            locked = yield from lock.try_lock(version)
            if not locked:
                # lost the race; pause, then re-probe from scratch
                self._m_lock_retries.inc()
                yield from self._backoff.pause()
                continue
            # guard against a racing writer having claimed the slot for
            # a different key between our read and our lock
            body = yield from self.mapping.read(
                self._slot_offset(index) + _WORD, self.slot_size - _WORD
            )
            cur_len, cur_key, _val = self._parse_body(body)
            if cur_len not in (0, _TOMBSTONE) and cur_key != key:
                # a racing writer claimed this slot for another key
                # between our probe and our lock: back out (contents
                # untouched) and re-probe
                yield from lock.abort(version)
                continue
            yield from lock.publish(
                version + 1, self._encode_body(key, value)
            )
            return

    def get(self, key: bytes):
        """Lookup (generator); returns the value or ``None``."""
        self._check_key(key)
        mode, started_at = self._pick("get")
        if mode == PathPolicy.ONE_SIDED:
            value = yield from self._get_one_sided(key)
        else:
            value = yield from self.client.datapath.kv_get(
                self, key, fetch=(mode == PathPolicy.REMOTE_FETCH)
            )
        self._done("get", mode, started_at)
        return value

    def _get_one_sided(self, key: bytes):
        base = _hash64(key)
        for probe in range(_PROBE_LIMIT):
            index = (base + probe) % self.slots
            _version, key_len, slot_key, value = yield from self._read_slot(index)
            if key_len == 0:
                return None  # never-used slot terminates the probe chain
            if key_len == _TOMBSTONE:
                continue
            if slot_key == key:
                return value
        return None

    def multi_get(self, keys: list):
        """Batched lookup (generator); values (or ``None``) in key order.

        Every outstanding probe rides shared :class:`IoBatch` flushes
        instead of blocking per slot: one round snapshots each pending
        key's candidate slot, a second batched round re-reads the
        version words to validate the snapshots — the SeqLock
        optimistic-read protocol, amortized across all keys.  Keys that
        race a writer (odd or changed version) re-probe the same slot
        next round; the per-slot retry budget matches :meth:`get`.

        Under a server-side policy the whole batch ships as per-host
        composite ops instead (see ``DataPathRouter.kv_multi_get``).
        """
        for key in keys:
            self._check_key(key)
        mode, started_at = self._pick("multi_get")
        if mode != PathPolicy.ONE_SIDED:
            values = yield from self.client.datapath.kv_multi_get(
                self, keys, fetch=(mode == PathPolicy.REMOTE_FETCH)
            )
            self._done("multi_get", mode, started_at)
            return values
        values = yield from self._multi_get_one_sided(keys)
        self._done("multi_get", mode, started_at)
        return values

    def _multi_get_one_sided(self, keys: list):
        results: list = [None] * len(keys)
        probes = [0] * len(keys)
        tries = [0] * len(keys)
        bases = [_hash64(key) for key in keys]
        pending = list(range(len(keys)))

        def slot_of(i):
            return (bases[i] + probes[i]) % self.slots

        def raced(i):
            # same budget and failure mode as _read_slot
            self._m_read_retries.inc()
            tries[i] += 1
            if tries[i] >= _READ_RETRIES:
                raise KvError(
                    f"slot {slot_of(i)} kept changing under "
                    f"{_READ_RETRIES} reads"
                )

        while pending:
            snap = self.client.batch()
            futs = {}
            for i in pending:
                futs[i] = yield from snap.read(
                    self.mapping, self._slot_offset(slot_of(i)),
                    self.slot_size,
                )
            yield from snap.flush()
            snapshots = {}
            for i in pending:
                blob = yield from futs[i].wait()
                version = int.from_bytes(blob[:_WORD], "little")
                if version % 2 == 1:
                    raced(i)  # writer mid-publish: re-probe next round
                    continue
                snapshots[i] = (version, blob)
            if not snapshots:
                continue
            check = self.client.batch()
            vfuts = {}
            for i in snapshots:
                vfuts[i] = yield from check.read(
                    self.mapping, self._slot_offset(slot_of(i)), _WORD
                )
            yield from check.flush()
            settled = []
            for i, (version, blob) in snapshots.items():
                word = yield from vfuts[i].wait()
                if int.from_bytes(word, "little") != version:
                    raced(i)  # a writer published between the reads
                    continue
                key_len, slot_key, value = self._parse_body(blob[_WORD:])
                if key_len == 0:
                    settled.append(i)  # never-used slot ends the chain
                elif key_len != _TOMBSTONE and slot_key == keys[i]:
                    results[i] = value
                    settled.append(i)
                else:
                    probes[i] += 1
                    tries[i] = 0
                    if probes[i] >= _PROBE_LIMIT:
                        settled.append(i)
            for i in settled:
                pending.remove(i)
        return results

    def delete(self, key: bytes):
        """Remove (generator); returns whether the key existed.

        Always one-sided regardless of the mapping's path policy:
        deletes are rare, need the found-vs-absent distinction the
        server-op store protocol does not carry, and tombstone writes
        must never claim a fresh slot.
        """
        self._check_key(key)
        base = _hash64(key)
        self._backoff.reset()
        while True:
            found = None
            for probe in range(_PROBE_LIMIT):
                index = (base + probe) % self.slots
                version, key_len, slot_key, _v = yield from self._read_slot(index)
                if key_len == 0:
                    return False
                if key_len != _TOMBSTONE and slot_key == key:
                    found = (index, version)
                    break
            if found is None:
                return False
            index, version = found
            lock = self._slot_lock(index)
            locked = yield from lock.try_lock(version)
            if not locked:
                self._m_lock_retries.inc()
                yield from self._backoff.pause()
                continue
            yield from lock.publish(
                version + 1, self._encode_body(b"", b"", tombstone=True)
            )
            return True

    def contains(self, key: bytes):
        """Membership test (generator)."""
        value = yield from self.get(key)
        return value is not None
