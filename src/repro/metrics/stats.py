"""Latency/throughput statistics over simulated time.

The numbers the benchmarks report come from here: every sample is a
simulated-time measurement, never wall-clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["percentile", "Summary", "summarize", "Recorder"]


def percentile(samples: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation."""
    if not samples:
        raise ValueError("no samples")
    if not 0 <= q <= 100:
        raise ValueError(f"percentile {q} out of range")
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    # lo + (hi - lo) * frac is exact when the two samples are equal
    # (the a*(1-f) + b*f form can exceed b by one ulp)
    return ordered[lo] + (ordered[hi] - ordered[lo]) * frac


@dataclass
class Summary:
    """Standard summary of a latency sample set (seconds)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    minimum: float
    maximum: float

    def scaled(self, factor: float) -> "Summary":
        """The same summary in another unit (e.g. 1e6 for microseconds)."""
        return Summary(
            count=self.count,
            mean=self.mean * factor,
            p50=self.p50 * factor,
            p95=self.p95 * factor,
            p99=self.p99 * factor,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
        )


def summarize(samples: Sequence[float]) -> Summary:
    if not samples:
        raise ValueError("no samples")
    return Summary(
        count=len(samples),
        mean=sum(samples) / len(samples),
        p50=percentile(samples, 50),
        p95=percentile(samples, 95),
        p99=percentile(samples, 99),
        minimum=min(samples),
        maximum=max(samples),
    )


class Recorder:
    """Collects (simulated) timing samples and byte counts."""

    def __init__(self, sim):
        self.sim = sim
        self.samples: list[float] = []
        self.bytes: int = 0
        self._open: dict[object, float] = {}

    def start(self, token: object = None) -> object:
        token = token if token is not None else object()
        self._open[token] = self.sim.now
        return token

    def stop(self, token: object, nbytes: int = 0) -> float:
        began = self._open.pop(token)
        elapsed = self.sim.now - began
        self.samples.append(elapsed)
        self.bytes += nbytes
        return elapsed

    def add(self, elapsed: float, nbytes: int = 0) -> None:
        self.samples.append(elapsed)
        self.bytes += nbytes

    def summary(self) -> Summary:
        return summarize(self.samples)

    def throughput_bps(self, elapsed: float) -> float:
        """Aggregate goodput over *elapsed* seconds (bits/s)."""
        if elapsed <= 0:
            return 0.0
        return self.bytes * 8.0 / elapsed
