"""Measurement utilities for simulated-time experiments."""

from repro.metrics.stats import Recorder, Summary, percentile, summarize
from repro.metrics.timeline import Timeline

__all__ = ["Recorder", "Summary", "Timeline", "percentile", "summarize"]
