"""Time-bucketed counters: bandwidth/ops over simulated time.

Used by the CLI's sweeps to show how throughput evolves during a run
(ramp-up, steady state, tail), the way the paper's timeline figures do.
"""

from __future__ import annotations

from repro.simnet.kernel import Simulator

__all__ = ["Timeline"]

class Timeline:
    """Accumulates per-bucket byte/op counts against the simulated clock."""

    def __init__(self, sim: Simulator, bucket_s: float = 0.01):
        if bucket_s <= 0:
            raise ValueError(f"bucket must be positive, got {bucket_s}")
        self.sim = sim
        self.bucket_s = bucket_s
        self._origin = sim.now
        self._bytes: dict[int, int] = {}
        self._ops: dict[int, int] = {}

    def record(self, nbytes: int = 0, ops: int = 1) -> None:
        """Attribute *nbytes* and *ops* to the current instant's bucket."""
        bucket = int((self.sim.now - self._origin) / self.bucket_s)
        self._bytes[bucket] = self._bytes.get(bucket, 0) + nbytes
        self._ops[bucket] = self._ops.get(bucket, 0) + ops

    def series(self) -> list[tuple[float, int, int]]:
        """Dense series of (bucket_start_s, bytes, ops), gaps zero-filled."""
        if not self._bytes and not self._ops:
            return []
        last = max(set(self._bytes) | set(self._ops))
        return [
            (
                bucket * self.bucket_s,
                self._bytes.get(bucket, 0),
                self._ops.get(bucket, 0),
            )
            for bucket in range(last + 1)
        ]

    def bandwidth_series_bps(self) -> list[tuple[float, float]]:
        """(bucket_start_s, bits/s) pairs."""
        return [
            (t, nbytes * 8 / self.bucket_s)
            for t, nbytes, _ops in self.series()
        ]

    def peak_bandwidth_bps(self) -> float:
        series = self.bandwidth_series_bps()
        return max((bps for _t, bps in series), default=0.0)
