"""End-to-end observability: metrics registry, tracing, reporting.

RStore's whole argument is the control-path/data-path split; this
package makes the split *visible*:

* :class:`MetricsRegistry` — named counters, gauges and HDR-style
  log-bucketed histograms, labelled by host/method/etc.  Components
  register their instruments here instead of growing ad-hoc
  ``self.whatever = 0`` attributes, so one snapshot covers the NIC,
  the client pipeline, the master and the coordination primitives.
* :class:`Tracer` — per-operation spans stamped on *simulated* time as
  an op crosses layers (client submit → batch coalesce → QP post →
  NIC wire → CQ completion → future wait) plus control-path spans
  (alloc/map/register/connect).  Disabled by default and zero-cost
  when disabled; tracing never advances the simulated clock, so a
  traced run and an untraced run produce bit-identical results.
* :func:`obs_for` — the per-simulation :class:`Observability` context
  components share; ``build_cluster`` exposes it as ``cluster.obs``.
* :mod:`repro.obs.report` — per-layer latency breakdowns and the
  control-vs-data call census behind ``python -m repro stats``.
"""

from repro.obs.context import Observability, obs_for
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NULL_SPAN, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observability",
    "Span",
    "Tracer",
    "obs_for",
]
