"""The per-simulation observability context.

Components are built from many call sites (the cluster builder, bare
RDMA tests, coordination primitives), so threading a registry through
every constructor would churn the whole API.  Instead each
:class:`~repro.simnet.kernel.Simulator` owns exactly one
:class:`Observability` — components call ``obs_for(self.sim)`` at
construction and land on the same registry and tracer as everything
else in that simulation.  The mapping is weak: contexts die with their
simulators, and two simulations never share instruments (fresh
``build_cluster`` ⇒ fresh counters ⇒ deterministic replay).
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

__all__ = ["Observability", "obs_for"]


class Observability:
    """One simulation's metrics registry plus its (optional) tracer."""

    def __init__(self, sim):
        self.sim = sim
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(sim, registry=self.metrics)


_contexts: "WeakKeyDictionary" = WeakKeyDictionary()


def obs_for(sim) -> Observability:
    """The :class:`Observability` context of *sim* (created lazily)."""
    ctx = _contexts.get(sim)
    if ctx is None:
        ctx = Observability(sim)
        _contexts[sim] = ctx
    return ctx
