"""Per-operation tracing on simulated time.

A :class:`Tracer` stamps :class:`Span`\\ s as operations cross layers.
Spans carry the *simulated* clock, never wall time, so a trace is a
faithful record of where modelled time went and replays bit-for-bit
with the simulation that produced it.

The tracer is **disabled by default** and zero-cost when disabled:
``span()`` hands back a shared null span whose ``end`` is a no-op, no
span objects are allocated, no histograms are fed, and — crucially —
nothing ever advances or perturbs the simulated clock, so enabling
tracing cannot change what a simulation computes (the randomized
harness asserts exactly this).

Span taxonomy (see DESIGN.md "Observability"):

=====================  ==================================================
``control.*``          control-path work: ``control.master.<method>``,
                       ``control.nic.reg_mr``, ``control.cm.connect`` …
``data.client.submit`` client-side issue: plan, stage, translate
``data.batch.flush``   one IoBatch flush: coalesce + doorbell posting
``data.qp.post``       WQE accepted → engine launch (doorbell + queue)
``data.nic.wire``      launch → remote completion raised (wire + DMA)
``data.cq.complete``   completion raised → dispatcher retired it
``data.future.wait``   caller parked on a future → resumed
``data.op.<kind>``     whole-op envelope: submit → future resolved
=====================  ==================================================
"""

from __future__ import annotations

from typing import Optional

__all__ = ["Span", "Tracer", "NULL_SPAN"]


class Span:
    """One timed interval in one layer, on the simulated clock."""

    __slots__ = ("tracer", "name", "kind", "trace_id", "start", "end",
                 "attrs")

    def __init__(self, tracer: "Tracer", name: str, kind: str,
                 trace_id: Optional[int], start: float, attrs: dict):
        self.tracer = tracer
        self.name = name
        #: "control", "data" or "app" — the census dimension
        self.kind = kind
        #: ties the spans of one logical operation together
        self.trace_id = trace_id
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ValueError(f"span {self.name!r} not finished")
        return self.end - self.start

    def finish(self, **attrs) -> None:
        """Stamp the end time and hand the span to the tracer."""
        if self.end is not None:
            return
        self.end = self.tracer.sim.now
        if attrs:
            self.attrs.update(attrs)
        self.tracer._record(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = f"{self.end:.9f}" if self.end is not None else "…"
        return f"<Span {self.name} [{self.start:.9f}, {end}]>"


class _NullSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def finish(self, **attrs) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects spans for one simulation; off unless enabled."""

    def __init__(self, sim, registry=None, max_spans: int = 200_000):
        self.sim = sim
        #: fed with ``span.<name>`` duration histograms when present
        self.registry = registry
        self.enabled = False
        self.spans: list[Span] = []
        self.max_spans = max_spans
        #: spans discarded once the buffer filled (histograms still fed)
        self.dropped = 0
        self._trace_seq = 0

    # -- switches ------------------------------------------------------------

    def enable(self) -> "Tracer":
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        return self

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    # -- span creation -------------------------------------------------------

    def next_trace_id(self) -> int:
        """A fresh id tying one operation's spans together."""
        self._trace_seq += 1
        return self._trace_seq

    def span(self, name: str, kind: str = "data",
             trace_id: Optional[int] = None, **attrs):
        """Open a span starting now; ``finish()`` stamps the end.

        Returns :data:`NULL_SPAN` when disabled — callers never branch.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, kind, trace_id, self.sim.now, attrs)

    def record(self, name: str, start: float, kind: str = "data",
               trace_id: Optional[int] = None, **attrs) -> None:
        """Record a completed interval ``[start, now]`` in one call.

        The instrumentation hot paths use this form: they stash a bare
        ``float`` timestamp while the op is in flight and only build
        the span object at completion.
        """
        if not self.enabled:
            return
        span = Span(self, name, kind, trace_id, start, attrs)
        span.end = self.sim.now
        self._record(span)

    def event(self, name: str, kind: str = "data", **attrs) -> None:
        """A zero-duration marker (fault injected, retry scheduled…)."""
        self.record(name, self.sim.now, kind=kind, **attrs)

    # -- internals -----------------------------------------------------------

    def _record(self, span: Span) -> None:
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        if self.registry is not None:
            self.registry.histogram(f"span.{span.name}").observe(
                span.duration
            )
