"""Render observability data: latency breakdowns, call census, traces.

Everything here is pure formatting over a :class:`MetricsRegistry`
snapshot or a span list — no simulation access, so the CLI and tests
can render the same run twice and get identical text.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span, Tracer

__all__ = [
    "DATA_LAYERS",
    "layer_breakdown",
    "call_census",
    "shard_census",
    "tenant_census",
    "format_table",
    "format_spans",
    "format_counters",
    "trace_report",
]

#: the data-path layers of the span taxonomy, in pipeline order
DATA_LAYERS = [
    ("client", "span.data.client.submit"),
    ("batch", "span.data.batch.flush"),
    ("qp", "span.data.qp.post"),
    ("wire", "span.data.nic.wire"),
    ("cq", "span.data.cq.complete"),
    ("wait", "span.data.future.wait"),
    ("op", "span.data.op"),
]


def _merged_or_none(metrics: MetricsRegistry, name: str):
    try:
        merged = metrics.merged(name)
    except KeyError:
        return None
    return merged if merged.count else None


def layer_breakdown(metrics: MetricsRegistry) -> list[list[str]]:
    """Per-layer latency rows: layer, samples, p50/p95/p99/max in µs.

    ``span.data.op.<kind>`` histograms (the whole-op envelopes) fold
    into one ``op`` row; layers with no samples are omitted.
    """
    rows = []
    for layer, name in DATA_LAYERS:
        if name == "span.data.op":
            parts = [
                n for n in metrics.names() if n.startswith("span.data.op.")
            ]
            hist = None
            for part in parts:
                merged = _merged_or_none(metrics, part)
                if merged is None:
                    continue
                if hist is None:
                    hist = merged
                else:
                    hist.merge(merged)
        else:
            hist = _merged_or_none(metrics, name)
        if hist is None:
            continue
        s = hist.summary().scaled(1e6)
        rows.append([
            layer, str(s.count), f"{s.p50:.2f}", f"{s.p95:.2f}",
            f"{s.p99:.2f}", f"{s.maximum:.2f}",
        ])
    return rows


def call_census(metrics: MetricsRegistry,
                baseline: dict | None = None) -> dict:
    """Control-vs-data call counts, optionally as a delta over *baseline*.

    Returns ``{"master_rpcs": int, "data_ops": int, "doorbells": int,
    "bytes_moved": int}``.  Pass a previous census as *baseline* to get
    the steady-state delta — the separation thesis holds iff
    ``master_rpcs`` is 0 there.
    """
    def total(name):
        return int(metrics.total(name)) if name in metrics.names() else 0

    census = {
        "master_rpcs": total("client.master_calls"),
        "data_ops": total("rnic.ops_posted"),
        "doorbells": total("rnic.doorbells_rung"),
        "bytes_moved": total("client.bytes_moved"),
    }
    if baseline is not None:
        census = {k: v - baseline.get(k, 0) for k, v in census.items()}
    return census


def _label(inst, key: str, default: str) -> str:
    return dict(inst.labels).get(key, default)


def shard_census(metrics: MetricsRegistry,
                 baseline: dict | None = None) -> dict[int, int]:
    """Control RPCs served per metadata shard: ``{shard_id: rpcs}``.

    Sums ``master.rpc_served`` across methods within each shard label.
    Pass a previous census as *baseline* for the steady-state delta —
    with the metadata cache on, every shard's delta must be 0.  Shards
    that served nothing in the window still appear (as 0), so the
    separation proof covers the whole control plane, not just the busy
    shards.
    """
    census: dict[int, int] = {}
    for inst in metrics.series("master.rpc_served"):
        shard = int(_label(inst, "shard", "0"))
        census[shard] = census.get(shard, 0) + int(inst.value)
    if baseline is not None:
        census = {
            shard: total - baseline.get(shard, 0)
            for shard, total in census.items()
        }
    return dict(sorted(census.items()))


def tenant_census(metrics: MetricsRegistry) -> dict[str, dict]:
    """Per-tenant accounting: logical bytes held, quota denials, and
    repair bandwidth spent on that tenant's regions.

    Returns ``{tenant: {"bytes": int, "quota_denied": int,
    "repair_bytes": int}}`` — the isolation evidence: one tenant
    filling its quota shows up as its own denials while every other
    tenant's row is untouched.
    """
    census: dict[str, dict] = {}

    def row(tenant: str) -> dict:
        return census.setdefault(
            tenant, {"bytes": 0, "quota_denied": 0, "repair_bytes": 0}
        )

    for name, key in (("master.tenant_bytes", "bytes"),
                      ("master.quota_denied", "quota_denied"),
                      ("master.repair_bytes", "repair_bytes")):
        for inst in metrics.series(name):
            row(_label(inst, "tenant", "default"))[key] += int(inst.value)
    return dict(sorted(census.items()))


def format_table(title: str, headers: list[str],
                 rows: list[list[str]]) -> str:
    """A fixed-width text table (the benchmarks' reporting idiom)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    out = [title, line(headers), line("-" * w for w in widths)]
    out.extend(line(r) for r in rows)
    return "\n".join(out)


def format_spans(spans: list[Span], limit: int = 50) -> str:
    """A chronological span dump: start, duration, kind, name, attrs."""
    ordered = sorted(spans, key=lambda s: (s.start, s.end if s.end is not
                                           None else s.start))
    lines = [f"{'start(us)':>12}  {'dur(us)':>10}  {'kind':<8}  "
             f"{'trace':>6}  name"]
    for span in ordered[:limit]:
        attrs = "".join(
            f" {k}={v}" for k, v in sorted(span.attrs.items())
        )
        trace = str(span.trace_id) if span.trace_id is not None else "-"
        lines.append(
            f"{span.start * 1e6:>12.3f}  {span.duration * 1e6:>10.3f}  "
            f"{span.kind:<8}  {trace:>6}  {span.name}{attrs}"
        )
    if len(ordered) > limit:
        lines.append(f"... {len(ordered) - limit} more spans")
    return "\n".join(lines)


def format_counters(metrics: MetricsRegistry,
                    prefixes: tuple[str, ...] = ()) -> str:
    """Counters/gauges totalled by name, one line each."""
    lines = []
    for name in metrics.names():
        if name.startswith("span."):
            continue
        if prefixes and not name.startswith(prefixes):
            continue
        try:
            value = metrics.total(name)
        except TypeError:
            continue
        lines.append(f"  {name} = {value:g}")
    return "\n".join(lines)


def trace_report(tracer: Tracer, limit: int = 50) -> str:
    """The ``repro trace`` body: span dump plus drop accounting."""
    body = format_spans(tracer.spans, limit=limit)
    if tracer.dropped:
        body += f"\n({tracer.dropped} spans dropped at the buffer cap)"
    return body
