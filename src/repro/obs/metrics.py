"""The metrics registry: named counters, gauges and log histograms.

One registry exists per simulation (see :func:`repro.obs.obs_for`).
Instruments are identified by a dotted name plus a frozen label set,
so every NIC, client and coordination primitive shares the same
namespace while keeping per-host series separable::

    m = obs_for(sim).metrics
    m.counter("rnic.ops_posted", host=3).inc()
    m.total("rnic.ops_posted")          # summed across hosts
    m.histogram("span.data.nic.wire").observe(2.1e-6)

Histograms are HDR-style log-bucketed: bucket boundaries grow
geometrically, so a fixed number of integer buckets covers nanoseconds
to seconds with bounded relative error.  Summaries reuse
:class:`repro.metrics.stats.Summary`, the same shape every benchmark
reports.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional, Union

from repro.metrics.stats import Summary

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

Labels = tuple[tuple[str, str], ...]


def _freeze(labels: dict) -> Labels:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count (ops, bytes, calls)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels):
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}{dict(self.labels)} = {self.value}>"


class Gauge:
    """A value that moves both ways (queue depth, in-flight ops)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: Labels):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}{dict(self.labels)} = {self.value}>"


class Histogram:
    """Log-bucketed histogram of non-negative samples (HDR-style).

    Values at or below ``smallest`` land in bucket 0; above that,
    bucket ``k`` holds values in ``(smallest * growth**(k-1),
    smallest * growth**k]``.  With the default 16 sub-buckets per
    octave the relative quantile error is bounded by
    ``2**(1/16) - 1`` (~4.4%).  ``min``/``max``/``sum`` are tracked
    exactly, so ``percentile(0)`` and ``percentile(100)`` are exact.
    """

    __slots__ = ("name", "labels", "smallest", "_log_growth", "_growth",
                 "count", "total", "minimum", "maximum", "buckets")

    #: sub-buckets per doubling of the value range
    SUBBUCKETS = 16

    def __init__(self, name: str, labels: Labels, smallest: float = 1e-9):
        if smallest <= 0:
            raise ValueError("smallest bucket bound must be positive")
        self.name = name
        self.labels = labels
        self.smallest = smallest
        self._log_growth = math.log(2.0) / self.SUBBUCKETS
        self._growth = 2.0 ** (1.0 / self.SUBBUCKETS)
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name!r} takes values >= 0")
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        index = self._index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    def _index(self, value: float) -> int:
        if value <= self.smallest:
            return 0
        return 1 + int(math.log(value / self.smallest) / self._log_growth)

    def _upper_bound(self, index: int) -> float:
        return self.smallest * self._growth ** index

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """The *q*-th percentile (0..100), within bucket resolution."""
        if not self.count:
            raise ValueError(f"histogram {self.name!r} has no samples")
        if not 0 <= q <= 100:
            raise ValueError(f"percentile {q} out of range")
        if q == 0:
            return self.minimum
        needed = math.ceil(self.count * q / 100.0)
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= needed:
                # clamp to the exact extremes so no quantile can fall
                # outside the observed value range
                return min(self.maximum,
                           max(self.minimum, self._upper_bound(index)))
        return self.maximum

    def summary(self) -> Summary:
        """The benchmark-standard summary of this histogram."""
        if not self.count:
            raise ValueError(f"histogram {self.name!r} has no samples")
        return Summary(
            count=self.count,
            mean=self.mean,
            p50=self.percentile(50),
            p95=self.percentile(95),
            p99=self.percentile(99),
            minimum=self.minimum,
            maximum=self.maximum,
        )

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s samples into this histogram (same scale)."""
        if other.smallest != self.smallest:
            raise ValueError("cannot merge histograms with different scales")
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for index, n in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {self.name}{dict(self.labels)} "
                f"n={self.count}>")


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """All instruments of one simulation, keyed by (name, labels)."""

    def __init__(self):
        self._instruments: dict[tuple[str, Labels], Instrument] = {}
        #: name -> instrument class, so one name cannot be a counter on
        #: one host and a histogram on another
        self._kinds: dict[str, type] = {}

    # -- instrument creation -------------------------------------------------

    # the metric name is positional-only so that "name" stays usable
    # as a label key (locks and queues label by their own name)
    def counter(self, name: str, /, **labels) -> Counter:
        return self._get_or_make(Counter, name, labels)

    def gauge(self, name: str, /, **labels) -> Gauge:
        return self._get_or_make(Gauge, name, labels)

    def histogram(self, name: str, /, smallest: float = 1e-9,
                  **labels) -> Histogram:
        hist = self._get_or_make(Histogram, name, labels, smallest=smallest)
        return hist

    def _get_or_make(self, cls: type, name: str, labels: dict,
                     **kwargs) -> Instrument:
        key = (name, _freeze(labels))
        kind = self._kinds.get(name)
        if kind is not None and kind is not cls:
            raise TypeError(
                f"metric {name!r} already registered as {kind.__name__}, "
                f"not {cls.__name__}"
            )
        found = self._instruments.get(key)
        if found is not None:
            return found
        made = cls(name, key[1], **kwargs)
        self._kinds[name] = cls
        self._instruments[key] = made
        return made

    # -- queries -------------------------------------------------------------

    def get(self, name: str, /, **labels) -> Optional[Instrument]:
        """The instrument if it exists; never creates one."""
        return self._instruments.get((name, _freeze(labels)))

    def series(self, name: str) -> list[Instrument]:
        """Every labelled instrument registered under *name*."""
        return [inst for (n, _), inst in sorted(self._instruments.items())
                if n == name]

    def names(self) -> list[str]:
        return sorted(self._kinds)

    def total(self, name: str) -> float:
        """Counter/gauge values summed across all label sets."""
        kind = self._kinds.get(name)
        if kind is Histogram:
            raise TypeError(f"{name!r} is a histogram; use merged()")
        return sum(inst.value for inst in self.series(name))

    def merged(self, name: str) -> Histogram:
        """All of *name*'s labelled histograms folded into one."""
        parts = self.series(name)
        if not parts or self._kinds.get(name) is not Histogram:
            raise KeyError(f"no histogram registered under {name!r}")
        out = Histogram(name, (), smallest=parts[0].smallest)
        for part in parts:
            out.merge(part)
        return out

    def snapshot(self) -> dict:
        """A plain-data dump: ``{name: {labels_repr: value_or_summary}}``.

        Counter/gauge values dump as numbers; histograms as
        ``(count, mean, p50, p99, max)`` tuples.  The snapshot is a
        copy — mutating it does not touch the registry.
        """
        out: dict[str, dict[str, object]] = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            key = ",".join(f"{k}={v}" for k, v in labels) or "-"
            if isinstance(inst, Histogram):
                value = (
                    (inst.count, inst.mean, inst.percentile(50),
                     inst.percentile(99), inst.maximum)
                    if inst.count else (0, 0.0, 0.0, 0.0, 0.0)
                )
            else:
                value = inst.value
            out.setdefault(name, {})[key] = value
        return out

    def __iter__(self) -> Iterator[Instrument]:
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)
