"""Full-mesh socket construction between a set of hosts."""

from __future__ import annotations

__all__ = ["build_full_mesh"]


def build_full_mesh(sim, stacks: dict[int, object], port: int):
    """Pairwise sockets among ranks (generator).

    ``stacks`` maps rank -> TcpStack.  Returns ``sockets`` with
    ``sockets[a][b]`` the socket rank *a* uses to talk to rank *b*.
    Each connection's first message is the dialing rank, so acceptors
    can label the socket.
    """
    ranks = sorted(stacks)
    sockets: dict[int, dict[int, object]] = {rank: {} for rank in ranks}
    listeners = {rank: stacks[rank].listen(port) for rank in ranks}

    def accept_side(rank, expected):
        for _ in range(expected):
            sock = yield from listeners[rank].accept()
            peer = yield from sock.recv()
            sockets[rank][peer] = sock

    accepts = [
        sim.process(accept_side(rank, i))
        for i, rank in enumerate(ranks)
    ]

    def dial():
        for i, lo in enumerate(ranks):
            for hi in ranks[i + 1:]:
                sock = yield from stacks[lo].connect(stacks[hi], port)
                yield from sock.send(lo)
                sockets[lo][hi] = sock

    yield sim.all_of([sim.process(dial()), *accepts])
    for listener in listeners.values():
        listener.close()
    return sockets
