"""A message-oriented TCP-like transport with kernel-stack costs.

Semantics are deliberately simple — reliable, ordered, message-framed
(like one application message per ``send``) — because the baselines
built on it are RPC-style.  What matters for the reproduction is the
*cost model*:

* sender: one syscall plus a user-to-kernel copy of the payload,
  charged on the sender's CPU;
* wire: payload inflated by protocol headers, moving through the same
  link/switch fabric the RDMA traffic uses;
* receiver: interrupt + stack processing plus a kernel-to-user copy,
  charged on the receiver's CPU.

Payloads are pickled Python objects, so baselines compute real results;
``wire_size`` lets scaled experiments inflate the logical size (see
``repro.rdma.wr`` for the same convention on the RDMA side).
"""

from __future__ import annotations

import itertools
import pickle
from dataclasses import dataclass
from typing import Any, Optional

from repro.simnet.config import us
from repro.simnet.kernel import Simulator
from repro.simnet.resources import Store
from repro.simnet.topology import Host, Network

__all__ = ["TcpModel", "TcpStack", "Socket", "TcpError"]

_conn_ids = itertools.count(1)


class TcpError(Exception):
    """Connection-level failure (refused, reset, peer dead)."""


@dataclass
class TcpModel:
    """Kernel network-stack cost parameters (10GbE/IPoIB-class host)."""

    #: per-send syscall + TX path CPU cost (s)
    send_overhead_s: float = us(4.0)
    #: per-receive interrupt + RX stack + wakeup CPU cost (s)
    recv_overhead_s: float = us(7.0)
    #: protocol overhead: headers as a fraction of payload, plus a floor
    header_fraction: float = 0.05
    header_floor_bytes: int = 66
    #: socket setup cost on top of the 1.5 RTT handshake (s)
    connect_overhead_s: float = us(150.0)


class TcpStack:
    """One host's sockets layer."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        network: Network,
        model: Optional[TcpModel] = None,
    ):
        self.sim = sim
        self.host = host
        self.network = network
        self.model = model or TcpModel()
        self.alive = True
        self._listeners: dict[int, Store] = {}
        host.services["tcp"] = self

    # -- connection management ------------------------------------------------

    def listen(self, port: int) -> "Listener":
        if port in self._listeners:
            raise TcpError(f"port {port} already bound on {self.host.name}")
        backlog = Store(self.sim)
        self._listeners[port] = backlog
        return Listener(self, port, backlog)

    def connect(self, remote_stack: "TcpStack", port: int):
        """Open a connection (generator); returns the client socket."""
        if not remote_stack.alive:
            raise TcpError(f"{remote_stack.host.name} is unreachable")
        backlog = remote_stack._listeners.get(port)
        if backlog is None:
            raise TcpError(
                f"connection refused: nothing listening on "
                f"{remote_stack.host.name}:{port}"
            )
        # SYN / SYN-ACK / ACK plus socket setup.
        rtt = 2 * self.network.one_way_base_delay
        yield self.sim.timeout(1.5 * rtt + self.model.connect_overhead_s)
        conn = next(_conn_ids)
        client = Socket(self, remote_stack, conn)
        server = Socket(remote_stack, self, conn)
        client._peer = server
        server._peer = client
        backlog.put(server)
        return client

    def kill(self) -> None:
        """Simulate host failure: the stack stops moving bytes."""
        self.alive = False


class Listener:
    """A bound port; ``accept`` yields server-side sockets."""

    def __init__(self, stack: TcpStack, port: int, backlog: Store):
        self.stack = stack
        self.port = port
        self._backlog = backlog

    def accept(self):
        """Wait for the next inbound connection (generator)."""
        sock = yield self._backlog.get()
        return sock

    def close(self) -> None:
        self.stack._listeners.pop(self.port, None)


class _Eof:
    def __repr__(self):  # pragma: no cover - debug aid
        return "<EOF>"


_EOF = _Eof()


class Socket:
    """One end of an established connection."""

    def __init__(self, stack: TcpStack, remote_stack: TcpStack, conn_id: int):
        self.stack = stack
        self.remote_stack = remote_stack
        self.conn_id = conn_id
        self._peer: Optional["Socket"] = None
        self._rx: Store = Store(stack.sim)
        self.closed = False
        #: payload bytes sent (for metrics)
        self.bytes_sent = 0

    def send(self, obj: Any, wire_size: Optional[int] = None):
        """Send one message (generator); returns its payload size."""
        if self.closed:
            raise TcpError("socket is closed")
        if not self.stack.alive:
            raise TcpError("local host is down")
        sim = self.stack.sim
        model = self.stack.model
        payload = pickle.dumps(obj)
        size = wire_size if wire_size is not None else len(payload)
        self.bytes_sent += size

        # Sender-side CPU: syscall plus user->kernel copy.
        yield from self.stack.host.cpu.run(model.send_overhead_s)
        yield from self.stack.host.cpu.copy(size)

        wire = int(size * model.header_fraction) + model.header_floor_bytes + size
        delivered = self.stack.network.transmit_message(
            self.stack.host, self.remote_stack.host, wire
        )
        peer = self._peer
        assert peer is not None

        def on_delivery(_event):
            if not self.remote_stack.alive or peer.closed:
                return  # bytes vanish into a dead or closed endpoint
            sim.process(peer._receive(obj, size))

        delivered.add_callback(on_delivery)
        return size

    def _receive(self, obj: Any, size: int):
        model = self.stack.model
        yield from self.stack.host.cpu.run(model.recv_overhead_s)
        yield from self.stack.host.cpu.copy(size)
        self._rx.put((obj, size))

    def recv(self):
        """Wait for the next message (generator); returns the object.

        Returns ``None`` once the peer has closed and the queue drained.
        """
        item = yield self._rx.get()
        if item is _EOF:
            return None
        obj, _size = item
        return obj

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._peer is not None and not self._peer.closed:
            self._peer._rx.put(_EOF)
