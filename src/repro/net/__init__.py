"""Simulated sockets (TCP-like) transport.

The comparison baselines in the paper — sockets-based stores, Hadoop
TeraSort — run over the kernel network stack.  This package models that
stack's costs: per-message syscalls and interrupts, payload copies
through the kernel, and protocol header overhead, all charged against
the host CPU model.  The asymmetry against the RDMA data path (which
bypasses the remote CPU entirely) is the paper's core motivation.
"""

from repro.net.tcp import Socket, TcpModel, TcpStack

__all__ = ["Socket", "TcpModel", "TcpStack"]
