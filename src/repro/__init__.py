"""Reproduction of *RStore: A Direct-Access DRAM-based Data Store* (ICDCS'15).

Package map
-----------
``repro.simnet``
    Discrete-event cluster simulator (kernel, hosts, links, CPU model).
``repro.rdma``
    Simulated RDMA verbs: devices, memory regions, queue pairs,
    completion queues, one-sided READ/WRITE/atomics, connection manager.
``repro.rpc`` / ``repro.net`` / ``repro.disk``
    Messaging, sockets-like transport and disk models used by the
    control path and the comparison baselines.
``repro.core``
    RStore itself: master, memory servers, and the memory-like client
    API (``alloc`` / ``map`` / ``read`` / ``write``).
``repro.graph`` / ``repro.sort``
    The paper's two applications — a distributed graph-processing
    framework and a key-value sorter — plus their baselines.
``repro.cluster``
    One-call testbed construction and experiment harness.

See ``DESIGN.md`` for the full inventory and the experiment index.
"""

__version__ = "0.1.0"

from repro.simnet.config import GiB, Gbps, KiB, MiB, ms, us

__all__ = ["KiB", "MiB", "GiB", "Gbps", "us", "ms", "__version__"]
