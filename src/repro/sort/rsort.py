"""RSort: distributed key-value sorting on the memory-like API.

Pipeline (all regions live in RStore):

1. **Read** — each worker pulls its input slice with one-sided reads.
2. **Sample** — workers publish key samples; the coordinator derives
   P-1 splitters and broadcasts them (control path through the master).
3. **Partition** — numpy classification of records by splitter.
4. **Shuffle** — for each destination, the sender reserves space in the
   destination's shuffle region with a remote **fetch-and-add** on its
   tail counter, then RDMA-writes the records.  No destination CPU, no
   receive handling, no flow-control messages: the paper's API pitch.

Phase transitions synchronize on a :class:`~repro.coord.SenseBarrier`
(one-sided FAA + flag polling), so after setup the master only sees the
sampling exchange — inter-phase coordination rides the data path.
5. **Sort** — each worker sorts its shuffle region locally (full
   10-byte lexicographic order) with an explicit n·log n CPU charge.
6. **Write** — sorted runs land in per-worker output regions placed on
   the worker's own memory server.

Scaled runs: real records stay at a tractable count while ``scale``
multiplies every wire/disk/CPU size, so a laptop simulates the paper's
256 GB run through the identical code path (see EXPERIMENTS.md).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Optional

import numpy as np

from repro.cluster.builder import Cluster
from repro.coord import SenseBarrier
from repro.simnet.config import MiB
from repro.workloads.kv import KEY_BYTES, RECORD_BYTES, generate_records

__all__ = ["SortComputeModel", "RSort"]

_SAMPLES_PER_WORKER = 128
_HEADER = 8  # the shuffle region's tail counter


@dataclass
class SortComputeModel:
    """CPU cost of sorting work (charged on logical record counts)."""

    #: classify + move one record during partitioning
    per_record_partition_s: float = 10e-9
    #: one comparison in the local sort (n log2 n of them); calibrated
    #: to a C merge sort moving 100-byte records on 2014 cores
    per_compare_s: float = 12e-9
    #: records are processed on this many cores in parallel
    cores_used: int = 8

    def partition_cost(self, records: int) -> float:
        return records * self.per_record_partition_s / self.cores_used

    def sort_cost(self, records: int) -> float:
        if records < 2:
            return 0.0
        return (
            records * math.log2(records) * self.per_compare_s / self.cores_used
        )


def key_prefix_u64(records: np.ndarray) -> np.ndarray:
    """First 8 key bytes as big-endian uint64 (order-preserving prefix)."""
    return records[:, :8].copy().view(">u8").ravel()


def sort_order(records: np.ndarray) -> np.ndarray:
    """Indices sorting records by the full 10-byte key."""
    # lexsort's last key is most significant: feed columns reversed
    return np.lexsort(tuple(records[:, KEY_BYTES - 1 - i] for i in range(KEY_BYTES)))


class RSort:
    """Distributed sort over RStore."""

    def __init__(
        self,
        cluster: Cluster,
        records_per_worker: int,
        worker_hosts: Optional[list[int]] = None,
        scale: int = 1,
        seed: int = 0,
        model: Optional[SortComputeModel] = None,
        tag: str = "sort",
        shuffle_slack: float = 2.0,
    ):
        if records_per_worker < 1:
            raise ValueError("need at least one record per worker")
        if scale < 1:
            raise ValueError("scale must be >= 1")
        self.cluster = cluster
        self.records_per_worker = records_per_worker
        self.worker_hosts = worker_hosts or list(range(cluster.num_machines))
        self.scale = scale
        self.seed = seed
        self.model = model or SortComputeModel()
        self.tag = tag
        self.shuffle_slack = shuffle_slack
        self._prepared = False

    @property
    def num_workers(self) -> int:
        return len(self.worker_hosts)

    @property
    def total_records(self) -> int:
        return self.records_per_worker * self.num_workers

    @property
    def logical_bytes(self) -> int:
        """The dataset size this run stands for."""
        return self.total_records * RECORD_BYTES * self.scale

    # -- input generation (the TeraGen phase; not part of sort timing) -----

    def prepare(self):
        """Generate input and load it into the store (generator)."""
        sim = self.cluster.sim
        tag = self.tag
        slice_bytes = self.records_per_worker * RECORD_BYTES
        coordinator = self.cluster.client(self.worker_hosts[0])
        yield from coordinator.alloc(
            f"{tag}.input", slice_bytes * self.num_workers
        )
        # the inter-phase barrier every worker opens at setup
        yield from SenseBarrier.create(
            coordinator, f"{tag}.phase", parties=self.num_workers
        )

        def generate(rank):
            client = self.cluster.client(self.worker_hosts[rank])
            records = generate_records(
                self.records_per_worker, seed=self.seed + rank
            )
            mapping = yield from client.map(f"{tag}.input")
            mr = yield from client.alloc_local(slice_bytes)
            mr.buffer.write(0, records.tobytes())
            yield from mapping.write_from(
                mr, mr.addr, rank * slice_bytes, slice_bytes,
                wire_scale=self.scale,
            )

        procs = [
            sim.process(generate(rank), name=f"{self.tag}-gen-{rank}")
            for rank in range(self.num_workers)
        ]
        yield sim.all_of(procs)
        self._prepared = True

    # -- the sort itself -----------------------------------------------------

    def run(self):
        """Sort (generator).  Returns stats with ``elapsed`` and counts."""
        if not self._prepared:
            # the job driver: generating input on first use is the
            # sanctioned control/data phase transition, and prepare()
            # finishes before the timed section below starts
            yield from self.prepare()  # repro-lint: allow[RL008]
        sim = self.cluster.sim
        stats = SimpleNamespace(
            elapsed=0.0,
            logical_bytes=self.logical_bytes,
            records=self.total_records,
            per_worker_output=None,
        )
        counts: dict[int, int] = {}
        t0 = sim.now
        procs = [
            sim.process(self._worker(rank, counts),
                        name=f"{self.tag}-worker-{rank}")
            for rank in range(self.num_workers)
        ]
        yield sim.all_of(procs)
        stats.elapsed = sim.now - t0
        stats.per_worker_output = [counts[r] for r in range(self.num_workers)]
        stats.throughput_Bps = (
            self.logical_bytes / stats.elapsed if stats.elapsed > 0 else 0.0
        )
        return stats

    # -- per-worker control-path helpers (create/open/setup vocabulary;
    # repro-lint RL001 keeps master traffic out of the phases proper) --------

    def _worker_setup(self, rank: int, client, host_id: int):
        """Open the phase barrier, place this worker's shuffle region."""
        barrier = yield from SenseBarrier.open(
            client, f"{self.tag}.phase", parties=self.num_workers
        )
        expected = self.records_per_worker * RECORD_BYTES  # balanced split
        shuffle_bytes = _HEADER + int(expected * self.shuffle_slack)
        yield from client.alloc(
            f"{self.tag}.shuffle.{rank}", shuffle_bytes,
            preferred_host=host_id,
        )
        return barrier

    def _load_slice(self, rank: int, client):
        """Map the input and pull this worker's slice — one batched
        flush reads the striped pieces from every server under
        doorbell batching."""
        slice_bytes = self.records_per_worker * RECORD_BYTES
        input_map = yield from client.map(f"{self.tag}.input")
        in_mr = yield from client.alloc_local(slice_bytes)
        ingest = client.batch()
        in_fut = ingest.read_into(
            input_map, in_mr, in_mr.addr, rank * slice_bytes, slice_bytes,
            wire_scale=self.scale,
        )
        yield from ingest.flush()
        yield from in_fut.wait()
        return np.frombuffer(
            in_mr.buffer.read(0, slice_bytes), dtype=np.uint8
        ).reshape(-1, RECORD_BYTES)

    def _prepare_splitters(self, rank: int, client, prefixes):
        """The sampling exchange: the one master-mediated step."""
        tag = self.tag
        workers = self.num_workers
        rng = np.random.default_rng(self.seed + 1000 + rank)
        sample = rng.choice(
            prefixes, size=min(_SAMPLES_PER_WORKER, len(prefixes)),
            replace=False,
        )
        yield from client.notify(f"{tag}.samples.{rank}", sample.tolist())
        if rank == 0:
            gathered = []
            for peer in range(workers):
                part = yield from client.wait_note(f"{tag}.samples.{peer}")
                gathered.extend(part)
            gathered.sort()
            quantiles = [
                gathered[(i + 1) * len(gathered) // workers - 1]
                for i in range(workers - 1)
            ]
            yield from client.notify(f"{tag}.splitters", quantiles)
        return np.array(
            (yield from client.wait_note(f"{tag}.splitters")),
            dtype=np.uint64,
        )

    def _open_shuffle_maps(self, client):
        """Map every peer's shuffle region plus the staging MRs.

        The merge buffer is allocated here too, sized for the worst
        case the shuffle region can hold, so the local-sort phase that
        drains it stays pure one-sided — no allocation mid-phase."""
        slice_bytes = self.records_per_worker * RECORD_BYTES
        shuffle_maps = []
        for peer in range(self.num_workers):
            mapping = yield from client.map(f"{self.tag}.shuffle.{peer}")
            shuffle_maps.append(mapping)
        out_mr = yield from client.alloc_local(max(slice_bytes, 1))
        merge_bytes = int(slice_bytes * self.shuffle_slack)
        recv_mr = yield from client.alloc_local(max(merge_bytes, 1))
        return shuffle_maps, out_mr, recv_mr

    def _setup_output(self, rank: int, client, host_id: int,
                      out_bytes: int, staging_bytes: int):
        """Place and map the sorted-run output region (+ staging MR)."""
        yield from client.alloc(
            f"{self.tag}.out.{rank}", out_bytes, preferred_host=host_id
        )
        out_map = yield from client.map(f"{self.tag}.out.{rank}")
        final_mr = None
        if staging_bytes:
            final_mr = yield from client.alloc_local(staging_bytes)
        return out_map, final_mr

    def _worker(self, rank: int, counts: dict):
        tag = self.tag
        host_id = self.worker_hosts[rank]
        client = self.cluster.client(host_id)
        cpu = self.cluster.net.host(host_id).cpu
        workers = self.num_workers
        model = self.model
        logical = self.records_per_worker * self.scale

        # the per-worker driver: each numbered phase below hops through
        # a control-named helper exactly once, at its phase boundary
        barrier = yield from self._worker_setup(  # repro-lint: allow[RL008]
            rank, client, host_id)
        yield from barrier.wait()

        # 1. read the input slice
        ingest_span = client.obs.tracer.span("app.sort.ingest", kind="app",
                                             rank=rank)
        records = yield from self._load_slice(rank, client)
        ingest_span.finish(records=len(records))

        # 2. sampling -> splitters (control path via the master)
        prefixes = key_prefix_u64(records)
        splitters = yield from self._prepare_splitters(rank, client,
                                                       prefixes)

        # 3. partition
        yield from cpu.run(model.partition_cost(logical))
        dest = np.searchsorted(splitters, prefixes, side="right")

        # 4. one-sided shuffle: FAA-reserve, then RDMA-write
        shuffle_span = client.obs.tracer.span("app.sort.shuffle", kind="app",
                                              rank=rank)
        shuffle_maps, out_mr, recv_mr = \
            yield from self._open_shuffle_maps(client)
        # rotated destination order: if every worker walked peers
        # 0,1,2,... in lockstep the whole cluster would incast one
        # receiver at a time; starting at rank+1 spreads the load
        sends = []
        cursor = 0
        for step in range(1, workers + 1):
            peer = (rank + step) % workers
            chunk = records[dest == peer]
            if len(chunk) == 0:
                continue
            sends.append((peer, cursor, chunk.tobytes()))
            cursor += len(chunk) * RECORD_BYTES
        if sends:
            # stage every destination's chunk at its own offset, then
            # pipeline the whole shuffle: all FAA reservations go out
            # concurrently, and every record write rides one batched
            # flush instead of a blocking round-trip per destination
            yield from cpu.copy(cursor)
            for _peer, pos, blob in sends:
                out_mr.buffer.write(pos, blob)
            reserve = client.batch()
            for peer, _pos, blob in sends:
                reserve.faa(shuffle_maps[peer], 0, len(blob))
            yield from reserve.flush()
            offsets = yield from reserve.wait_all()
            shuffle = client.batch()
            for (peer, pos, blob), offset in zip(sends, offsets):
                shuffle.write_from(
                    shuffle_maps[peer], out_mr, out_mr.addr + pos,
                    _HEADER + offset, len(blob), wire_scale=self.scale,
                )
            yield from shuffle.flush()
            yield from shuffle.wait_all()
        yield from barrier.wait()  # all shuffle writes have landed
        shuffle_span.finish(bytes=cursor)

        # 5. local sort of the shuffle region
        sort_span = client.obs.tracer.span("app.sort.local_sort", kind="app",
                                           rank=rank)
        own = shuffle_maps[rank]
        tail = yield from own.read(0, _HEADER)
        nbytes = int.from_bytes(tail, "little")
        my_records = np.empty((0, RECORD_BYTES), dtype=np.uint8)
        if nbytes:
            merge = client.batch()
            m_fut = merge.read_into(
                own, recv_mr, recv_mr.addr, _HEADER, nbytes,
                wire_scale=self.scale,
            )
            yield from merge.flush()
            yield from m_fut.wait()
            my_records = np.frombuffer(
                recv_mr.buffer.read(0, nbytes), dtype=np.uint8
            ).reshape(-1, RECORD_BYTES)
            yield from cpu.run(model.sort_cost(len(my_records) * self.scale))
            my_records = my_records[sort_order(my_records)]
        sort_span.finish(records=len(my_records))

        # 6. write the sorted run to a local output region
        out_bytes = max(len(my_records) * RECORD_BYTES, 1)
        out_map, final_mr = yield from self._setup_output(
            rank, client, host_id, out_bytes,
            len(my_records) * RECORD_BYTES,
        )
        if len(my_records):
            blob = my_records.tobytes()
            yield from cpu.copy(len(blob))
            final_mr.buffer.write(0, blob)
            yield from out_map.write_from(
                final_mr, final_mr.addr, 0, len(blob), wire_scale=self.scale
            )
        counts[rank] = len(my_records)
        yield from barrier.wait()  # every sorted run is in the store

    # -- validation helpers ----------------------------------------------------

    def collect_output(self):
        """Read back the global sorted output (generator) — test support."""
        client = self.cluster.client(self.worker_hosts[0])
        parts = []
        for rank in range(self.num_workers):
            mapping = yield from client.map(f"{self.tag}.out.{rank}")
            if mapping.size <= 1:
                continue
            blob = b""
            pos = 0
            while pos < mapping.size:
                take = min(4 * MiB, mapping.size - pos)
                blob += yield from mapping.read(pos, take)
                pos += take
            parts.append(
                np.frombuffer(blob, dtype=np.uint8).reshape(-1, RECORD_BYTES)
            )
        if not parts:
            return np.empty((0, RECORD_BYTES), dtype=np.uint8)
        return np.concatenate(parts)
