"""A Hadoop-TeraSort-class comparator.

Faithful to the map-reduce pipeline the paper measured against, pass by
pass (every byte count below is logical, i.e. wire-scaled):

1. **Map**: read the input split from local disk; partition records by
   the sampled splitters (trie partitioner stand-in); per-record
   framework CPU cost.
2. **Spill**: sort map output runs and write them back to local disk.
3. **Shuffle**: every reducer fetches its partition from every mapper
   over TCP; fetched bytes are written to the reducer's local disk
   (Hadoop spills shuffle input that exceeds memory — at TeraSort
   scale it always does).
4. **Merge + reduce**: read the spilled partitions, merge-sort them,
   write the final output to disk.

Each node owns ``disks_per_node`` spindles (modelled as one aggregate
disk) and the whole pipeline runs through the same fabric and CPU
models as RStore, so the comparison isolates the architecture.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from types import SimpleNamespace
from typing import Optional

import numpy as np

from repro.cluster.builder import Cluster
from repro.disk.disk import Disk, DiskModel
from repro.net.mesh import build_full_mesh
from repro.simnet.resources import Store
from repro.sort.rsort import key_prefix_u64, sort_order
from repro.workloads.kv import RECORD_BYTES, generate_records

__all__ = ["TeraSortModel", "TeraSortBaseline"]

_PORT = 7610
_SAMPLES_PER_WORKER = 128


@dataclass
class TeraSortModel:
    """Hadoop-era cost parameters (per node)."""

    #: spindles per node; they stripe, so IO runs at disks * bandwidth
    #: (a well-provisioned 2014 Hadoop node carried 4-12 drives)
    disks_per_node: int = 5
    #: sequential bandwidth per spindle (bytes/s)
    disk_bandwidth_Bps: float = 150e6
    #: framework cost per record in the map path (deserialize, collect)
    map_per_record_s: float = 300e-9
    #: framework cost per record in the reduce path
    reduce_per_record_s: float = 300e-9
    #: one comparison during spill sort / merge
    per_compare_s: float = 15e-9
    #: records processed on this many cores in parallel
    cores_used: int = 8

    def map_cost(self, records: int) -> float:
        return records * self.map_per_record_s / self.cores_used

    def reduce_cost(self, records: int) -> float:
        return records * self.reduce_per_record_s / self.cores_used

    def sort_cost(self, records: int) -> float:
        if records < 2:
            return 0.0
        return records * math.log2(records) * self.per_compare_s / self.cores_used


class TeraSortBaseline:
    """Distributed sort the Hadoop way: disks, JVM-class CPU, sockets."""

    def __init__(
        self,
        cluster: Cluster,
        records_per_worker: int,
        worker_hosts: Optional[list[int]] = None,
        scale: int = 1,
        seed: int = 0,
        model: Optional[TeraSortModel] = None,
        tag: str = "tera",
    ):
        if records_per_worker < 1:
            raise ValueError("need at least one record per worker")
        self.cluster = cluster
        self.records_per_worker = records_per_worker
        self.worker_hosts = worker_hosts or list(range(cluster.num_machines))
        self.scale = scale
        self.seed = seed
        self.model = model or TeraSortModel()
        self.tag = tag
        sim = cluster.sim
        disk_model = DiskModel(
            read_bandwidth_Bps=self.model.disk_bandwidth_Bps
            * self.model.disks_per_node,
            write_bandwidth_Bps=self.model.disk_bandwidth_Bps
            * self.model.disks_per_node * 0.9,
        )
        self.disks = {
            rank: Disk(sim, disk_model, name=f"{tag}-disk-{rank}")
            for rank in range(self.num_workers)
        }
        self._outputs: dict[int, np.ndarray] = {}

    @property
    def num_workers(self) -> int:
        return len(self.worker_hosts)

    @property
    def total_records(self) -> int:
        return self.records_per_worker * self.num_workers

    @property
    def logical_bytes(self) -> int:
        return self.total_records * RECORD_BYTES * self.scale

    def run(self):
        """Execute the job (generator); returns timing stats."""
        sim = self.cluster.sim
        stacks = {
            rank: self.cluster.tcp_stacks[host]
            for rank, host in enumerate(self.worker_hosts)
        }
        port = _PORT + sum(self.tag.encode()) % 89
        sockets = yield from build_full_mesh(sim, stacks, port)
        # one queue per message kind: a fast peer's shuffle records must
        # not jump ahead of a slow peer's pending splitters broadcast
        inboxes = {
            rank: {k: Store(sim) for k in ("sample", "splitters", "records")}
            for rank in range(self.num_workers)
        }
        for rank in range(self.num_workers):
            for sock in sockets[rank].values():
                sim.process(self._pump(sock, inboxes[rank]))

        stats = SimpleNamespace(elapsed=0.0, logical_bytes=self.logical_bytes)
        t0 = sim.now
        procs = [
            sim.process(
                self._worker(rank, sockets[rank], inboxes[rank]),
                name=f"{self.tag}-node-{rank}",
            )
            for rank in range(self.num_workers)
        ]
        yield sim.all_of(procs)
        stats.elapsed = sim.now - t0
        stats.throughput_Bps = (
            self.logical_bytes / stats.elapsed if stats.elapsed > 0 else 0.0
        )
        return stats

    @staticmethod
    def _pump(sock, inbox):
        while True:
            msg = yield from sock.recv()
            if msg is None:
                return
            inbox[msg[0]].put(msg)

    def _worker(self, rank: int, peers: dict, inbox: Store):
        model = self.model
        host_id = self.worker_hosts[rank]
        cpu = self.cluster.net.host(host_id).cpu
        disk = self.disks[rank]
        workers = self.num_workers
        logical_records = self.records_per_worker * self.scale
        logical_slice = logical_records * RECORD_BYTES

        # -- map phase: read split, sample, partition ----------------------
        records = generate_records(self.records_per_worker, seed=self.seed + rank)
        yield from disk.read(logical_slice)
        yield from cpu.run(model.map_cost(logical_records))
        prefixes = key_prefix_u64(records)

        rng = np.random.default_rng(self.seed + 2000 + rank)
        sample = rng.choice(
            prefixes, size=min(_SAMPLES_PER_WORKER, len(prefixes)),
            replace=False,
        )
        if rank == 0:
            gathered = list(sample)
            for _ in range(workers - 1):
                _kind, _sender, payload = yield inbox["sample"].get()
                gathered.extend(payload)
            gathered.sort()
            splitters = [
                gathered[(i + 1) * len(gathered) // workers - 1]
                for i in range(workers - 1)
            ]
            for peer_sock in peers.values():
                yield from peer_sock.send(("splitters", rank, splitters))
        else:
            yield from peers[0].send(("sample", rank, sample.tolist()))
            _kind, _sender, splitters = yield inbox["splitters"].get()
        splitters = np.array(splitters, dtype=np.uint64)
        dest = np.searchsorted(splitters, prefixes, side="right")

        # -- spill: sorted runs to local disk --------------------------------
        yield from cpu.run(model.sort_cost(logical_records))
        yield from disk.write(logical_slice)

        # -- shuffle: send partitions, spill received bytes -------------------
        mine = [records[dest == rank]]
        for peer in range(workers):
            if peer == rank:
                continue
            chunk = records[dest == peer]
            # read the run segment back from disk before sending
            chunk_logical = len(chunk) * RECORD_BYTES * self.scale
            yield from disk.read(chunk_logical)
            yield from peers[peer].send(
                ("records", rank, chunk.tobytes()),
                wire_size=max(chunk_logical, 1),
            )
        received_logical = 0
        for _ in range(workers - 1):
            _kind, _sender, blob = yield inbox["records"].get()
            part = np.frombuffer(blob, dtype=np.uint8).reshape(-1, RECORD_BYTES)
            mine.append(part)
            part_logical = len(part) * RECORD_BYTES * self.scale
            received_logical += part_logical
            yield from disk.write(part_logical)

        # -- merge + reduce: read spills, merge, write output -----------------
        my_records = np.concatenate(mine) if mine else records[:0]
        my_logical = len(my_records) * self.scale
        yield from disk.read(received_logical)
        yield from cpu.run(model.sort_cost(my_logical))
        yield from cpu.run(model.reduce_cost(my_logical))
        my_records = my_records[sort_order(my_records)] if len(my_records) else my_records
        yield from disk.write(my_logical * RECORD_BYTES)
        self._outputs[rank] = my_records

    def collect_output(self) -> np.ndarray:
        """Concatenated global output (after run) — test support."""
        parts = [
            self._outputs[r]
            for r in range(self.num_workers)
            if len(self._outputs.get(r, ()))
        ]
        if not parts:
            return np.empty((0, RECORD_BYTES), dtype=np.uint8)
        return np.concatenate(parts)
