"""The paper's key-value sorter and its Hadoop TeraSort comparator.

``RSort`` keeps everything in distributed DRAM: input, shuffle buffers
and output are RStore regions.  The shuffle is fully one-sided — a
sender reserves space in the destination's shuffle region with a remote
fetch-and-add on a tail counter, then lands its records with RDMA
writes; the destination's CPU sleeps through the whole exchange.

``TeraSortBaseline`` rebuilds the Hadoop pipeline the paper compares
against: map from disk, spill sorted runs, shuffle over sockets, merge
from disk, write output — every pass charged against the disk and CPU
models.
"""

from repro.sort.rsort import RSort, SortComputeModel
from repro.sort.terasort import TeraSortBaseline, TeraSortModel

__all__ = ["RSort", "SortComputeModel", "TeraSortBaseline", "TeraSortModel"]
