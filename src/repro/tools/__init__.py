"""Command-line utilities (``python -m repro ...``)."""
