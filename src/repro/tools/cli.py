"""The ``python -m repro`` command line.

Sub-commands give a downstream user one-line access to the headline
scenarios without writing simulation code:

* ``info``                — model constants and defaults in use
* ``bandwidth``           — aggregate-bandwidth sweep (E3 shape)
* ``latency``             — data-path latency probe (E2 shape)
* ``pagerank``            — graph framework vs message passing (E5 shape)
* ``sort``                — RSort vs TeraSort pipeline (E7 shape)
* ``kv``                  — the one-sided KV table vs a sockets KV
* ``stats``               — traced run: per-layer latency + call census
* ``trace``               — traced run: the raw span timeline
* ``lint``                — repro-lint: per-file invariants (RL001-7)
* ``analyze``             — whole-program call-graph rules (RL008-11)

All numbers printed are simulated time/throughput.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.cluster import build_cluster
from repro.core import RStoreConfig
from repro.rdma.device import NicModel
from repro.simnet.config import GiB, KiB, MiB, NetworkConfig, us

__all__ = ["main"]


def _build(machines: int, stripe_kib: int, capacity_mib: int,
           shards: int = 1):
    return build_cluster(
        num_machines=machines,
        config=RStoreConfig(stripe_size=stripe_kib * KiB,
                            control_shards=shards),
        server_capacity=capacity_mib * MiB,
    )


def cmd_info(_args) -> int:
    print("model constants (see DESIGN.md for calibration):\n")
    for title, cfg in (
        ("NetworkConfig", NetworkConfig()),
        ("NicModel", NicModel()),
        ("RStoreConfig", RStoreConfig()),
    ):
        print(f"[{title}]")
        for field in dataclasses.fields(cfg):
            print(f"  {field.name} = {getattr(cfg, field.name)}")
        print()
    return 0


def cmd_bandwidth(args) -> int:
    cluster = _build(args.machines, stripe_kib=1024,
                     capacity_mib=args.machines * 64)
    sim = cluster.sim
    per_client = 16 * MiB
    region_size = args.machines * per_client
    moved = {"bytes": 0}

    def reader(host, desc):
        client = cluster.client(host)
        mapping = yield from client.map("bw")
        local = yield from client.alloc_local(region_size)

        def one(stripe):
            yield from mapping.read_into(
                local, local.addr + stripe.index * desc.stripe_size,
                stripe.index * desc.stripe_size, stripe.length,
                wire_scale=args.scale,
            )
            moved["bytes"] += stripe.length * args.scale

        procs = [sim.process(one(s)) for s in desc.stripes
                 if s.host_id != host]
        yield sim.all_of(procs)

    def app():
        desc = yield from cluster.client(0).alloc("bw", region_size)
        for host in range(args.machines):
            yield from cluster.client(host).map("bw")
        t0 = sim.now
        procs = [sim.process(reader(h, desc)) for h in range(args.machines)]
        yield sim.all_of(procs)
        return moved["bytes"] * 8 / (sim.now - t0)

    bps = cluster.run_app(app())
    print(f"machines={args.machines}  aggregate={bps / 1e9:.1f} Gb/s  "
          f"per-machine={bps / 1e9 / args.machines:.1f} Gb/s")
    return 0


def cmd_latency(args) -> int:
    cluster = _build(3, stripe_kib=4096, capacity_mib=64)
    sim = cluster.sim
    client = cluster.client(1)

    def app():
        yield from client.alloc("lat", 2 * MiB, preferred_host=2)
        mapping = yield from client.map("lat")
        local = yield from client.alloc_local(2 * MiB)
        print(f"{'size (B)':>10}  {'read (us)':>10}  {'write (us)':>10}")
        for size in (8, 64, 512, 4096, 32768, 262144, 1048576):
            yield from mapping.read_into(local, local.addr, 0, size)
            t0 = sim.now
            for _ in range(args.reps):
                yield from mapping.read_into(local, local.addr, 0, size)
            read_us = (sim.now - t0) / args.reps * 1e6
            t1 = sim.now
            for _ in range(args.reps):
                yield from mapping.write_from(local, local.addr, 0, size)
            write_us = (sim.now - t1) / args.reps * 1e6
            print(f"{size:>10}  {read_us:>10.2f}  {write_us:>10.2f}")

    cluster.run_app(app())
    return 0


def cmd_pagerank(args) -> int:
    import numpy as np

    from repro.graph import (
        MessagePassingEngine,
        PageRankProgram,
        RStoreGraphEngine,
    )
    from repro.graph.loader import Graph
    from repro.workloads.graphs import rmat_edges

    src, dst = rmat_edges(scale=args.scale, edge_factor=16, seed=42)
    graph = Graph.from_edges(1 << args.scale, src, dst)
    cluster = _build(args.machines, stripe_kib=512,
                     capacity_mib=max(256, (8 << args.scale) // MiB * 8))
    program = PageRankProgram(iterations=args.iterations)
    r = cluster.run_app(
        RStoreGraphEngine(cluster, graph, tag="cli").run(program)
    )
    m = cluster.run_app(
        MessagePassingEngine(cluster, graph, tag="cli-m").run(program)
    )
    assert np.allclose(r.values, m.values)
    print(f"graph: 2^{args.scale} vertices, {graph.num_edges} edges, "
          f"{args.machines} machines, {args.iterations} iterations")
    print(f"RStore framework : {r.elapsed * 1e3:9.2f} ms")
    print(f"message passing  : {m.elapsed * 1e3:9.2f} ms")
    print(f"speedup          : {m.elapsed / r.elapsed:9.2f}x")
    return 0


def cmd_sort(args) -> int:
    from repro.sort import RSort, TeraSortBaseline
    from repro.workloads.kv import RECORD_BYTES, is_sorted

    cluster = build_cluster(
        num_machines=args.machines,
        config=RStoreConfig(stripe_size=1 * MiB),
        server_capacity=64 * GiB,
    )
    real = args.machines * args.records * RECORD_BYTES
    scale = max(1, int(args.gigabytes * 1e9) // real)
    rsort = RSort(cluster, args.records, scale=scale, seed=3, tag="cli")
    r = cluster.run_app(rsort.run())
    assert is_sorted(cluster.run_app(rsort.collect_output()))
    tera = TeraSortBaseline(cluster, args.records, scale=scale, seed=3,
                            tag="cli-t")
    t = cluster.run_app(tera.run())
    print(f"sorting {rsort.logical_bytes / 1e9:.0f} GB (logical) on "
          f"{args.machines} machines")
    print(f"RSort         : {r.elapsed:8.1f} s "
          f"({r.throughput_Bps / 1e9:.2f} GB/s)")
    print(f"TeraSort-like : {t.elapsed:8.1f} s "
          f"({t.throughput_Bps / 1e9:.2f} GB/s)")
    print(f"ratio         : {t.elapsed / r.elapsed:8.1f}x")
    return 0


def cmd_kv(args) -> int:
    from repro.baselines import TcpKvClient, TcpKvServer
    from repro.kv import RKVStore

    cluster = _build(max(3, args.clients + 2), stripe_kib=256,
                     capacity_mib=64)
    sim = cluster.sim

    def worker(rank, host, name):
        view = yield from RKVStore.open(cluster.client(host), name)
        for i in range(args.ops):
            key = f"{rank}-{i % 25}".encode()
            if i % 10 == 0:
                yield from view.put(key, b"v" * 64)
            else:
                yield from view.get(key)

    def run_rstore():
        store = yield from RKVStore.create(cluster.client(1), "cli",
                                           slots=4096)
        yield from store.put(b"warm", b"x")
        t0 = sim.now
        procs = [
            sim.process(worker(r, 1 + r % (cluster.num_machines - 1), "cli"))
            for r in range(args.clients)
        ]
        yield sim.all_of(procs)
        return args.clients * args.ops / (sim.now - t0)

    rstore_ops = cluster.run_app(run_rstore())

    def tcp_worker(client):
        for i in range(args.ops):
            key = f"{client.host_id}-{i % 25}".encode()
            if i % 10 == 0:
                yield from client.put(key, b"v" * 64)
            else:
                yield from client.get(key)

    def run_tcp():
        server = TcpKvServer(cluster, host_id=0)
        clients = []
        for r in range(args.clients):
            host = 1 + r % (cluster.num_machines - 1)
            clients.append(
                (yield from TcpKvClient(cluster, host).connect(server))
            )
        t0 = sim.now
        procs = [sim.process(tcp_worker(c)) for c in clients]
        yield sim.all_of(procs)
        return args.clients * args.ops / (sim.now - t0)

    tcp_ops = cluster.run_app(run_tcp())
    print(f"{args.clients} clients, {args.ops} ops each (90/10 get/put):")
    print(f"RStore KV  : {rstore_ops / 1e3:8.1f} kops/s")
    print(f"sockets KV : {tcp_ops / 1e3:8.1f} kops/s")
    print(f"speedup    : {rstore_ops / tcp_ops:8.2f}x")
    return 0


def cmd_txn(args) -> int:
    import random as _random

    from repro.kv import RKVStore
    from repro.obs import obs_for
    from repro.obs.report import format_counters

    cluster = _build(max(3, args.clients + 1), stripe_kib=64,
                     capacity_mib=64)
    sim = cluster.sim
    obs = obs_for(sim)
    keys = [f"acct-{i:03d}".encode() for i in range(args.accounts)]
    opening = 1000

    def worker(rank, host):
        rng = _random.Random(1234 + rank)
        view = yield from RKVStore.open(cluster.client(host), "bank")
        runtime = view.txn(label=f"cli-{rank}")
        for _ in range(args.transfers):
            src, dst = rng.sample(keys, 2)
            amount = rng.randint(1, 50)

            def transfer(txn, src=src, dst=dst, amount=amount):
                a = int((yield from txn.get(view, src)))
                b = int((yield from txn.get(view, dst)))
                yield from txn.put(view, src, str(a - amount).encode())
                yield from txn.put(view, dst, str(b + amount).encode())

            yield from runtime.run(transfer)
        return runtime

    def app():
        store = yield from RKVStore.create(cluster.client(1), "bank",
                                           slots=4 * args.accounts)
        for key in keys:
            yield from store.put(key, str(opening).encode())
        t0 = sim.now
        procs = [
            cluster.spawn(worker(r, 1 + r % (cluster.num_machines - 1)))
            for r in range(args.clients)
        ]
        yield sim.all_of(procs)
        elapsed = sim.now - t0
        total = 0
        for key in keys:
            total += int((yield from store.get(key)))
        return elapsed, total, [p.value for p in procs]

    elapsed, total, runtimes = cluster.run_app(app())
    commits = sum(rt.commits for rt in runtimes)
    print(f"{args.clients} clients x {args.transfers} two-key transfers "
          f"over {args.accounts} accounts:")
    print(f"throughput : {commits / elapsed / 1e3:8.1f} ktxn/s")
    latency = obs.metrics.merged("txn.commit_s").summary().scaled(1e6)
    print(f"commit     : p50 {latency.p50:.1f} µs, p95 {latency.p95:.1f} "
          f"µs, p99 {latency.p99:.1f} µs")
    print("\ntxn.* counters:")
    print(format_counters(obs.metrics, prefixes=("txn.",)))
    conserved = total == args.accounts * opening
    print(f"\nledger total = {total} "
          f"({'conserved' if conserved else 'LEAKED'})")
    return 0 if conserved else 1


def _traced_run(args):
    """One traced E13-shaped run: warm up, then batched steady reads.

    Two tenants (``acme``, ``globex``) each own a region, sharded over
    ``args.shards`` metadata shards.  Returns ``(cluster, obs,
    baseline)`` where *baseline* holds the post-warm-up census
    snapshots plus the warm-cache re-map RPC count, so the steady-state
    delta isolates the pure data path per shard.
    """
    from repro.obs import obs_for
    from repro.obs.report import call_census, shard_census

    shards = max(1, getattr(args, "shards", 1))
    cluster = _build(args.machines, stripe_kib=64, capacity_mib=64,
                     shards=shards)
    obs = obs_for(cluster.sim)
    obs.tracer.enable()
    client = cluster.client(1)
    region = 2 * MiB
    window = max(1, args.window)
    names = ["acme/obs", "globex/obs"]

    def offset(i):
        return ((i * 37) % (region // (8 * KiB))) * 8 * KiB

    def app():
        # -- setup (control path): alloc, map, connect, warm every QP
        mappings = []
        for name in names:
            yield from client.alloc(name, region)
            mapping = yield from client.map(name)
            for i in range(args.machines):
                yield from mapping.read(i * (region // args.machines), 8)
            mappings.append(mapping)
        baseline = {
            "census": call_census(obs.metrics),
            "shards": shard_census(obs.metrics),
        }
        # -- steady state (data path): batched one-sided reads spread
        # across both tenants' regions
        done = 0
        while done < args.ops:
            batch = client.batch()
            for i in range(done, min(done + window, args.ops)):
                yield from batch.read(mappings[i % len(mappings)],
                                      offset(i), args.op_bytes)
            yield from batch.flush()
            yield from batch.wait_all()
            done += window
        # -- warm-cache proof: re-mapping under a live lease must not
        # issue a single control RPC
        before = client.master_calls
        for name in names:
            yield from client.map(name)
        baseline["warm_map_rpcs"] = client.master_calls - before
        return baseline

    baseline = cluster.run_app(app())
    return cluster, obs, baseline


def cmd_stats(args) -> int:
    from repro.obs.report import (
        call_census,
        format_counters,
        format_table,
        layer_breakdown,
        shard_census,
        tenant_census,
    )

    _cluster, obs, baseline = _traced_run(args)
    print(f"traced run: {args.ops} reads of {args.op_bytes} B, "
          f"batch window {args.window}, {args.machines} machines, "
          f"{args.shards} control shard(s)\n")
    print(format_table(
        "data-path latency by layer (simulated µs)",
        ["layer", "n", "p50", "p95", "p99", "max"],
        layer_breakdown(obs.metrics),
    ))
    steady = call_census(obs.metrics, baseline=baseline["census"])
    print("\ncontrol vs data census (steady state, after warm-up):")
    for key, value in steady.items():
        print(f"  {key} = {value}")
    verdict = ("OK: zero steady-state master RPCs — the data path is "
               "fully one-sided" if steady["master_rpcs"] == 0 else
               "WARNING: the steady state touched the master")
    print(f"  -> {verdict}")

    per_shard = shard_census(obs.metrics, baseline=baseline["shards"])
    print("\nper-shard steady-state control RPCs:")
    print(format_table(
        "", ["shard", "rpcs"],
        [[str(s), str(n)] for s, n in per_shard.items()],
    ))
    warm = baseline["warm_map_rpcs"]
    warm_note = ("OK: leases served from the client cache" if warm == 0
                 else "WARNING: the cache missed under a live lease")
    print(f"  warm-cache re-map issued {warm} control RPC(s) — {warm_note}")

    tenants = tenant_census(obs.metrics)
    if tenants:
        print("\nper-tenant accounting:")
        print(format_table(
            "", ["tenant", "bytes", "quota_denied", "repair_bytes"],
            [[t, str(r["bytes"]), str(r["quota_denied"]),
              str(r["repair_bytes"])] for t, r in tenants.items()],
        ))
    print("\ncounters:")
    print(format_counters(obs.metrics))
    shards_quiet = all(n == 0 for n in per_shard.values())
    ok = steady["master_rpcs"] == 0 and shards_quiet and warm == 0
    return 0 if ok else 1


def cmd_trace(args) -> int:
    from repro.obs.report import trace_report

    _cluster, obs, _baseline = _traced_run(args)
    print(trace_report(obs.tracer, limit=args.limit))
    return 0


def cmd_lint(args) -> int:
    from repro.tools import lint

    return lint.main([str(p) for p in args.paths])


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["analyze"]:
        # dispatched before argparse: the analyzer owns its own flags
        # (argparse REMAINDER drops leading options like --json)
        from repro.tools import analysis

        return analysis.main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="RStore reproduction: simulated-cluster demos",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="print the model constants in use")

    p = sub.add_parser("bandwidth", help="aggregate bandwidth sweep (E3)")
    p.add_argument("--machines", type=int, default=12)
    p.add_argument("--scale", type=int, default=16,
                   help="wire scale factor per byte")

    p = sub.add_parser("latency", help="data-path latency probe (E2)")
    p.add_argument("--reps", type=int, default=5)

    p = sub.add_parser("pagerank", help="graph engines race (E5)")
    p.add_argument("--machines", type=int, default=8)
    p.add_argument("--scale", type=int, default=15)
    p.add_argument("--iterations", type=int, default=10)

    p = sub.add_parser("sort", help="sorters race (E7)")
    p.add_argument("--machines", type=int, default=12)
    p.add_argument("--records", type=int, default=10_000,
                   help="real records per worker")
    p.add_argument("--gigabytes", type=float, default=64.0,
                   help="logical dataset size")

    p = sub.add_parser("kv", help="one-sided KV vs sockets KV (E10)")
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--ops", type=int, default=200)

    p = sub.add_parser("txn", help="contended OCC transactions (E14)")
    p.add_argument("--clients", type=int, default=3)
    p.add_argument("--accounts", type=int, default=32)
    p.add_argument("--transfers", type=int, default=40)

    for name, help_text in (
        ("stats", "traced run: latency breakdown + call census"),
        ("trace", "traced run: the raw span timeline"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("--machines", type=int, default=4)
        p.add_argument("--ops", type=int, default=256)
        p.add_argument("--op-bytes", type=int, default=128)
        p.add_argument("--window", type=int, default=16,
                       help="ops per batched flush")
        p.add_argument("--shards", type=int, default=2,
                       help="metadata shards in the control plane")
        if name == "trace":
            p.add_argument("--limit", type=int, default=60,
                           help="spans to print")

    p = sub.add_parser("lint", help="repro-lint: repo invariant checks")
    p.add_argument("paths", nargs="*",
                   help="files or directories (default: src/repro, "
                        "examples, benchmarks)")

    sub.add_parser(
        "analyze",
        help="whole-program call-graph analysis (RL008-RL011)",
        add_help=False,
    )

    args = parser.parse_args(argv)
    handler = globals()[f"cmd_{args.command}"]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
