"""Shared source layer for the repo's static tools.

``repro lint`` (per-file syntactic checks) and ``repro analyze``
(whole-program call-graph checks) used to each own a copy of the
boring-but-load-bearing plumbing: reading files, parsing them, mapping
paths to repo-relative names, honouring ``# repro-lint: allow[RLxxx]``
suppression comments, and printing ``path:line: RLxxx message``
findings.  This module is the single copy both tools import.

Key pieces:

* :class:`Violation` — one finding; ``detail`` lines (e.g. a printed
  call path) render indented under the headline.
* :class:`SourceFile` — one loaded module: text, split lines, parsed
  AST (or the RL000 violation explaining why it would not parse), and
  the per-line ``allow[...]`` suppression map.
* :func:`tree_root` — the repo root resolved from *this package's*
  location, not the invocation cwd, so running the tools from any
  directory still finds (and lints) the tree.
* :func:`default_paths` / :func:`iter_python_files` — the default
  tool scope (library, examples, benchmarks; tests excluded because
  ``tests/lint`` fixtures *must* violate) and recursive ``*.py``
  discovery.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Optional

__all__ = [
    "Violation",
    "SourceFile",
    "allowed_rules",
    "default_paths",
    "iter_python_files",
    "load_source",
    "tree_root",
]

_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\[([A-Z0-9, ]+)\]")


class Violation:
    """One finding: a file, a line, a rule id, and what went wrong."""

    __slots__ = ("path", "line", "rule", "message", "detail")

    def __init__(self, path: str, line: int, rule: str, message: str,
                 detail: Optional[list] = None):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        #: extra context lines (a call path, a cycle), printed indented
        self.detail = list(detail) if detail else []

    def __str__(self) -> str:
        head = f"{self.path}:{self.line}: {self.rule} {self.message}"
        if self.detail:
            head += "".join(f"\n    {line}" for line in self.detail)
        return head


def allowed_rules(line_text: str) -> set:
    """Rule ids a ``# repro-lint: allow[...]`` comment suppresses."""
    match = _ALLOW_RE.search(line_text)
    if match is None:
        return set()
    return {rule.strip() for rule in match.group(1).split(",")}


class SourceFile:
    """One loaded Python source file, parsed at most once."""

    __slots__ = ("path", "rel", "text", "lines", "tree", "error")

    def __init__(self, path: Path, rel: str, text: str = "",
                 tree=None, error: Optional[Violation] = None):
        self.path = path
        self.rel = rel
        self.text = text
        self.lines = text.splitlines()
        self.tree = tree
        #: the RL000 violation if the file could not be read or parsed
        self.error = error

    def allow_map(self) -> dict:
        """``{line_number: {rule, ...}}`` for lines carrying an allow
        comment (only lines that have one appear)."""
        out = {}
        for lineno, text in enumerate(self.lines, 1):
            rules = allowed_rules(text)
            if rules:
                out[lineno] = rules
        return out

    def suppressed(self, violation: Violation) -> bool:
        if not 1 <= violation.line <= len(self.lines):
            return False
        return violation.rule in allowed_rules(
            self.lines[violation.line - 1]
        )


def relative_name(path: Path, root: Optional[Path]) -> str:
    try:
        return str(path.relative_to(root)) if root else str(path)
    except ValueError:
        return str(path)


def load_source(path: Path, root: Optional[Path] = None) -> SourceFile:
    """Read and parse one file; parse failures become RL000 errors."""
    rel = relative_name(path, root)
    try:
        text = path.read_text()
    except OSError as exc:
        return SourceFile(path, rel, error=Violation(
            str(path), 1, "RL000", f"unreadable: {exc}"))
    try:
        tree = ast.parse(text, filename=str(path))
    except SyntaxError as exc:
        return SourceFile(path, rel, text, error=Violation(
            rel, exc.lineno or 1, "RL000", f"syntax error: {exc.msg}"))
    return SourceFile(path, rel, text, tree=tree)


def tree_root() -> Path:
    """The repo root, resolved from the package location.

    ``src/repro/tools/source.py`` sits three levels below the root, so
    the tools find the tree no matter where they are invoked from.  If
    the package was installed elsewhere (no ``src/repro`` beside it),
    fall back to the invocation cwd.
    """
    root = Path(__file__).resolve().parents[3]
    if (root / "src" / "repro").is_dir():
        return root
    return Path.cwd()


def default_paths(root: Path) -> list:
    """The tree-wide tool scope: library, examples and benchmarks.

    Tests are out of scope by default — ``tests/lint/`` holds fixture
    files that *must* violate the rules.
    """
    return [p for p in (root / "src" / "repro", root / "examples",
                        root / "benchmarks") if p.exists()]


def iter_python_files(paths: list) -> list:
    """Every ``*.py`` under *paths* (dirs recurse), sorted, deduped."""
    seen = set()
    files = []
    for path in paths:
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for file in candidates:
            if file not in seen:
                seen.add(file)
                files.append(file)
    return files
