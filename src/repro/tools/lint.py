"""repro-lint: AST checks for invariants ruff cannot express.

Seven rule families, each guarding a design contract of this repo:

* **RL001 — control-path isolation.**  Data-path modules (any file
  under a ``coord``, ``graph``, ``sort``, ``kv`` or ``txn`` directory)
  must not
  import master/RPC machinery, and may call control-path client
  methods (``alloc``, ``map``, ``lookup``, ``free``, …) only from
  functions whose name marks them as setup/teardown (``create``,
  ``open``, ``load``, ``prepare``, …).  This is the paper's separation
  thesis as a lint rule: steady-state code stays one-sided.
* **RL002 — simulation determinism.**  No wall-clock reads
  (``time.time()`` and friends) and no draws from the process-global
  ``random`` module (or unseeded ``random.Random()`` / numpy
  generators) outside ``simnet/``.  Every source of nondeterminism
  must flow through the simulator's seeded streams, or seeded replay
  breaks.
* **RL003 — no dropped futures.**  A bare expression statement whose
  value is a ``*_async`` call throws the :class:`OpFuture` away:
  nobody will ever observe its error, and (to the race sanitizer) the
  op never happens-before anything.  Store it, await it, or batch it.
* **RL004 — instrument naming.**  Metric and span names follow the
  ``layer.noun_verb`` registry convention with a known first segment,
  so dashboards and ``report.py`` groupers keep working.
* **RL005 — bounded retries.**  A ``while True:`` loop that catches an
  exception and ``continue``\\ s is an unbounded retry: under a
  partition it spins (and keeps the simulation alive) forever.  Every
  retry loop outside ``simnet/`` must be visibly bounded — by a
  deadline, an attempt budget, or a :class:`Backoff` with a deadline —
  or carry an explicit allow comment.
* **RL006 — master endpoints dial through the shard router.**  Since
  the control plane partitioned into metadata shards, the only code
  allowed to name a master's wire endpoint (``config.master_service``)
  is the shard layer itself (``core/shard*.py``) and the master that
  binds it (``core/master.py``).  Everyone else asks the
  :class:`ShardRouter` — otherwise a module silently pins itself to
  shard 0 and breaks under ``control_shards > 1``.
* **RL007 — server-op handlers stay on the data plane.**  Server-side
  executors (``server_*.py`` under a ``datapath`` directory) run
  *inside* a memory server's RPC dispatch on behalf of a remote
  client: one that imports master/RPC/shard machinery or dials a
  control endpoint turns a data op into a hidden control RPC — a
  deadlock risk (the master may be mid-recovery while data ops flow)
  and a violation of the separation thesis at its sharpest point.

Findings print as ``path:line: RLxxx message``; the process exits
nonzero if any survive.  Suppress a deliberate finding with a trailing
``# repro-lint: allow[RLxxx]`` comment on the flagged line.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

from repro.tools.source import (
    Violation,
    default_paths,
    iter_python_files,
    load_source,
    tree_root,
)

__all__ = ["Violation", "default_paths", "lint_file", "lint_paths", "main"]

#: path segments marking one-sided data-path packages (RL001 scope)
DATA_PATH_SEGMENTS = {"coord", "graph", "sort", "kv", "txn"}

#: imports of these modules are master/RPC machinery (RL001)
FORBIDDEN_IMPORTS = ("repro.rpc", "repro.core.master")

#: method names that are control-path calls on a client/master handle
CONTROL_METHODS = {
    "alloc", "map", "lookup", "free", "resize", "barrier", "allreduce",
    "notify", "wait_note", "list_regions", "alloc_local", "_master_call",
}

#: a function may use the control path if its (or any enclosing
#: function's) name contains one of these tokens — the create/open/
#: setup/teardown vocabulary of this codebase
CONTROL_FUNC_TOKENS = (
    "create", "open", "alloc", "map", "setup", "load", "prepare",
    "boot", "start", "close", "free", "collect", "init", "fetch",
)

#: wall-clock reads on the ``time`` module (RL002)
WALL_CLOCK_FUNCS = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
}

#: draws on the process-global ``random`` module (RL002)
RANDOM_DRAWS = {
    "random", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "gauss",
    "normalvariate", "expovariate", "betavariate", "triangular",
}

#: registry/tracer methods whose first argument is an instrument name
INSTRUMENT_METHODS = {"counter", "gauge", "histogram", "span", "record",
                      "event"}

#: allowed first segments of an instrument name (``layer.noun_verb``)
LAYERS = {
    "app", "client", "control", "coord", "data", "datapath", "graph",
    "kv", "master", "obs", "rnic", "rpc", "rsan", "sim", "sort",
    "span", "txn",
}

#: identifiers mentioning any of these mark a retry loop as bounded
#: (RL005) — deadlines, budgets, attempt counters, Backoff expiry
BOUND_TOKENS = ("deadline", "budget", "attempt", "expired", "remaining",
                "limit")

#: file basenames allowed to touch ``master_service`` directly (RL006):
#: the shard layer that owns endpoint naming, and the master binding it
DIAL_ALLOWED_FILES = ("master.py", "shard")

#: imports forbidden inside server-op executors (RL007): RPC client
#: machinery, the master, and the shard router are all control plane
SERVER_OP_FORBIDDEN_IMPORTS = ("repro.rpc", "repro.core.master",
                               "repro.core.shard")

#: methods a server-op executor may never call (RL007): each one dials
#: or routes to a master
SERVER_OP_FORBIDDEN_CALLS = {"_master_call", "client_for", "connect_all"}

_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")
_PREFIX_RE = re.compile(r"^[a-z0-9_.]+$")


def _attr_name(func) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dotted(node) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ""."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _handler_continues(stmts) -> bool:
    """True if *stmts* reach a ``continue`` of the enclosing loop.

    Recurses through if/with/try bodies but stops at nested loops and
    function definitions — a ``continue`` in those belongs to them.
    """
    for stmt in stmts:
        if isinstance(stmt, ast.Continue):
            return True
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor,
                             ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for field in ("body", "orelse", "finalbody"):
            if _handler_continues(getattr(stmt, field, [])):
                return True
        if isinstance(stmt, ast.Try):
            if any(_handler_continues(h.body) for h in stmt.handlers):
                return True
    return False


def _retrying_trys(stmts):
    """``try`` statements of one loop body whose handlers continue it."""
    for stmt in stmts:
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor,
                             ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(stmt, ast.Try) and any(
            _handler_continues(handler.body) for handler in stmt.handlers
        ):
            yield stmt
        for field in ("body", "orelse", "finalbody"):
            yield from _retrying_trys(getattr(stmt, field, []))
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                yield from _retrying_trys(handler.body)


def _mentions_bound(node) -> bool:
    """Any identifier in *node*'s subtree that names a bound."""
    for sub in ast.walk(node):
        text = ""
        if isinstance(sub, ast.Name):
            text = sub.id
        elif isinstance(sub, ast.Attribute):
            text = sub.attr
        elif isinstance(sub, ast.keyword) and sub.arg:
            text = sub.arg
        if text and any(token in text.lower() for token in BOUND_TOKENS):
            return True
    return False


def _unwrap_awaitable(node):
    """The call inside ``await x()`` / ``yield from x()`` / ``x()``."""
    if isinstance(node, ast.Await):
        return _unwrap_awaitable(node.value)
    if isinstance(node, (ast.YieldFrom, ast.Yield)):
        return _unwrap_awaitable(node.value) if node.value else None
    if isinstance(node, ast.Call):
        return node
    return None


class _Checker(ast.NodeVisitor):
    def __init__(self, path: Path, rel: str):
        self.rel = rel
        parts = set(path.parts)
        self.data_path = bool(parts & DATA_PATH_SEGMENTS)
        self.in_simnet = "simnet" in parts
        self.may_dial_master = (path.name == "config.py"
                                or path.name.startswith(DIAL_ALLOWED_FILES))
        #: a server-op executor module (RL007 scope)
        self.dp_server = ("datapath" in parts
                          and path.name.startswith("server_"))
        self.func_stack: list[str] = []
        self.violations: list[Violation] = []

    def flag(self, node, rule: str, message: str):
        self.violations.append(
            Violation(self.rel, getattr(node, "lineno", 1), rule, message)
        )

    # -- function context -----------------------------------------------------

    def visit_FunctionDef(self, node):
        self.func_stack.append(node.name)
        self.generic_visit(node)
        self.func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def _in_control_func(self) -> bool:
        return any(
            token in name.lower()
            for name in self.func_stack
            for token in CONTROL_FUNC_TOKENS
        )

    # -- RL001: imports -------------------------------------------------------

    def visit_Import(self, node):
        if self.data_path:
            for alias in node.names:
                if alias.name.startswith(FORBIDDEN_IMPORTS):
                    self.flag(node, "RL001",
                              f"data-path module imports {alias.name!r} "
                              "(master/RPC machinery)")
        if self.dp_server:
            for alias in node.names:
                if alias.name.startswith(SERVER_OP_FORBIDDEN_IMPORTS):
                    self.flag(node, "RL007",
                              f"server-op executor imports {alias.name!r} "
                              "— handlers run inside RPC dispatch and must "
                              "never reach the control plane")
        self.generic_visit(node)

    def visit_ImportFrom(self, node):
        if self.data_path and node.module:
            if node.module.startswith(FORBIDDEN_IMPORTS):
                self.flag(node, "RL001",
                          f"data-path module imports from {node.module!r} "
                          "(master/RPC machinery)")
        if self.dp_server and node.module:
            if node.module.startswith(SERVER_OP_FORBIDDEN_IMPORTS):
                self.flag(node, "RL007",
                          f"server-op executor imports from "
                          f"{node.module!r} — handlers run inside RPC "
                          "dispatch and must never reach the control plane")
        self.generic_visit(node)

    # -- RL005: unbounded retry loops ----------------------------------------

    def visit_While(self, node):
        forever = isinstance(node.test, ast.Constant) and node.test.value
        if forever and not self.in_simnet and not _mentions_bound(node):
            for stmt in _retrying_trys(node.body):
                self.flag(stmt, "RL005",
                          "unbounded retry: `while True` catches and "
                          "continues with no deadline, budget, or attempt "
                          "bound in sight — a partition spins this loop "
                          "forever")
        self.generic_visit(node)

    # -- RL006: direct master endpoint naming --------------------------------

    def visit_Attribute(self, node):
        if node.attr == "master_service" and not self.may_dial_master:
            self.flag(node, "RL006",
                      "names the master wire endpoint (.master_service) "
                      "directly — dial through the ShardRouter so the call "
                      "reaches the owning metadata shard")
        self.generic_visit(node)

    # -- RL003: dropped futures ----------------------------------------------

    def visit_Expr(self, node):
        call = _unwrap_awaitable(node.value)
        if call is not None:
            name = _attr_name(call.func)
            if name.endswith("_async"):
                self.flag(node, "RL003",
                          f"result of {name}() is discarded — the future "
                          "must be stored, awaited, or batched")
        self.generic_visit(node)

    # -- calls: RL001 / RL002 / RL004 ----------------------------------------

    def visit_Call(self, node):
        name = _attr_name(node.func)
        dotted = _dotted(node.func)

        # RL001: control-path calls from steady-state data-path code
        if (self.data_path and name in CONTROL_METHODS
                and isinstance(node.func, ast.Attribute)
                and not self._in_control_func()):
            where = (f"function {self.func_stack[-1]!r}" if self.func_stack
                     else "module level")
            self.flag(node, "RL001",
                      f"control-path call .{name}() from {where} — move it "
                      "into a create/open/setup-style function")

        # RL007: server-op executors must not dial the control plane
        if self.dp_server and name in SERVER_OP_FORBIDDEN_CALLS:
            self.flag(node, "RL007",
                      f"server-op executor calls {name}() — handlers run "
                      "inside RPC dispatch; dialing masters or opening "
                      "channels from there is a hidden control RPC and a "
                      "deadlock risk")

        # RL002: nondeterminism outside simnet/
        if not self.in_simnet:
            root, _, leaf = dotted.rpartition(".")
            if root == "time" and leaf in WALL_CLOCK_FUNCS:
                self.flag(node, "RL002",
                          f"wall-clock read {dotted}() — use the simulated "
                          "clock (sim.now)")
            elif root == "random" and leaf in RANDOM_DRAWS:
                self.flag(node, "RL002",
                          f"draw from the process-global RNG {dotted}() — "
                          "use a seeded stream (simnet.rand.derive_rng)")
            elif dotted == "random.Random" and not node.args:
                self.flag(node, "RL002",
                          "unseeded random.Random() — pass an explicit "
                          "seed derived from the config")
            elif leaf == "default_rng" and not node.args:
                self.flag(node, "RL002",
                          "unseeded numpy default_rng() — pass an explicit "
                          "seed derived from the config")
            elif ((root.endswith("np.random") or root == "numpy.random")
                    and leaf != "default_rng"):
                self.flag(node, "RL002",
                          f"draw from numpy's global RNG {dotted}() — use "
                          "a seeded Generator")

        # RL004: instrument naming
        if name in INSTRUMENT_METHODS and isinstance(node.func,
                                                     ast.Attribute):
            self._check_instrument_name(node)

        self.generic_visit(node)

    def _check_instrument_name(self, node):
        if not node.args:
            return
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            self._check_name_text(node, first.value, full=True)
        elif isinstance(first, ast.JoinedStr) and first.values:
            lead = first.values[0]
            if isinstance(lead, ast.Constant) and isinstance(lead.value, str):
                # an f-string: validate the leading constant prefix only
                self._check_name_text(node, lead.value, full=False)
            else:
                # the f-string *starts* with a FormattedValue: the layer
                # prefix is fully dynamic and cannot be checked at all —
                # unverifiable unless an allow comment vouches for it
                self.flag(node, "RL004",
                          "instrument name is an f-string with a fully "
                          "dynamic prefix — the layer segment cannot be "
                          "verified; start with a constant "
                          "'layer.' prefix or add an allow comment")

    def _check_name_text(self, node, text: str, full: bool):
        ok = (_NAME_RE.fullmatch(text) if full
              else _PREFIX_RE.fullmatch(text) and "." in text)
        segment = text.split(".", 1)[0]
        if not ok:
            self.flag(node, "RL004",
                      f"instrument name {text!r} does not follow the "
                      "layer.noun_verb convention")
        elif segment not in LAYERS:
            self.flag(node, "RL004",
                      f"instrument name {text!r} starts with unknown layer "
                      f"{segment!r} (known: {', '.join(sorted(LAYERS))})")


def lint_file(path: Path, root: Path = None) -> list[Violation]:
    """Lint one Python file; returns its surviving violations."""
    source = load_source(path, root=root)
    if source.error is not None:
        return [source.error]
    checker = _Checker(path, source.rel)
    checker.visit(source.tree)
    return [v for v in checker.violations if not source.suppressed(v)]


def lint_paths(paths: list[Path], root: Path = None) -> list[Violation]:
    """Lint files and directories (recursively); returns all findings."""
    violations: list[Violation] = []
    for file in iter_python_files(paths):
        violations.extend(lint_file(file, root=root))
    violations.sort(key=lambda v: (v.path, v.line, v.rule))
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description="check repo invariants ruff cannot express",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/repro, "
                             "examples, benchmarks)")
    args = parser.parse_args(argv)
    # the tree root comes from the package location, not the cwd: a
    # `python -m repro lint` from anywhere still lints this repo
    root = tree_root()
    paths = args.paths or default_paths(root)
    if not iter_python_files(paths):
        print("repro-lint: no Python files in scope — nothing was "
              "checked (refusing to report a clean tree)",
              file=sys.stderr)
        return 2
    violations = lint_paths(paths, root=root)
    for violation in violations:
        print(violation)
    if violations:
        print(f"repro-lint: {len(violations)} violation(s)")
        return 1
    print("repro-lint: clean")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
