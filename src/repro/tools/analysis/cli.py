"""``python -m repro analyze`` — the whole-program gate.

Exit codes: 0 clean (modulo suppressions and baseline), 1 findings,
2 empty scope (an analysis that checked nothing must not report a
clean tree).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.tools.analysis.baseline import BASELINE_NAME, write_baseline
from repro.tools.analysis.runner import analyze_paths
from repro.tools.source import default_paths, iter_python_files, tree_root

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro analyze",
        description="whole-program static analysis: call-graph rules "
                    "RL008-RL011",
    )
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories (default: src/repro, "
                             "examples, benchmarks)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the stable finding schema for CI "
                             "diffing")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the summary cache")
    parser.add_argument("--baseline", type=Path, default=None,
                        help=f"baseline file (default: {BASELINE_NAME} "
                             "at the tree root)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline to grandfather every "
                             "current finding, then exit 0")
    args = parser.parse_args(argv)

    root = tree_root()
    paths = args.paths or default_paths(root)
    if not iter_python_files(paths):
        print("repro-analyze: no Python files in scope — nothing was "
              "checked (refusing to report a clean tree)",
              file=sys.stderr)
        return 2
    baseline = args.baseline or (root / BASELINE_NAME)
    result = analyze_paths(paths, root, use_cache=not args.no_cache,
                           baseline=baseline)

    if args.write_baseline:
        write_baseline(baseline, result.findings)
        print(f"repro-analyze: baselined {len(result.findings)} "
              f"finding(s) into {baseline}")
        return 0

    if args.as_json:
        print(json.dumps(result.to_json(), indent=2))
        return 1 if (result.findings or result.errors) else 0

    for violation in result.errors + result.findings:
        print(violation)
    notes = [f"{result.files} files", f"{result.functions} functions",
             f"{result.edges} call edges",
             f"cache {result.cache.hits} hit/"
             f"{result.cache.misses} miss"]
    if result.suppressed:
        notes.append(f"{result.suppressed} suppressed")
    if result.baselined:
        notes.append(f"{result.baselined} baselined")
    total = len(result.findings) + len(result.errors)
    if total:
        print(f"repro-analyze: {total} finding(s) "
              f"({', '.join(notes)})")
        return 1
    print(f"repro-analyze: clean ({', '.join(notes)})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via the CLI
    sys.exit(main())
