"""Linking: module summaries -> one program with a resolved call graph.

Name resolution is deliberately conservative: an edge exists only when
the callee can be pinned to a single known function — a module-level
name, an imported function, ``self.method`` through the class (and its
resolvable bases), ``Cls.method`` through an imported class, or a
method on a value whose constructing class was captured by the
summary (``lock = RemoteLock.open(...)``; ``self._lock = RemoteLock(
...)``).  Everything else stays unresolved and contributes no edge —
the right bias for gating rules, which must not invent call paths.
"""

from __future__ import annotations

__all__ = ["Program"]


class Program:
    """Every summary in scope, indexed and cross-linked.

    Functions are addressed as ``"<module>:<Qual.name>"`` (fids),
    classes as ``"<module>:<Class>"`` (cids).
    """

    def __init__(self, summaries: list):
        self.modules = {s["module"]: s for s in summaries}
        self.functions = {}
        self.classes = {}
        for s in summaries:
            for qual, record in s["functions"].items():
                fid = f"{s['module']}:{qual}"
                self.functions[fid] = record
                record["fid"] = fid
                record["module"] = s["module"]
                record["rel"] = s["rel"]
                record["data_path"] = s["data_path"]
            for qual, record in s["classes"].items():
                cid = f"{s['module']}:{qual}"
                self.classes[cid] = record
                record["cid"] = cid
                record["module"] = s["module"]
        # resolved call graph: fid -> [(call_index, callee_fid)]
        self.edges = {}
        self.redges = {}    # callee_fid -> [(caller_fid, call_index)]
        for fid in sorted(self.functions):
            resolved = []
            for index, call in enumerate(self.functions[fid]["calls"]):
                callee = self.resolve_call(fid, call)
                if callee is not None:
                    resolved.append((index, callee))
                    self.redges.setdefault(callee, []).append(
                        (fid, index))
            self.edges[fid] = resolved

    # -- name resolution ---------------------------------------------------

    def _binding(self, module: str, name: str):
        """What *name* means at module scope: a ("module"|"class"|
        "function", id) ref, or None."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        if name in summary["functions"] and "." not in name:
            return ("function", f"{module}:{name}")
        if name in summary["classes"] and "." not in name:
            return ("class", f"{module}:{name}")
        target = summary["imports"].get(name)
        if target is None:
            return None
        return self._dotted_ref(target)

    def _dotted_ref(self, dotted: str):
        """Resolve an absolute dotted path against the program."""
        if dotted in self.modules:
            return ("module", dotted)
        if "." in dotted:
            head, leaf = dotted.rsplit(".", 1)
            if head in self.modules:
                summary = self.modules[head]
                if leaf in summary["classes"]:
                    return ("class", f"{head}:{leaf}")
                if leaf in summary["functions"]:
                    return ("function", f"{head}:{leaf}")
                return None
            # one more hop: package.module.Class
            ref = self._dotted_ref(head)
            if ref and ref[0] == "class":
                return None  # attribute of a class handled elsewhere
        return None

    def resolve_class(self, module: str, text: str):
        """A class id for dotted *text* as written in *module*."""
        if not text:
            return None
        head, _, rest = text.partition(".")
        ref = self._binding(module, head)
        if ref is None:
            ref = self._dotted_ref(text)
            return ref[1] if ref and ref[0] == "class" else None
        while rest and ref:
            part, _, rest = rest.partition(".")
            if ref[0] == "module":
                ref = self._binding(ref[1], part)
            else:
                return None
        return ref[1] if ref and ref[0] == "class" else None

    def resolve_method(self, cid: str, name: str, _seen=None):
        """A function id for method *name* on class *cid* (MRO walk)."""
        _seen = _seen or set()
        if cid in _seen or cid not in self.classes:
            return None
        _seen.add(cid)
        record = self.classes[cid]
        module, qual = cid.split(":", 1)
        fid = f"{module}:{qual}.{name}"
        if fid in self.functions:
            return fid
        for base in record["bases"]:
            base_cid = self.resolve_class(module, base)
            if base_cid:
                found = self.resolve_method(base_cid, name, _seen)
                if found:
                    return found
        return None

    def _ctor_class(self, module: str, ctor: str):
        """The class a captured constructor expression names.

        Accepts ``Cls``, ``mod.Cls``, and the ``Cls.create`` /
        ``Cls.open`` factory idiom (classmethods returning ``cls``).
        """
        cid = self.resolve_class(module, ctor)
        if cid:
            return cid
        if "." in ctor:
            head = ctor.rsplit(".", 1)[0]
            return self.resolve_class(module, head)
        return None

    def local_type(self, fid: str, var: str):
        """Class id of a local variable, via its captured constructor."""
        func = self.functions[fid]
        record = func["local_types"].get(var)
        if record is None:
            return None
        return self._ctor_class(func["module"], record["ctor"])

    def attr_type(self, cid: str, attr: str):
        """Class id of ``self.<attr>`` on class *cid*."""
        record = self.classes.get(cid, {}).get("attrs", {}).get(attr)
        if record is None:
            return None
        return self._ctor_class(cid.split(":", 1)[0], record["ctor"])

    def resolve_call(self, fid: str, call: dict):
        """The single function a call record names, or None."""
        func = self.functions[fid]
        module = func["module"]
        name, recv = call["name"], call["recv"]
        own_cid = f"{module}:{func['cls']}" if func["cls"] else None

        if not recv:  # bare name
            ref = self._binding(module, name)
            if ref is None:
                return None
            if ref[0] == "function":
                return ref[1]
            if ref[0] == "class":
                return self.resolve_method(ref[1], "__init__")
            return None

        if recv in ("self", "cls") and own_cid:
            return self.resolve_method(own_cid, name)

        head, _, rest = recv.partition(".")
        if head in ("self", "cls") and own_cid:
            if rest and "." not in rest:
                cid = self.attr_type(own_cid, rest)
                return self.resolve_method(cid, name) if cid else None
            return None

        # a local whose constructing class the summary captured
        if "." not in recv:
            cid = self.local_type(fid, recv)
            if cid:
                return self.resolve_method(cid, name)

        # imported class / module / dotted chain
        ref = self._binding(module, head)
        while rest and ref and ref[0] == "module":
            part, _, rest = rest.partition(".")
            ref = self._binding(ref[1], part)
        if ref is None or rest:
            return None
        if ref[0] == "class":
            return self.resolve_method(ref[1], name)
        if ref[0] == "module":
            return self._function_in(ref[1], name)
        return None

    def _function_in(self, module: str, name: str):
        fid = f"{module}:{name}"
        return fid if fid in self.functions else None

    # -- fixpoint helpers --------------------------------------------------

    def propagate_flag(self, seeds: set) -> dict:
        """Reverse-reachability with witness edges.

        Returns ``{fid: (call_line, callee_fid) | None}`` for every
        function that reaches a seed; seeds map to ``None``.  BFS order
        makes every recorded witness a shortest chain, and the sorted
        seed/edge iteration keeps it deterministic.
        """
        reach = {fid: None for fid in sorted(seeds)}
        frontier = sorted(seeds)
        while frontier:
            next_frontier = []
            for callee in frontier:
                for caller, index in sorted(
                        self.redges.get(callee, [])):
                    if caller in reach:
                        continue
                    line = self.functions[caller]["calls"][index]["line"]
                    reach[caller] = (line, callee)
                    next_frontier.append(caller)
            frontier = sorted(next_frontier)
        return reach

    def propagate_sets(self, direct: dict) -> dict:
        """Transitive union of per-function sets over the call graph:
        ``result[f] = direct[f] | union(result[g] for g called by f)``.
        """
        result = {fid: set(values) for fid, values in direct.items()}
        changed = sorted(fid for fid, values in result.items() if values)
        while changed:
            frontier = set()
            for callee in changed:
                for caller, _index in self.redges.get(callee, []):
                    before = len(result[caller])
                    result[caller] |= result[callee]
                    if len(result[caller]) != before:
                        frontier.add(caller)
            changed = sorted(frontier)
        return result
