"""Per-file extraction: one JSON-friendly summary per module.

Everything the interprocedural passes need from a file is distilled
here into plain dicts — imports, classes (bases, constructed attribute
types), and per-function records of the calls made, control-path
sites, lock acquire/release order, future creation and consumption,
raises, and broad retry-loop catches.  Dicts, not AST nodes, so the
whole summary round-trips through the mtime+hash cache and a warm
``repro analyze`` never re-parses an unchanged file.

Findings that need no cross-function knowledge (a ``*_async`` future
assigned to a name that is never read again) are decided here and
travel inside the summary; everything else is left as raw material for
:mod:`repro.tools.analysis.rules`.
"""

from __future__ import annotations

import ast
from pathlib import PurePath

from repro.tools.lint import (
    CONTROL_FUNC_TOKENS,
    CONTROL_METHODS,
    DATA_PATH_SEGMENTS,
    _dotted,
    _handler_continues,
    _retrying_trys,
    _unwrap_awaitable,
)
from repro.tools.source import SourceFile

__all__ = ["SCHEMA_VERSION", "module_name", "summarize_source"]

#: bump to invalidate every cached summary when the shape changes
SCHEMA_VERSION = 1

#: attribute calls that acquire a coordination lock (RL010)
ACQUIRE_METHODS = {"acquire", "try_acquire", "try_lock"}

#: attribute calls that release one (``publish``/``abort`` are the
#: SeqLock write-path exits)
RELEASE_METHODS = {"release", "publish", "abort", "unlock"}

#: handler annotations broad enough to swallow Fatal errors (RL011)
BROAD_EXCEPTIONS = {"Exception", "BaseException"}


def module_name(rel: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/coord/lock.py`` -> ``repro.coord.lock``; files outside
    ``src`` keep their tree position (``tests.lint.coord.fixture``).
    """
    parts = list(PurePath(rel).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or rel


def _resolve_relative(module: str, node: ast.ImportFrom) -> str:
    """Absolute dotted module an ``ImportFrom`` names."""
    if not node.level:
        return node.module or ""
    base = module.split(".")
    # level 1 strips the filename, each extra level one more package
    base = base[: max(0, len(base) - node.level)]
    if node.module:
        base.append(node.module)
    return ".".join(base)


def _collect_imports(tree: ast.AST, module: str) -> dict:
    """Name bindings this module's imports create (incl. nested)."""
    bindings = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    bindings[alias.asname] = alias.name
                else:
                    # `import a.b.c` binds `a`, but dotted uses of the
                    # full path resolve through the module index anyway
                    bindings[alias.name.split(".")[0]] = (
                        alias.name.split(".")[0]
                    )
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(module, node)
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                bindings[bound] = f"{target}.{alias.name}" if target \
                    else alias.name
    return bindings


def _first_str_arg(call: ast.Call):
    for arg in call.args:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
    return None


def _ctor_record(value):
    """``{"ctor": dotted, "name": str|None}`` if *value* constructs
    something nameable (``Cls(...)``, ``Cls.create(...)``, possibly
    behind ``yield from`` / ``await``)."""
    call = _unwrap_awaitable(value)
    if call is None:
        return None
    ctor = _dotted(call.func)
    if not ctor:
        return None
    return {"ctor": ctor, "name": _first_str_arg(call)}


def _is_async_call(call: ast.Call) -> bool:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr.endswith("_async")
    if isinstance(call.func, ast.Name):
        return call.func.id.endswith("_async")
    return False


def _own_nodes(body):
    """DFS over statements/expressions of one function, not entering
    nested function or class definitions."""
    stack = list(reversed(body))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(reversed([child for child in
                               ast.iter_child_nodes(node)]))


def _broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        text = _dotted(node)
        if text.split(".")[-1] in BROAD_EXCEPTIONS:
            return True
    return False


def _summarize_function(node, qual, cls, control_named):
    calls = []            # [{line, name, recv}]
    call_index = {}       # id(Call) -> index
    own = [n for n in _own_nodes(node.body)]
    for sub in sorted((n for n in own if isinstance(n, ast.Call)),
                      key=lambda n: (n.lineno, n.col_offset)):
        if isinstance(sub.func, ast.Attribute):
            name = sub.func.attr
            recv = _dotted(sub.func.value)
        elif isinstance(sub.func, ast.Name):
            name = sub.func.id
            recv = ""
        else:
            continue
        call_index[id(sub)] = len(calls)
        calls.append({"line": sub.lineno, "name": name, "recv": recv})

    control_sites = [
        {"line": c["line"], "name": c["name"]}
        for c in calls
        if c["name"] in CONTROL_METHODS and c["recv"]
    ]

    # -- reads: every Name load anywhere in the function, nested
    # closures included (a closure consuming a future counts)
    loads = {sub.id for sub in ast.walk(node)
             if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)}

    local_types = {}      # var -> {"ctor", "name"}
    future_vars = set()   # vars ever assigned a *_async result
    findings = []         # intraprocedural findings, ready to report
    assigned_calls = []   # [{line, var, index}] plain-call assignments
    attr_writes = {}      # self.attr -> {"ctor", "name"} (class attrs)

    for sub in own:
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            target = sub.targets[0]
            value = _unwrap_awaitable(sub.value)
            if isinstance(target, ast.Name) and value is not None:
                record = _ctor_record(sub.value)
                if record:
                    local_types[target.id] = record
                if _is_async_call(value):
                    future_vars.add(target.id)
                    if target.id not in loads:
                        findings.append({
                            "rule": "RL009", "line": sub.lineno,
                            "function": qual,
                            "message": (
                                f"future assigned to {target.id!r} is "
                                "never read again — nobody waits it, "
                                "nobody sees its error (and to RSan "
                                "the op stays concurrent forever)"),
                        })
                elif id(value) in call_index and target.id not in loads:
                    assigned_calls.append({
                        "line": sub.lineno, "var": target.id,
                        "index": call_index[id(value)],
                    })
            elif (isinstance(target, ast.Attribute)
                  and isinstance(target.value, ast.Name)
                  and target.value.id == "self"):
                record = _ctor_record(sub.value)
                if record:
                    attr_writes[target.attr] = record

    # -- lock event stream, in source order (RL010 raw material)
    events = []
    for index, c in enumerate(calls):
        if c["name"] in ACQUIRE_METHODS and c["recv"] and \
                c["recv"] != "self":
            events.append({"op": "acq", "recv": c["recv"],
                           "line": c["line"]})
        elif c["name"] in RELEASE_METHODS and c["recv"] and \
                c["recv"] != "self":
            events.append({"op": "rel", "recv": c["recv"],
                           "line": c["line"]})
        else:
            events.append({"op": "call", "index": index,
                           "line": c["line"]})

    # -- returns (RL009's interprocedural seed)
    returns_future = False
    return_calls = []
    for sub in own:
        if isinstance(sub, ast.Return) and sub.value is not None:
            value = _unwrap_awaitable(sub.value)
            if value is not None and _is_async_call(value):
                returns_future = True
            elif value is not None and id(value) in call_index:
                return_calls.append(call_index[id(value)])
            elif (isinstance(sub.value, ast.Name)
                  and sub.value.id in future_vars):
                returns_future = True

    # -- bare-expression calls (RL009: discarded future-returning
    # helpers; the direct *_async case is RL003's, skip it here)
    bare_calls = []
    for sub in own:
        if isinstance(sub, ast.Expr):
            value = _unwrap_awaitable(sub.value)
            if value is not None and id(value) in call_index and \
                    not _is_async_call(value):
                bare_calls.append({"line": sub.lineno,
                                   "index": call_index[id(value)]})

    # -- raises (RL011's interprocedural seed)
    raises = []
    for sub in own:
        if isinstance(sub, ast.Raise) and sub.exc is not None:
            exc = sub.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            text = _dotted(exc)
            if text:
                raises.append(text)

    # -- broad swallowing handlers in retry loops (RL011)
    swallows = []
    for sub in own:
        if not isinstance(sub, (ast.While, ast.For)):
            continue
        for try_stmt in _retrying_trys(sub.body):
            for handler in try_stmt.handlers:
                if not _broad_handler(handler):
                    continue
                if not _handler_continues(handler.body):
                    continue
                if any(isinstance(n, ast.Raise)
                       for n in _own_nodes(handler.body)):
                    continue
                try_call_indices = sorted({
                    call_index[id(n)]
                    for stmt in try_stmt.body
                    for n in ast.walk(stmt)
                    if id(n) in call_index
                })
                swallows.append({
                    "line": handler.lineno,
                    "calls": try_call_indices,
                })

    return {
        "name": node.name,
        "qual": qual,
        "cls": cls,
        "line": node.lineno,
        "control_named": control_named,
        "calls": calls,
        "control_sites": control_sites,
        "local_types": local_types,
        "events": events,
        "returns_future": returns_future,
        "return_calls": return_calls,
        "bare_calls": bare_calls,
        "assigned_calls": assigned_calls,
        "raises": raises,
        "swallows": swallows,
        "findings": findings,
    }, attr_writes


def _is_control_named(stack) -> bool:
    return any(token in name.lower()
               for name in stack
               for token in CONTROL_FUNC_TOKENS)


def summarize_source(source: SourceFile) -> dict:
    """The whole-module summary the linker and cache consume."""
    rel = source.rel
    module = module_name(rel)
    parts = set(PurePath(rel).parts)
    summary = {
        "schema": SCHEMA_VERSION,
        "rel": rel,
        "module": module,
        "data_path": bool(parts & DATA_PATH_SEGMENTS),
        "imports": _collect_imports(source.tree, module),
        "classes": {},
        "functions": {},
        "allow": {str(k): sorted(v) for k, v in
                  source.allow_map().items()},
    }

    def visit_function(node, prefix, cls, name_stack):
        qual = f"{prefix}{node.name}" if prefix else node.name
        stack = name_stack + [node.name]
        record, attr_writes = _summarize_function(
            node, qual, cls, _is_control_named(stack))
        summary["functions"][qual] = record
        if cls is not None and attr_writes:
            summary["classes"][cls]["attrs"].update(attr_writes)
        for child in node.body:
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                visit_function(child, f"{qual}.", cls, stack)

    def visit_class(node, prefix):
        qual = f"{prefix}{node.name}" if prefix else node.name
        summary["classes"][qual] = {
            "line": node.lineno,
            "bases": [_dotted(b) for b in node.bases if _dotted(b)],
            "attrs": {},
        }
        for child in node.body:
            if isinstance(child, (ast.FunctionDef,
                                  ast.AsyncFunctionDef)):
                visit_function(child, f"{qual}.", qual, [])
            elif isinstance(child, ast.ClassDef):
                visit_class(child, f"{qual}.")

    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            visit_function(node, "", None, [])
        elif isinstance(node, ast.ClassDef):
            visit_class(node, "")
    return summary
