"""The interprocedural rules: RL008-RL011 over a linked Program.

Each rule consumes the per-function summaries plus one of the
Program's fixpoints and yields :class:`Violation` findings.  The
shared discipline: findings anchor to a *call site the author can act
on* (the first hop of an offending chain, the acquire that closes a
cycle, the handler that swallows), and interprocedural context rides
in ``Violation.detail`` so the headline stays one line.
"""

from __future__ import annotations

from repro.tools.source import Violation

__all__ = ["run_rules"]

#: exception class names that are deterministic failures by definition
FATAL_SEEDS = {"FatalError"}


def _func_label(program, fid):
    record = program.functions[fid]
    return f"{record['qual']} ({record['rel']}:{record['line']})"


# -- RL008: interprocedural control-path isolation -------------------------

def _rl008(program):
    seeds = {fid for fid, f in program.functions.items()
             if f["control_sites"]}
    reach = program.propagate_flag(seeds)
    for fid in sorted(program.functions):
        func = program.functions[fid]
        if not func["data_path"] or func["control_named"]:
            continue
        if fid in seeds:
            # a *direct* control call — that is RL001's finding, one
            # per site, not a chain
            continue
        if fid not in reach:
            continue
        # anchor at the root's earliest call that reaches the control
        # path (stable under unrelated edits), then follow the BFS
        # witness chain from there to a concrete control site
        candidates = [
            (func["calls"][index]["line"], callee)
            for index, callee in program.edges[fid]
            if callee in reach
        ]
        line, callee = min(candidates)
        chain, lines = [fid, callee], [line]
        cur = callee
        while reach[cur] is not None:
            line, callee = reach[cur]
            lines.append(line)
            chain.append(callee)
            cur = callee
        site = min((s["line"], s["name"])
                   for s in program.functions[cur]["control_sites"])
        detail = ["call path:"]
        for hop, (caller, line) in enumerate(zip(chain[:-1], lines)):
            arrow = "   " if hop == 0 else "-> "
            callee = chain[hop + 1]
            detail.append(
                f"{arrow}{_func_label(program, caller)} calls "
                f"{program.functions[callee]['qual']} at "
                f"{program.functions[caller]['rel']}:{line}")
        leaf = program.functions[cur]
        detail.append(f"-> .{site[1]}() at {leaf['rel']}:{site[0]}")
        yield Violation(
            func["rel"], lines[0], "RL008",
            f"steady-state data-path function {func['qual']!r} reaches "
            f"control-path call .{site[1]}() through a "
            f"{len(chain) - 1}-hop helper chain — hoist the control "
            "work into a create/open/setup-style caller or pass the "
            "mapped state in",
            detail=detail)


# -- RL009: future-escape --------------------------------------------------

def _returns_future(program):
    """Fixpoint: does calling f hand back an OpFuture?"""
    flags = {fid: f["returns_future"]
             for fid, f in program.functions.items()}
    changed = True
    while changed:
        changed = False
        for fid, func in program.functions.items():
            if flags[fid]:
                continue
            resolved = dict(program.edges[fid])
            for index in func["return_calls"]:
                callee = resolved.get(index)
                if callee is not None and flags[callee]:
                    flags[fid] = True
                    changed = True
                    break
    return flags


def _rl009(program):
    flags = _returns_future(program)
    for fid in sorted(program.functions):
        func = program.functions[fid]
        resolved = dict(program.edges[fid])
        for record in func["bare_calls"]:
            callee = resolved.get(record["index"])
            if callee is not None and flags[callee]:
                name = program.functions[callee]["qual"]
                yield Violation(
                    func["rel"], record["line"], "RL009",
                    f"discards the future returned by {name}() — "
                    "store, wait, or batch it (RL003 sees only "
                    "direct *_async drops; this one hides behind "
                    "a helper)")
        for record in func["assigned_calls"]:
            callee = resolved.get(record["index"])
            if callee is not None and flags[callee]:
                name = program.functions[callee]["qual"]
                yield Violation(
                    func["rel"], record["line"], "RL009",
                    f"future from {name}() assigned to "
                    f"{record['var']!r} is never read again — nobody "
                    "waits it, nobody sees its error")


# -- RL010: static lock-order graph ----------------------------------------

def _lock_key(program, fid, recv):
    """A static identity for the lock behind a receiver expression.

    Preference order: constructing class + constant lock name (shared
    program-wide), constructing class + attribute slot (shared across
    one class's methods), then a purely local key (still good for
    intra-function edges)."""
    func = program.functions[fid]
    module = func["module"]
    own_cid = f"{module}:{func['cls']}" if func["cls"] else None

    def from_record(record, fallback):
        if record is None:
            return fallback
        cid = program._ctor_class(module, record["ctor"])
        cls = (cid.split(":", 1)[1] if cid
               else record["ctor"].split(".")[0])
        if record["name"]:
            return f"{cls}:{record['name']}"
        return f"{cls}@{fallback}"

    head, _, rest = recv.partition(".")
    if head in ("self", "cls") and own_cid and rest and "." not in rest:
        record = program.classes.get(own_cid, {}) \
            .get("attrs", {}).get(rest)
        return from_record(record, f"{own_cid}.{rest}")
    if "." not in recv:
        record = func["local_types"].get(recv)
        return from_record(record, f"{fid}:{recv}")
    return f"{fid}:{recv}"


def _rl010(program):
    # transitive acquire sets: every lock key a call may take
    direct = {}
    for fid, func in program.functions.items():
        direct[fid] = {
            _lock_key(program, fid, e["recv"])
            for e in func["events"] if e["op"] == "acq"
        }
    acq_all = program.propagate_sets(direct)

    # edges: key -> key with the witness site of the second acquire
    edges = {}
    for fid in sorted(program.functions):
        func = program.functions[fid]
        resolved = dict(program.edges[fid])
        held = []
        for event in func["events"]:
            if event["op"] == "acq":
                key = _lock_key(program, fid, event["recv"])
                for h in held:
                    if h != key:
                        edges.setdefault(h, {}).setdefault(
                            key, (func["rel"], event["line"],
                                  func["qual"], None))
                if key not in held:
                    held.append(key)
            elif event["op"] == "rel":
                key = _lock_key(program, fid, event["recv"])
                if key in held:
                    held.remove(key)
            elif held:
                callee = resolved.get(event["index"])
                if callee is None:
                    continue
                for key in sorted(acq_all.get(callee, ())):
                    for h in held:
                        if h != key:
                            edges.setdefault(h, {}).setdefault(
                                key, (func["rel"], event["line"],
                                      func["qual"],
                                      program.functions[callee]["qual"]))

    # cycle detection: report every edge that lies on some cycle
    def reaches(start, goal, seen):
        if start == goal:
            return True
        if start in seen:
            return False
        seen.add(start)
        return any(reaches(nxt, goal, seen)
                   for nxt in edges.get(start, ()))

    for a in sorted(edges):
        for b in sorted(edges[a]):
            if not reaches(b, a, set()):
                continue
            rel, line, qual, via = edges[a][b]
            detail = [f"lock-order graph edge {a} -> {b} closes a "
                      "cycle; reverse path exists via:"]
            for x in sorted(edges):
                for y in sorted(edges[x]):
                    if reaches(b, x, set()) and reaches(y, a, set()):
                        xrel, xline, xqual, xvia = edges[x][y]
                        suffix = (f" (through {xvia})" if xvia else "")
                        detail.append(
                            f"{x} -> {y} at {xrel}:{xline} in "
                            f"{xqual}{suffix}")
            suffix = f" (through {via})" if via else ""
            yield Violation(
                rel, line, "RL010",
                f"lock-order inversion: acquires {b} while holding "
                f"{a}{suffix}, but the reverse order exists elsewhere "
                "— a schedule interleaving the two deadlocks",
                detail=detail)


# -- RL011: exception-flow conformance -------------------------------------

def _fatal_classes(program):
    fatal = set(FATAL_SEEDS)
    changed = True
    while changed:
        changed = False
        for cid, record in program.classes.items():
            name = cid.split(":", 1)[1].split(".")[-1]
            if name in fatal:
                continue
            for base in record["bases"]:
                if base.split(".")[-1] in fatal:
                    fatal.add(name)
                    changed = True
                    break
    return fatal


def _rl011(program):
    fatal = _fatal_classes(program)
    direct = {}
    for fid, func in program.functions.items():
        direct[fid] = {r.split(".")[-1] for r in func["raises"]
                       if r.split(".")[-1] in fatal}
    fatal_raises = program.propagate_sets(direct)

    for fid in sorted(program.functions):
        func = program.functions[fid]
        resolved = dict(program.edges[fid])
        for record in func["swallows"]:
            reachable = set()
            for index in record["calls"]:
                callee = resolved.get(index)
                if callee is not None:
                    reachable |= fatal_raises.get(callee, set())
            witness = (f" — this body can raise "
                       f"{', '.join(sorted(reachable))}, which would "
                       "be silently retried forever"
                       if reachable else "")
            yield Violation(
                func["rel"], record["line"], "RL011",
                "retry loop swallows every exception and continues — "
                "Fatal errors are deterministic and must propagate; "
                f"catch RecoverableError or re-raise fatals{witness}")


def run_rules(program) -> list:
    """All interprocedural findings, plus the summaries' local ones."""
    findings = []
    for summary in program.modules.values():
        for func in summary["functions"].values():
            for f in func["findings"]:
                findings.append(Violation(
                    summary["rel"], f["line"], f["rule"], f["message"]))
    for rule in (_rl008, _rl009, _rl010, _rl011):
        findings.extend(rule(program))
    findings.sort(key=lambda v: (v.path, v.line, v.rule))
    return findings
