"""Baseline handling: grandfathered findings, checked in, diffable.

``analysis-baseline.json`` at the tree root holds fingerprints of
findings that are acknowledged but not yet fixed.  It ships **empty**
— this repo fixes what the rules find — but the mechanism exists so a
future rule can land gating before its last offender does, without a
flag day.  Fingerprints hash rule, path and function plus the message
kernel (never line numbers), so unrelated edits above a finding do not
churn the file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

__all__ = ["BASELINE_NAME", "fingerprint", "load_baseline",
           "write_baseline"]

BASELINE_NAME = "analysis-baseline.json"


def fingerprint(violation) -> str:
    body = "|".join((violation.rule, violation.path, violation.message))
    return hashlib.sha1(body.encode()).hexdigest()[:16]


def load_baseline(path: Path) -> set:
    """Fingerprints the baseline file grandfathers (empty if absent)."""
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError):
        return set()
    return {f["fingerprint"] for f in data.get("findings", [])}


def write_baseline(path: Path, violations) -> None:
    findings = [
        {
            "fingerprint": fingerprint(v),
            "rule": v.rule,
            "path": v.path,
            "message": v.message,
        }
        for v in violations
    ]
    path.write_text(json.dumps(
        {"version": 1, "findings": findings}, indent=2) + "\n")
