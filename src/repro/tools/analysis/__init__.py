"""repro-analyze: whole-program static analysis over the tree.

``repro lint`` (:mod:`repro.tools.lint`) checks one file at a time;
this package builds the *program*: a module-import graph and a
name-resolved call graph over every file in scope, per-function
summaries (control-path calls made, futures created and consumed, lock
acquisition order, exceptions raised), and a worklist fixpoint that
propagates those summaries interprocedurally.  Four gating rules run
on top:

* **RL008** — interprocedural control-path isolation: RL001's
  transitive closure.  A steady-state data-path function that
  *reaches* ``alloc``/``map``/``_master_call`` through any helper
  chain is flagged, with the full call path printed.
* **RL009** — future-escape: a ``*_async`` result must reach a
  ``wait``/``result``/batch sink; an assigned-but-never-read future,
  or a discarded call to a helper that *returns* a future, is flagged
  (the cases RL003's statement-level check cannot see).
* **RL010** — static lock-order graph over ``RemoteLock``/``SeqLock``/
  slot-lock acquisition sites, with cycle detection: the static twin
  of RSan's happens-before edges.
* **RL011** — exception-flow conformance: ``Fatal`` errors are
  deterministic and must propagate out of retry loops; a broad
  ``except Exception`` that swallows-and-continues is flagged.

Run it as ``python -m repro analyze`` (``--json`` for the stable
finding schema CI diffs).  Warm runs are sub-second: per-file
summaries are cached by mtime+hash, and only the fixpoint re-runs.
Suppression uses the same ``# repro-lint: allow[RLxxx]`` comments, and
``analysis-baseline.json`` (checked in, shipped empty) grandfathers
findings when a rule lands before its last fix does.
"""

from repro.tools.analysis.cli import main
from repro.tools.analysis.graph import Program
from repro.tools.analysis.runner import analyze_paths
from repro.tools.analysis.summary import summarize_source

__all__ = ["Program", "analyze_paths", "main", "summarize_source"]
