"""The per-file summary cache: warm analyze runs never re-parse.

One JSON file at the tree root (``.repro-analyze-cache.json``,
gitignored) maps repo-relative paths to ``{mtime, sha256, summary}``.
A file whose mtime matches is reused without even hashing; a touched
but unchanged file (mtime moved, bytes identical) re-hashes once and
keeps its summary.  Only genuinely edited files re-parse, and the
interprocedural fixpoint — which is cheap — re-runs over the full
summary set, so caching never changes results, only latency.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.tools.analysis.summary import (
    SCHEMA_VERSION,
    summarize_source,
)
from repro.tools.source import load_source, relative_name

__all__ = ["SummaryCache", "CACHE_NAME"]

CACHE_NAME = ".repro-analyze-cache.json"


class SummaryCache:
    """Load-or-extract summaries with mtime+hash reuse."""

    def __init__(self, root: Path, enabled: bool = True):
        self.root = root
        self.enabled = enabled
        self.path = root / CACHE_NAME
        self.entries = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        if enabled:
            try:
                data = json.loads(self.path.read_text())
                if data.get("schema") == SCHEMA_VERSION:
                    self.entries = data.get("files", {})
            except (OSError, ValueError):
                self.entries = {}

    def load(self, path: Path):
        """``(summary_dict | None, error_violation | None)`` for one
        file, reusing the cached summary when the file is unchanged."""
        rel = relative_name(path, self.root)
        entry = self.entries.get(rel)
        stat = None
        if entry is not None:
            try:
                stat = path.stat()
            except OSError:
                entry = None
            if entry is not None and stat.st_mtime_ns == entry["mtime"]:
                self.hits += 1
                return entry["summary"], None
            if entry is not None:
                digest = hashlib.sha256(path.read_bytes()).hexdigest()
                if digest == entry["sha256"]:
                    entry["mtime"] = stat.st_mtime_ns
                    self._dirty = True
                    self.hits += 1
                    return entry["summary"], None
        self.misses += 1
        source = load_source(path, root=self.root)
        if source.error is not None:
            self.entries.pop(rel, None)
            return None, source.error
        summary = summarize_source(source)
        try:
            stat = stat or path.stat()
            self.entries[rel] = {
                "mtime": stat.st_mtime_ns,
                "sha256": hashlib.sha256(
                    source.text.encode()).hexdigest(),
                "summary": summary,
            }
            self._dirty = True
        except OSError:
            pass
        return summary, None

    def save(self):
        if not self.enabled or not self._dirty:
            return
        try:
            self.path.write_text(json.dumps(
                {"schema": SCHEMA_VERSION, "files": self.entries}))
        except OSError:
            pass  # a read-only checkout just stays cold
