"""Orchestration: paths -> summaries -> Program -> findings.

This is the piece the CLI, the tests, and CI all call: collect the
scope, load each file's summary through the cache, link the program,
run the rules, then filter through ``allow[...]`` suppressions and the
baseline.  The result object carries everything downstream consumers
need — surviving findings, suppressed/grandfathered counts, and cache
statistics — so text and ``--json`` rendering are pure formatting.
"""

from __future__ import annotations

from pathlib import Path

from repro.tools.analysis.baseline import fingerprint, load_baseline
from repro.tools.analysis.cache import SummaryCache
from repro.tools.analysis.graph import Program
from repro.tools.analysis.rules import run_rules
from repro.tools.source import iter_python_files

__all__ = ["AnalysisResult", "analyze_paths"]


class AnalysisResult:
    """Everything one analyze run produced."""

    def __init__(self, findings, errors, suppressed, baselined,
                 program, cache):
        #: surviving violations, sorted by (path, line, rule)
        self.findings = findings
        #: RL000 read/parse failures (never suppressible)
        self.errors = errors
        self.suppressed = suppressed
        self.baselined = baselined
        self.program = program
        self.cache = cache

    @property
    def files(self) -> int:
        return len(self.program.modules)

    @property
    def functions(self) -> int:
        return len(self.program.functions)

    @property
    def edges(self) -> int:
        return sum(len(e) for e in self.program.edges.values())

    def to_json(self) -> dict:
        """The stable finding schema CI diffs (version 1)."""
        return {
            "version": 1,
            "tool": "repro-analyze",
            "findings": [
                {
                    "rule": v.rule,
                    "path": v.path,
                    "line": v.line,
                    "message": v.message,
                    "detail": v.detail,
                    "fingerprint": fingerprint(v),
                }
                for v in self.errors + self.findings
            ],
            "stats": {
                "files": self.files,
                "functions": self.functions,
                "call_edges": self.edges,
                "suppressed": self.suppressed,
                "baselined": self.baselined,
                "cache_hits": self.cache.hits,
                "cache_misses": self.cache.misses,
            },
        }


def analyze_paths(paths, root: Path, use_cache: bool = True,
                  baseline: Path = None) -> AnalysisResult:
    """Run the whole-program analysis over *paths*."""
    cache = SummaryCache(root, enabled=use_cache)
    summaries, errors = [], []
    for file in iter_python_files(paths):
        summary, error = cache.load(file)
        if error is not None:
            errors.append(error)
        elif summary is not None:
            summaries.append(summary)
    cache.save()

    program = Program(summaries)
    raw = run_rules(program)

    allow_maps = {s["rel"]: s["allow"] for s in summaries}
    grandfathered = load_baseline(baseline) if baseline else set()
    findings, suppressed, baselined = [], 0, 0
    for violation in raw:
        allowed = allow_maps.get(violation.path, {}).get(
            str(violation.line), [])
        if violation.rule in allowed:
            suppressed += 1
        elif fingerprint(violation) in grandfathered:
            baselined += 1
        else:
            findings.append(violation)
    return AnalysisResult(findings, errors, suppressed, baselined,
                          program, cache)
