"""Entry point for ``python -m repro``."""

import sys

from repro.tools.cli import main

sys.exit(main())
