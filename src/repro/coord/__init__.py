"""One-sided coordination: locks, barriers, counters, queues on atomics.

RStore's separation philosophy says the data path must involve no
server CPU and no master lookups.  This package extends that to
*coordination*: every primitive allocates a small named region once at
setup (the only control-path work it ever does) and then synchronizes
purely with one-sided ``faa``/``cas``/``read``/``write`` — the NIC is
the lock manager, the barrier tree, and the mailbox.

=================  =====================================================
primitive          protocol
=================  =====================================================
`AtomicCounter`    FAA word with client-side cached reads
`RemoteLock`       CAS spinlock, capped exponential backoff + jitter
`SeqLock`          writer-versioned optimistic reads (hashkv's protocol)
`SenseBarrier`     sense-reversing FAA barrier for N parties
`DoorbellQueue`    MPSC ring: FAA-reserved slots, version-word publish,
                   doorbell counter for the consumer
=================  =====================================================

All coordination regions are unreplicated (``replication=1``): NIC
atomics cannot be mirrored, so coordination state dies with its server
and is re-created, never repaired.  Atomics in this package use the
non-retryable default of ``Mapping.faa``/``cas`` — a completion error
surfaces instead of risking a double-applied FAA (see DESIGN.md,
"Coordination subsystem").
"""

from repro.coord.barrier import SenseBarrier
from repro.coord.base import Backoff, CoordError
from repro.coord.counter import AtomicCounter
from repro.coord.doorbell import DoorbellQueue
from repro.coord.lock import RemoteLock
from repro.coord.seqlock import SeqLock

__all__ = [
    "AtomicCounter",
    "Backoff",
    "CoordError",
    "DoorbellQueue",
    "RemoteLock",
    "SenseBarrier",
    "SeqLock",
]
