"""An MPSC doorbell queue: a message ring over one mapped region.

Region layout::

    [ tail 8B ][ doorbell 8B ][ head 8B ][ slot 0 ][ slot 1 ] ...
    slot: [ seq 8B ][ len 8B ][ payload (slot_payload bytes, padded) ]

Producer protocol (any number of producers, all one-sided):

1. **reserve** — FAA ``tail`` by 1; the old value is this message's
   global sequence number and ``seq % capacity`` its slot.
2. **flow control** — if the ring might be full (``seq - head >=
   capacity``), refresh the cached ``head`` with an 8-byte read and
   back off until the consumer frees the slot.
3. **write** — one RDMA write lands ``[len][payload]`` in the slot.
4. **publish** — write the slot's ``seq`` word to ``seq + 1``
   (version-word publish: slot sequence values never repeat, so a
   stale slot can never be mistaken for a fresh one).
5. **doorbell** — FAA ``doorbell`` by 1 so the consumer polls one hot
   8-byte word instead of scanning slots.

Consumer protocol (exactly one consumer):

* Poll ``doorbell`` (8-byte read + jittered pause) until it exceeds
  the consumed count, then wait for the *next in-order* slot's ``seq``
  word to publish (producers can finish out of order), read the slot,
  and advance ``head`` with a plain write to free it for wrapping
  producers.

This upgrades watermark-polling loops (the old
``examples/producer_consumer_notify.py`` pattern) into a real queue:
framed variable-length messages, multiple producers, bounded memory,
and an idle consumer that touches only one cache line per poll.
"""

from __future__ import annotations

from repro.coord.base import Backoff, CoordError, read_word, region_name, write_word

__all__ = ["DoorbellQueue"]

_TAIL = 0
_BELL = 8
_HEAD = 16
_HEADER = 24
_WORD = 8


def _pad8(n: int) -> int:
    return -(-n // _WORD) * _WORD


class DoorbellQueue:
    """A bounded multi-producer, single-consumer ring in the store."""

    def __init__(self, client, name: str, mapping, capacity: int,
                 slot_payload: int, poll_interval_s: float = 2e-6):
        if capacity < 1:
            raise CoordError("need at least one slot")
        if slot_payload < 1:
            raise CoordError("need room for at least one payload byte")
        self.client = client
        self.name = name
        self.mapping = mapping
        self.capacity = capacity
        self.slot_payload = slot_payload
        self.slot_size = 2 * _WORD + _pad8(slot_payload)
        #: messages this handle consumed (consumer side only)
        self.consumed = 0
        self._head_cache = 0
        self._bell_cache = 0
        self._poll = Backoff.for_client(
            client, f"doorbell-{name}",
            base_s=poll_interval_s, max_s=16 * poll_interval_s,
        )
        # -- metrics
        _labels = dict(name=name, host=client.nic.host.host_id)
        _m = client.obs.metrics
        self._m_sent = _m.counter("coord.doorbell.sent", **_labels)
        self._m_received = _m.counter("coord.doorbell.received", **_labels)
        self._m_polls = _m.counter("coord.doorbell.polls", **_labels)
        self._m_stalls = _m.counter("coord.doorbell.stalls", **_labels)

    @property
    def sent(self) -> int:
        """Messages this handle enqueued."""
        return int(self._m_sent.value)

    @property
    def received(self) -> int:
        """Messages this handle dequeued."""
        return int(self._m_received.value)

    @property
    def polls(self) -> int:
        """Consumer poll rounds that found nothing ready."""
        return int(self._m_polls.value)

    @property
    def stalls(self) -> int:
        """Producer waits for the consumer to free a slot."""
        return int(self._m_stalls.value)

    @classmethod
    def _region_size(cls, capacity: int, slot_payload: int) -> int:
        return _HEADER + capacity * (2 * _WORD + _pad8(slot_payload))

    # -- setup (control path) ------------------------------------------------

    @classmethod
    def create(cls, client, name: str, capacity: int, slot_payload: int,
               preferred_host=None):
        """Allocate and map a fresh queue region (generator)."""
        region = region_name(name)
        yield from client.alloc(
            region, cls._region_size(capacity, slot_payload),
            replication=1, preferred_host=preferred_host,
        )
        mapping = yield from client.map(region)
        return cls(client, name, mapping, capacity, slot_payload)

    @classmethod
    def open(cls, client, name: str, capacity: int, slot_payload: int):
        """Map an existing queue from another client (generator)."""
        mapping = yield from client.map(region_name(name))
        return cls(client, name, mapping, capacity, slot_payload)

    # -- producers (data path) -------------------------------------------------

    def send(self, payload: bytes):
        """Enqueue one message (generator); returns its sequence number."""
        if len(payload) > self.slot_payload:
            raise CoordError(
                f"payload of {len(payload)} bytes exceeds slot capacity "
                f"{self.slot_payload}"
            )
        rsan = self.client.rsan
        actor = self.client._rsan_actor
        with rsan.exempt(actor):
            seq = yield from self.mapping.faa(_TAIL, 1)
        # a producer wrapping onto a freed slot joins the consumer's
        # cumulative head release (the slot's prior contents are dead)
        rsan.sync_acquire(actor, ("dbq", self.name, "head"))
        # publish this message's clock before its body leaves: the
        # consumer joins it after reading the slot
        rsan.sync_release(actor, ("dbq", self.name, seq))
        self._poll.reset()
        with rsan.exempt(actor):
            while seq - self._head_cache >= self.capacity:
                self._head_cache = yield from read_word(self.mapping, _HEAD)
                if seq - self._head_cache < self.capacity:
                    break
                self._m_stalls.inc()
                yield from self._poll.pause()
            slot_off = self._slot_off(seq)
            body = len(payload).to_bytes(8, "little") + payload
            # the body write completes before anything else is issued: a
            # publish replayed after a fault must never expose a slot
            # whose seq word is fresh but whose body is stale
            yield from self.mapping.write(slot_off + _WORD, body)
            # publish + doorbell ride one batched flush.  Seeing the
            # bell before the seq word is safe — the consumer re-polls
            # the slot — so the two need no ordering round-trip between
            # them; the bell FAA stays non-idempotent (a double bump
            # would over-count).
            batch = self.client.batch()
            publish = yield from batch.write(
                self.mapping, slot_off, (seq + 1).to_bytes(8, "little")
            )
            bell = batch.faa(self.mapping, _BELL, 1)
            yield from batch.flush()
            yield from publish.wait()
            yield from bell.wait()
        self._m_sent.inc()
        return seq

    # -- the consumer (data path) ----------------------------------------------

    def recv(self):
        """Dequeue the next message in sequence order (generator)."""
        rsan = self.client.rsan
        actor = self.client._rsan_actor
        slot_off = self._slot_off(self.consumed)
        self._poll.reset()
        with rsan.exempt(actor):
            while True:
                if self._bell_cache > self.consumed:
                    # something new is published somewhere; our slot?
                    seq = yield from read_word(self.mapping, slot_off)
                    if seq == self.consumed + 1:
                        break
                else:
                    self._bell_cache = yield from read_word(self.mapping,
                                                            _BELL)
                    if self._bell_cache > self.consumed:
                        continue
                self._m_polls.inc()
                yield from self._poll.pause()
            blob = yield from self.mapping.read(
                slot_off + _WORD, _WORD + self.slot_payload
            )
        # the slot was published: join the producer of this message
        rsan.sync_acquire(actor, ("dbq", self.name, self.consumed))
        length = int.from_bytes(blob[:_WORD], "little")
        if length > self.slot_payload:
            raise CoordError(
                f"corrupt slot {self.consumed % self.capacity}: length "
                f"{length} exceeds capacity {self.slot_payload}"
            )
        payload = blob[_WORD : _WORD + length]
        self.consumed += 1
        # freeing the slot releases everything consumed so far to any
        # producer that wraps onto it
        rsan.sync_release(actor, ("dbq", self.name, "head"))
        with rsan.exempt(actor):
            # free the slot for wrapping producers
            yield from write_word(self.mapping, _HEAD, self.consumed)
        self._m_received.inc()
        return payload

    def pending(self):
        """Published-message estimate from one doorbell read (generator)."""
        client = self.client
        with client.rsan.exempt(client._rsan_actor):
            self._bell_cache = yield from read_word(self.mapping, _BELL)
        return max(0, self._bell_cache - self.consumed)

    # -- internals -------------------------------------------------------------

    def _slot_off(self, seq: int) -> int:
        return _HEADER + (seq % self.capacity) * self.slot_size
