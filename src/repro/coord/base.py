"""Shared plumbing for the coordination primitives.

Every primitive in :mod:`repro.coord` follows the same separation
discipline as the store itself:

* **setup (control path)** — ``create`` allocates a small named region
  through the master and maps it; ``open`` maps an existing one.  These
  are the only master RPCs a primitive ever makes.
* **steady state (data path)** — all coordination runs on one-sided
  ``faa``/``cas``/``read``/``write`` against the mapped region.  No
  server CPU, no master, no messages.

Coordination regions are allocated with ``replication=1`` because
NIC-side atomics cannot be mirrored consistently across replicas (see
``Mapping._atomic``); a coordination word that outlives its server must
be re-created, not repaired.
"""

from __future__ import annotations

import random

from repro.core.errors import (
    DeadlineExceededError,
    RetryBudgetExceededError,
    RStoreError,
)
from repro.simnet.kernel import Simulator
from repro.simnet.rand import derive_rng

__all__ = ["CoordError", "Backoff", "region_name", "read_word", "write_word"]

#: all coordination regions live under one reserved name prefix
_PREFIX = "coord."


class CoordError(RStoreError):
    """Coordination-layer failure (protocol misuse or livelock)."""


def region_name(name: str) -> str:
    """The store-level region name backing the primitive *name*."""
    return name if name.startswith(_PREFIX) else _PREFIX + name


def read_word(mapping, offset: int):
    """One-sided read of an 8-byte little-endian word (generator)."""
    raw = yield from mapping.read(offset, 8)
    return int.from_bytes(raw, "little")


def write_word(mapping, offset: int, value: int):
    """One-sided write of an 8-byte little-endian word (generator)."""
    yield from mapping.write(offset, (value % (1 << 64)).to_bytes(8, "little"))


class Backoff:
    """Capped exponential backoff with deterministic jitter.

    The jitter stream derives from the cluster seed plus a caller
    label, so contending clients spread out (no lockstep convoys on a
    contended CAS word) while whole simulations replay bit-for-bit.

    An optional *deadline* (absolute simulated time) bounds the whole
    retry loop: once it passes, :meth:`pause` raises
    :class:`DeadlineExceededError` instead of sleeping, and a pause
    that would overshoot it is clipped so the loop wakes exactly at
    the deadline for its final check.

    An optional *budget* (attempt count) bounds the loop the other
    way: once it drains, :meth:`pause` raises
    :class:`RetryBudgetExceededError`.  The deadline always outranks
    the budget — a caller-inherited deadline that has passed surfaces
    as the typed :class:`DeadlineExceededError`, never as a bare
    budget exhaustion, so every retry loop fails with the error that
    names the bound the *caller* set (RL005's uniform semantics).
    """

    def __init__(self, sim: Simulator, rng: random.Random,
                 base_s: float = 2e-6, max_s: float = 200e-6,
                 deadline: float | None = None,
                 budget: int | None = None):
        self.sim = sim
        self.rng = rng
        self.base_s = base_s
        self.max_s = max_s
        self.deadline = deadline
        self.budget = budget
        self.attempt = 0

    @classmethod
    def for_client(cls, client, label: str, base_s: float = 2e-6,
                   max_s: float = 200e-6, deadline: float | None = None,
                   budget: int | None = None) -> "Backoff":
        """A backoff with a private jitter stream for *label*."""
        rng = derive_rng(
            client.config.seed,
            f"coord-{label}-host-{client.nic.host.host_id}",
        )
        return cls(client.sim, rng, base_s=base_s, max_s=max_s,
                   deadline=deadline, budget=budget)

    def reset(self) -> None:
        self.attempt = 0

    @property
    def expired(self) -> bool:
        """True once the deadline (if any) has passed."""
        return self.deadline is not None and self.sim.now >= self.deadline

    @property
    def remaining(self) -> float:
        """Seconds until the deadline; ``inf`` when unbounded."""
        if self.deadline is None:
            return float("inf")
        return max(0.0, self.deadline - self.sim.now)

    def pause(self):
        """Sleep one backoff step (generator); doubles up to the cap.

        With a deadline set, raises :class:`DeadlineExceededError` once
        it has passed, and never sleeps beyond it.  With a budget set,
        raises :class:`RetryBudgetExceededError` once it drains — but a
        passed deadline is always checked first, so the caller's
        deadline never degrades into a budget error.
        """
        if self.expired:
            raise DeadlineExceededError(
                f"deadline passed after {self.attempt} attempt(s)"
            )
        if self.budget is not None and self.attempt >= self.budget:
            raise RetryBudgetExceededError(
                f"retry budget of {self.budget} attempt(s) exhausted"
            )
        self.attempt += 1
        # cap the exponent too: long poll loops push attempt into the
        # thousands, where 2**n no longer fits a float
        exponent = min(self.attempt - 1, 63)
        delay = min(self.max_s, self.base_s * (2.0 ** exponent))
        delay *= 0.5 + self.rng.random()
        yield self.sim.timeout(min(delay, self.remaining))
