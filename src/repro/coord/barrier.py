"""A sense-reversing barrier on one FAA word and one flag word.

Region layout (16 bytes)::

    [ count 8B ][ sense 8B ]

Arrival is one FAA on ``count``.  The last arriver resets ``count`` to
zero and *then* flips ``sense`` to the round's target value; everyone
else spins on one-sided 8-byte reads of ``sense`` with a jittered poll
interval.  Reset-before-flip is what makes the word reusable: nobody
can FAA into the next round until the flip releases them, so the reset
never races an arrival.

Each participant handle keeps a local sense bit that alternates
``1, 0, 1, ...`` per round — the classic sense-reversal trick that
lets one 16-byte region serve an unbounded number of rounds with no
generation counter and no master RPC ever.
"""

from __future__ import annotations

from repro.coord.base import Backoff, CoordError, read_word, region_name, write_word

__all__ = ["SenseBarrier"]

_COUNT = 0
_SENSE = 8


class SenseBarrier:
    """An N-party reusable barrier over one-sided atomics."""

    REGION_SIZE = 16

    def __init__(self, client, name: str, mapping, parties: int,
                 poll_interval_s: float = 2e-6):
        if parties < 1:
            raise CoordError("a barrier needs at least one party")
        self.client = client
        self.name = name
        self.mapping = mapping
        self.parties = parties
        #: the sense value that releases this handle's next wait
        self.local_sense = 1
        #: completed rounds, from this handle's perspective
        self.generation = 0
        self._poll = Backoff.for_client(
            client, f"barrier-{name}",
            base_s=poll_interval_s, max_s=8 * poll_interval_s,
        )
        # -- metrics
        self._m_spins = client.obs.metrics.counter(
            "coord.barrier.spins", name=name,
            host=client.nic.host.host_id)

    @property
    def spins(self) -> int:
        """Sense-poll rounds spent parked behind slower parties."""
        return int(self._m_spins.value)

    # -- setup (control path) ------------------------------------------------

    @classmethod
    def create(cls, client, name: str, parties: int, preferred_host=None):
        """Allocate and map a fresh barrier region (generator)."""
        region = region_name(name)
        yield from client.alloc(region, cls.REGION_SIZE, replication=1,
                                preferred_host=preferred_host)
        mapping = yield from client.map(region)
        return cls(client, name, mapping, parties)

    @classmethod
    def open(cls, client, name: str, parties: int):
        """Map an existing barrier from another client (generator).

        Open handles before the first round completes: a handle's
        local sense must start in phase with the region's.
        """
        mapping = yield from client.map(region_name(name))
        return cls(client, name, mapping, parties)

    # -- steady state (data path) --------------------------------------------

    def wait(self):
        """Block until all ``parties`` handles have arrived (generator)."""
        target = self.local_sense
        rsan = self.client.rsan
        actor = self.client._rsan_actor
        # publish this party's pre-barrier work under the round's epoch
        # key before arriving; every departing party joins the merged
        # clock, so all pre-barrier accesses happen-before all
        # post-barrier ones
        epoch = ("barrier", self.name, self.generation)
        rsan.sync_release(actor, epoch)
        with rsan.exempt(actor):
            arrived = yield from self.mapping.faa(_COUNT, 1)
            if arrived >= self.parties:
                raise CoordError(
                    f"barrier {self.name!r} saw {arrived + 1} arrivals for "
                    f"{self.parties} parties: too many handles are waiting"
                )
            if arrived == self.parties - 1:
                # last arriver: reset the count, then flip the sense (in
                # this order — the flip is the release)
                yield from write_word(self.mapping, _COUNT, 0)
                yield from write_word(self.mapping, _SENSE, target)
            else:
                self._poll.reset()
                while True:
                    sense = yield from read_word(self.mapping, _SENSE)
                    if sense == target:
                        break
                    self._m_spins.inc()
                    yield from self._poll.pause()
        rsan.sync_acquire(actor, epoch)
        self.generation += 1
        self.local_sense = 1 - self.local_sense
