"""A distributed counter on one remote fetch-and-add word.

Region layout (8 bytes)::

    [ value 8B ]  -- wraps at 2^64 like the NIC's FAA unit

``add`` is one FAA on the wire; ``read`` is one 8-byte one-sided read.
Every operation refreshes a client-local cache (:attr:`cached`), and
``read(max_age_s=...)`` serves from that cache when it is fresh enough
— the pattern BSP engines use to poll convergence totals without
hammering the hosting NIC.
"""

from __future__ import annotations

from repro.coord.base import read_word, region_name

__all__ = ["AtomicCounter"]


class AtomicCounter:
    """A shared 64-bit counter driven by one-sided FAA."""

    REGION_SIZE = 8

    def __init__(self, client, name: str, mapping, offset: int = 0):
        self.client = client
        self.name = name
        self.mapping = mapping
        self.offset = offset
        #: last value observed by this handle (post-op for ``add``)
        self.cached = 0
        self._cached_at = float("-inf")

    # -- setup (control path) ------------------------------------------------

    @classmethod
    def create(cls, client, name: str, initial: int = 0,
               preferred_host=None):
        """Allocate and map a fresh counter region (generator)."""
        region = region_name(name)
        yield from client.alloc(region, cls.REGION_SIZE, replication=1,
                                preferred_host=preferred_host)
        mapping = yield from client.map(region)
        counter = cls(client, name, mapping)
        if initial:
            yield from counter.mapping.write(
                0, initial.to_bytes(8, "little")
            )
            counter._observe(initial)
        return counter

    @classmethod
    def open(cls, client, name: str):
        """Map an existing counter from another client (generator)."""
        mapping = yield from client.map(region_name(name))
        return cls(client, name, mapping)

    # -- steady state (data path) --------------------------------------------

    def add(self, delta: int, idempotent: bool = False):
        """Fetch-and-add *delta* (generator); returns the new value.

        One FAA on the wire.  A completion failure raises immediately
        unless ``idempotent=True`` — see ``Mapping.faa`` for the
        exactly-once semantics this preserves.
        """
        client = self.client
        with client.rsan.exempt(client._rsan_actor):
            old = yield from self.mapping.faa(self.offset, delta,
                                              idempotent=idempotent)
        return self._observe((old + delta) % (1 << 64))

    def increment(self, idempotent: bool = False):
        """Add one (generator); returns the new value."""
        value = yield from self.add(1, idempotent=idempotent)
        return value

    def fetch(self, delta: int):
        """Fetch-and-add returning the *old* value (generator) — the
        reserve-a-range idiom (rsort's shuffle tails use this shape)."""
        client = self.client
        with client.rsan.exempt(client._rsan_actor):
            old = yield from self.mapping.faa(self.offset, delta)
        self._observe((old + delta) % (1 << 64))
        return old

    def read(self, max_age_s: float = 0.0):
        """Current value (generator).

        With ``max_age_s > 0`` a cache entry younger than that is
        returned without touching the wire; otherwise one 8-byte
        one-sided read refreshes it.
        """
        sim = self.client.sim
        if max_age_s > 0 and sim.now - self._cached_at <= max_age_s:
            return self.cached
        # counter polling is benign by construction (monotonic word,
        # torn reads impossible at 8 bytes): exempt it like the other
        # coordination internals
        with self.client.rsan.exempt(self.client._rsan_actor):
            value = yield from read_word(self.mapping, self.offset)
        return self._observe(value)

    # -- internals -------------------------------------------------------------

    def _observe(self, value: int) -> int:
        self.cached = value
        self._cached_at = self.client.sim.now
        return value
