"""A distributed counter on one remote fetch-and-add word.

Region layout (8 bytes)::

    [ value 8B ]  -- wraps at 2^64 like the NIC's FAA unit

``add`` is one FAA on the wire; ``read`` is one 8-byte one-sided read.
Every operation refreshes a client-local cache (:attr:`cached`), and
``read(max_age_s=...)`` serves from that cache when it is fresh enough
— the pattern BSP engines use to poll convergence totals without
hammering the hosting NIC.
"""

from __future__ import annotations

from repro.coord.base import read_word, region_name
from repro.datapath.policy import AdaptiveSelector, PathPolicy

__all__ = ["AtomicCounter"]

#: burst substrates: remote-fetch degrades to server-op for counters
#: (post-add values are tiny), so the chooser only weighs these two
_BURST_MODES = (PathPolicy.ONE_SIDED, PathPolicy.SERVER_OP)


class AtomicCounter:
    """A shared 64-bit counter driven by one-sided FAA."""

    REGION_SIZE = 8

    def __init__(self, client, name: str, mapping, offset: int = 0):
        self.client = client
        self.name = name
        self.mapping = mapping
        self.offset = offset
        #: last value observed by this handle (post-op for ``add``)
        self.cached = 0
        self._cached_at = float("-inf")
        #: lazily built burst-mode chooser (adaptive policy only)
        self._selector = None

    # -- setup (control path) ------------------------------------------------

    @classmethod
    def create(cls, client, name: str, initial: int = 0,
               preferred_host=None, path_policy=None):
        """Allocate and map a fresh counter region (generator)."""
        region = region_name(name)
        yield from client.alloc(region, cls.REGION_SIZE, replication=1,
                                preferred_host=preferred_host)
        mapping = yield from client.map(region, path_policy=path_policy)
        counter = cls(client, name, mapping)
        if initial:
            yield from counter.mapping.write(
                0, initial.to_bytes(8, "little")
            )
            counter._observe(initial)
        return counter

    @classmethod
    def open(cls, client, name: str, path_policy=None):
        """Map an existing counter from another client (generator)."""
        mapping = yield from client.map(region_name(name),
                                        path_policy=path_policy)
        return cls(client, name, mapping)

    # -- steady state (data path) --------------------------------------------

    def add(self, delta: int, idempotent: bool = False):
        """Fetch-and-add *delta* (generator); returns the new value.

        One FAA on the wire.  A completion failure raises immediately
        unless ``idempotent=True`` — see ``Mapping.faa`` for the
        exactly-once semantics this preserves.
        """
        client = self.client
        with client.rsan.exempt(client._rsan_actor):
            old = yield from self.mapping.faa(self.offset, delta,
                                              idempotent=idempotent)
        return self._observe((old + delta) % (1 << 64))

    def increment(self, idempotent: bool = False):
        """Add one (generator); returns the new value."""
        value = yield from self.add(1, idempotent=idempotent)
        return value

    def add_burst(self, deltas, idempotent: bool = False):
        """Apply several deltas (generator); post-add values in order.

        The FAA-heavy burst shape from the crossover study: under the
        ``server_op`` (or adaptive) path policy the whole burst ships
        to the hosting server as one composite op — one round trip
        instead of ``len(deltas)`` FAAs.  ``remote_fetch`` degrades to
        server-op (the result is a handful of integers).
        """
        deltas = list(deltas)
        if not deltas:
            return []
        policy = self.mapping.path_policy
        started_at = None
        if policy == PathPolicy.ADAPTIVE:
            if self._selector is None:
                cfg = self.client.config
                self._selector = AdaptiveSelector(
                    modes=_BURST_MODES,
                    probe_every=cfg.datapath_probe_every,
                    hysteresis=cfg.datapath_hysteresis,
                    patience=cfg.datapath_patience,
                    alpha=cfg.datapath_ewma_alpha,
                )
            mode = self._selector.choose("burst")
            started_at = (self.client.sim.now, self.client.setup_events)
        elif policy == PathPolicy.ONE_SIDED:
            mode = PathPolicy.ONE_SIDED
        else:
            mode = PathPolicy.SERVER_OP
        if mode == PathPolicy.ONE_SIDED:
            values = []
            for delta in deltas:
                value = yield from self.add(delta, idempotent=idempotent)
                values.append(value)
        else:
            values = yield from self.client.datapath.counter_burst(
                self, deltas
            )
            self._observe(values[-1])
        if started_at is not None:
            t0, setup_before = started_at
            self._selector.observe(
                "burst", mode, self.client.sim.now - t0,
                cold=self.client.setup_events != setup_before,
            )
        return values

    def fetch(self, delta: int):
        """Fetch-and-add returning the *old* value (generator) — the
        reserve-a-range idiom (rsort's shuffle tails use this shape)."""
        client = self.client
        with client.rsan.exempt(client._rsan_actor):
            old = yield from self.mapping.faa(self.offset, delta)
        self._observe((old + delta) % (1 << 64))
        return old

    def read(self, max_age_s: float = 0.0):
        """Current value (generator).

        With ``max_age_s > 0`` a cache entry younger than that is
        returned without touching the wire; otherwise one 8-byte
        one-sided read refreshes it.
        """
        sim = self.client.sim
        if max_age_s > 0 and sim.now - self._cached_at <= max_age_s:
            return self.cached
        # counter polling is benign by construction (monotonic word,
        # torn reads impossible at 8 bytes): exempt it like the other
        # coordination internals
        with self.client.rsan.exempt(self.client._rsan_actor):
            value = yield from read_word(self.mapping, self.offset)
        return self._observe(value)

    # -- internals -------------------------------------------------------------

    def _observe(self, value: int) -> int:
        self.cached = value
        self._cached_at = self.client.sim.now
        return value
