"""A remote spinlock on one CAS word.

Region layout (8 bytes)::

    [ owner 8B ]  -- 0 free, otherwise the holder's token

``acquire`` spins CAS(0 -> token) with capped exponential backoff and
deterministic jitter (the Storm-style contention discipline: losers
spread out instead of convoying on the hosting NIC).  ``release`` is a
verifying CAS(token -> 0), so releasing a lock this handle does not
hold is caught as a protocol bug rather than silently corrupting the
word.

Unlike bare atomics, lock operations recover from *ambiguous*
completion errors (the NIC may or may not have applied the CAS): the
token uniquely identifies the holder, so one follow-up read of the
word reveals whether the CAS landed, and acquire/release resolve the
ambiguity instead of surfacing it.  The lock word still lives on an
unreplicated region (atomics cannot be mirrored), so a lock does not
survive the death of its hosting server — callers that need
fault-tolerant mutual exclusion must layer leases on top, which
steady-state data structures here do not need.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import RegionUnavailableError

from repro.coord.base import Backoff, CoordError, read_word, region_name

__all__ = ["RemoteLock"]


class RemoteLock:
    """A CAS spinlock shared by any number of clients."""

    REGION_SIZE = 8

    def __init__(self, client, name: str, mapping, offset: int = 0,
                 token: Optional[int] = None):
        self.client = client
        self.name = name
        self.mapping = mapping
        self.offset = offset
        #: must be unique among concurrent holders; one handle per
        #: actor keeps the default (host id + 1) sufficient
        self.token = token if token is not None else (
            client.nic.host.host_id + 1
        )
        self.held = False
        self._backoff = Backoff.for_client(client, f"lock-{name}")
        # -- metrics
        _labels = dict(name=name, host=client.nic.host.host_id,
                       token=self.token)
        self._m_acquisitions = client.obs.metrics.counter(
            "coord.lock.acquisitions", **_labels)
        self._m_contended = client.obs.metrics.counter(
            "coord.lock.contended", **_labels)

    @property
    def acquisitions(self) -> int:
        """Successful acquires by this handle."""
        return int(self._m_acquisitions.value)

    @property
    def contended(self) -> int:
        """CAS attempts that lost to another holder."""
        return int(self._m_contended.value)

    # -- setup (control path) ------------------------------------------------

    @classmethod
    def create(cls, client, name: str, preferred_host=None):
        """Allocate and map a fresh (free) lock region (generator)."""
        region = region_name(name)
        yield from client.alloc(region, cls.REGION_SIZE, replication=1,
                                preferred_host=preferred_host)
        mapping = yield from client.map(region)
        return cls(client, name, mapping)

    @classmethod
    def open(cls, client, name: str, token: Optional[int] = None):
        """Map an existing lock from another client (generator)."""
        mapping = yield from client.map(region_name(name))
        return cls(client, name, mapping, token=token)

    # -- steady state (data path) --------------------------------------------

    def try_acquire(self):
        """One CAS attempt (generator); returns whether we got it."""
        if self.held:
            raise CoordError(f"lock {self.name!r} is not reentrant")
        rsan = self.client.rsan
        actor = self.client._rsan_actor
        try:
            with rsan.exempt(actor):
                old = yield from self.mapping.cas(self.offset, 0, self.token)
        except RegionUnavailableError:
            # ambiguous completion: the CAS may have applied.  Our
            # token is unique, so the word itself holds the answer
            # (reads replay internally, so this rides out the fault).
            with rsan.exempt(actor):
                observed = yield from read_word(self.mapping, self.offset)
            if observed == self.token:
                # our CAS won before the completion was lost
                self.held = True
                self._m_acquisitions.inc()
                rsan.sync_acquire(actor, ("lock", self.name))
                return True
            # anything else — including 0 — means our CAS lost; a
            # free word here is the *real* holder having released
            # since, not evidence that we ever held it
            self._m_contended.inc()
            return False
        if old == 0:
            self.held = True
            self._m_acquisitions.inc()
            rsan.sync_acquire(actor, ("lock", self.name))
            return True
        self._m_contended.inc()
        return False

    def acquire(self):
        """Spin until the lock is ours (generator)."""
        self._backoff.reset()
        while True:
            got = yield from self.try_acquire()
            if got:
                return
            yield from self._backoff.pause()

    def release(self):
        """Release (generator); verifies this handle held the lock."""
        if not self.held:
            raise CoordError(f"releasing lock {self.name!r} we never took")
        rsan = self.client.rsan
        actor = self.client._rsan_actor
        # publish before the CAS leaves: everything acked so far is
        # covered; ops still in flight deliberately are not
        rsan.sync_release(actor, ("lock", self.name))
        attempts = 0
        while True:
            try:
                with rsan.exempt(actor):
                    old = yield from self.mapping.cas(self.offset,
                                                      self.token, 0)
            except RegionUnavailableError as exc:
                with rsan.exempt(actor):
                    observed = yield from read_word(self.mapping, self.offset)
                if observed == self.token:
                    # the CAS provably never applied: re-issue, but not
                    # forever — a server that keeps eating the CAS while
                    # serving reads must eventually surface
                    attempts += 1
                    if attempts >= self.client.config.data_retry_limit:
                        raise CoordError(
                            f"lock {self.name!r}: release CAS failed "
                            f"{attempts} times: {exc}"
                        ) from exc
                    continue
                old = self.token  # it applied; the word moved on
            self.held = False
            if old != self.token:
                raise CoordError(
                    f"lock {self.name!r} held by token {old}, not ours "
                    f"({self.token}): release without acquire?"
                )
            return
