"""A sequence lock: writer-versioned optimistic reads over a body.

Layout (the body immediately follows the version word)::

    [ version 8B ][ body ... ]

Version word semantics (the protocol ``kv/hashkv`` pioneered inline,
generalized here):

* ``0``      — never written
* even > 0   — stable; bumped by 2 on every published mutation
* odd        — a writer holds the word (CAS'd up from the even value)

Readers never lock: snapshot the whole record in one one-sided read,
then validate by re-reading the version word; a change (or an odd
value) means the read raced a writer — retry.  Writers serialize
through a remote CAS on the version word, mutate the body with plain
one-sided writes, and publish by writing the next even version.

A ``SeqLock`` is a cheap *view* over any mapped region — data
structures instantiate one per record (hashkv: one per slot) — while
``create``/``open`` give it a named region of its own for standalone
use.

Transactional writers (``repro.txn``) lock with a **unique odd
token** instead of ``version + 1``: the token names the holder, so an
ambiguous CAS completion (the NIC may or may not have applied it) is
resolved with one follow-up read of the word — the RemoteLock
discipline, applied to the version word.  Readers are oblivious: any
odd value means "writer in flight".
"""

from __future__ import annotations

from repro.core.errors import RegionUnavailableError

from repro.coord.base import Backoff, CoordError, read_word, region_name

__all__ = ["SeqLock"]

_WORD = 8


class SeqLock:
    """Optimistic-read / CAS-write concurrency over one record."""

    def __init__(self, mapping, offset: int, body_size: int,
                 max_read_retries: int = 64):
        if body_size < 0:
            raise CoordError("body_size cannot be negative")
        self.mapping = mapping
        self.offset = offset
        self.body_size = body_size
        self.max_read_retries = max_read_retries
        # -- metrics
        _m = mapping.client.obs.metrics
        _labels = dict(region=mapping.name, offset=offset,
                       host=mapping.client.nic.host.host_id)
        self._m_read_retries = _m.counter("coord.seqlock.read_retries",
                                          **_labels)
        self._m_lock_failures = _m.counter("coord.seqlock.lock_failures",
                                           **_labels)

    def _sync_key(self, version: int) -> tuple:
        """The happens-before key of one published version: a validated
        reader of version *v* joins whatever the writer that published
        *v* released."""
        return ("seqlock", self.mapping.name, self.offset, version)

    @property
    def read_retries(self) -> int:
        """Snapshot reads rerun because a writer was in flight."""
        return int(self._m_read_retries.value)

    @property
    def lock_failures(self) -> int:
        """CAS lock attempts that lost the version race."""
        return int(self._m_lock_failures.value)

    @property
    def record_size(self) -> int:
        return _WORD + self.body_size

    # -- setup (control path, standalone use) --------------------------------

    @classmethod
    def create(cls, client, name: str, body_size: int,
               preferred_host=None):
        """Allocate and map a named single-record region (generator)."""
        region = region_name(name)
        yield from client.alloc(region, _WORD + body_size, replication=1,
                                preferred_host=preferred_host)
        mapping = yield from client.map(region)
        return cls(mapping, 0, body_size)

    @classmethod
    def open(cls, client, name: str, body_size: int):
        """Map an existing record from another client (generator)."""
        mapping = yield from client.map(region_name(name))
        return cls(mapping, 0, body_size)

    # -- readers (data path) ---------------------------------------------------

    def read(self):
        """One consistent ``(version, body)`` snapshot (generator).

        Retries while a writer is in flight; raises :class:`CoordError`
        after ``max_read_retries`` racing reads (livelock that long in
        simulation means a writer died holding the word).
        """
        client = self.mapping.client
        rsan = client.rsan
        for _attempt in range(self.max_read_retries):
            with rsan.exempt(client._rsan_actor):
                blob = yield from self.mapping.read(self.offset,
                                                    self.record_size)
                version = int.from_bytes(blob[:_WORD], "little")
                if version % 2 == 1:
                    self._m_read_retries.inc()
                    continue
                check = yield from self.mapping.read(self.offset, _WORD)
            if int.from_bytes(check, "little") == version:
                rsan.sync_acquire(client._rsan_actor, self._sync_key(version))
                return version, blob[_WORD:]
            self._m_read_retries.inc()
        raise CoordError(
            f"record at offset {self.offset} kept changing under "
            f"{self.max_read_retries} reads"
        )

    # -- writers (data path) ---------------------------------------------------

    def try_lock(self, version: int, token: int = None):
        """CAS the even *version* to odd (generator); returns success.

        With no *token* the lock word becomes ``version + 1`` (the
        classic protocol) and an ambiguous CAS completion propagates —
        the caller cannot tell whether it holds the word.  With a
        unique odd *token* the word itself answers: an ambiguous
        completion is resolved by re-reading it, so lock acquisition is
        exactly-once under injected completion faults.
        """
        if version % 2 == 1:
            raise CoordError(f"cannot lock from odd version {version}")
        if token is not None and token % 2 == 0:
            raise CoordError(f"lock token {token} must be odd")
        lock_word = version + 1 if token is None else token
        client = self.mapping.client
        rsan = client.rsan
        try:
            with rsan.exempt(client._rsan_actor):
                old = yield from self.mapping.cas(self.offset, version,
                                                  lock_word)
        except RegionUnavailableError:
            if token is None:
                raise
            # ambiguous completion: our token is unique, so one read of
            # the word reveals whether the CAS landed (reads replay
            # internally, riding out the fault that ate the ack)
            with rsan.exempt(client._rsan_actor):
                observed = yield from read_word(self.mapping, self.offset)
            # anything other than our token — including the unchanged
            # even version — counts as a loss; the caller re-snapshots
            old = version if observed == lock_word else ~version
        if old != version:
            self._m_lock_failures.inc()
            return False
        # the CAS observed version: join the publisher of that version
        rsan.sync_acquire(client._rsan_actor, self._sync_key(version))
        return True

    def publish(self, locked_version: int, body: bytes = b"",
                new_version: int = None):
        """Write *body* (optional) and bump to the next even version
        (generator).  ``locked_version`` is the odd value we CAS'd in
        (``version + 1``, or the caller's unique token).  Token holders
        must pass *new_version* explicitly (the pre-lock version + 2);
        by default the next even version is ``locked_version + 1``."""
        if locked_version % 2 == 0:
            raise CoordError("publishing a record we never locked")
        if new_version is None:
            new_version = locked_version + 1
        if new_version % 2 == 1 or new_version <= 0:
            raise CoordError(
                f"published version {new_version} must be a positive "
                "even value"
            )
        client = self.mapping.client
        rsan = client.rsan
        # release under the version we are about to publish, before the
        # writes leave: readers validating it join this clock
        rsan.sync_release(client._rsan_actor, self._sync_key(new_version))
        with rsan.exempt(client._rsan_actor):
            if body:
                if len(body) > self.body_size:
                    raise CoordError(
                        f"body of {len(body)} bytes exceeds record body "
                        f"{self.body_size}"
                    )
                yield from self.mapping.write(self.offset + _WORD, body)
            yield from self.mapping.write(
                self.offset, new_version.to_bytes(8, "little")
            )

    def abort(self, original_version: int):
        """Drop the write lock without mutating (generator): restore
        the pre-lock even version, body untouched."""
        if original_version % 2 == 1:
            raise CoordError("abort restores the pre-lock even version")
        client = self.mapping.client
        with client.rsan.exempt(client._rsan_actor):
            yield from self.mapping.write(
                self.offset, original_version.to_bytes(8, "little")
            )

    def write(self, body: bytes, backoff: Backoff = None):
        """Full optimistic write cycle (generator): snapshot the
        version, lock, publish; retries with backoff under contention.
        Returns the new (even) version."""
        pause = backoff or Backoff.for_client(
            self.mapping.client, f"seqlock-{self.mapping.name}"
        )
        while True:
            version, _old = yield from self.read()
            locked = yield from self.try_lock(version)
            if not locked:
                yield from pause.pause()
                continue
            yield from self.publish(version + 1, body)
            return version + 2
