"""Workload generators: synthetic graphs and key-value records."""

from repro.workloads.access import (
    OpMix,
    generate_ops,
    uniform_keys,
    zipfian_keys,
)
from repro.workloads.graphs import erdos_renyi_edges, rmat_edges
from repro.workloads.kv import generate_records, record_bytes

__all__ = [
    "OpMix",
    "erdos_renyi_edges",
    "generate_ops",
    "generate_records",
    "record_bytes",
    "rmat_edges",
    "uniform_keys",
    "zipfian_keys",
]
