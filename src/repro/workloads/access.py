"""Access-pattern generators: key popularity and operation mixes.

Key-value benchmarks live or die by their skew; the YCSB convention the
era's papers used is a zipfian key popularity with a configurable
read/update mix.  The sampler is numpy-vectorised and seeded.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipfian_keys", "uniform_keys", "OpMix", "generate_ops"]


def zipfian_keys(
    count: int, keyspace: int, theta: float = 0.99, seed: int = 0
) -> np.ndarray:
    """Sample *count* key indices from a zipfian over ``[0, keyspace)``.

    ``theta`` is the YCSB skew parameter (0.99 is their default: the
    hottest key draws a few percent of all traffic).  Uses inverse-CDF
    sampling over the exact zeta weights, which is fine for the
    keyspace sizes a simulation touches.
    """
    if keyspace < 1:
        raise ValueError(f"keyspace must be positive, got {keyspace}")
    if count < 0:
        raise ValueError(f"negative count {count}")
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    rng = np.random.default_rng(seed)
    weights = 1.0 / np.power(np.arange(1, keyspace + 1), theta)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    draws = rng.random(count)
    return np.searchsorted(cdf, draws, side="left").astype(np.int64)


def uniform_keys(count: int, keyspace: int, seed: int = 0) -> np.ndarray:
    """Uniform key indices over ``[0, keyspace)``."""
    if keyspace < 1:
        raise ValueError(f"keyspace must be positive, got {keyspace}")
    rng = np.random.default_rng(seed)
    return rng.integers(0, keyspace, count, dtype=np.int64)


class OpMix:
    """A read/update/insert mix (fractions must sum to 1)."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"

    def __init__(self, read: float = 0.95, update: float = 0.05,
                 insert: float = 0.0):
        total = read + update + insert
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"mix fractions sum to {total}, not 1")
        self.read = read
        self.update = update
        self.insert = insert

    @classmethod
    def ycsb_a(cls) -> "OpMix":
        """50/50 read/update — the update-heavy workload."""
        return cls(read=0.5, update=0.5)

    @classmethod
    def ycsb_b(cls) -> "OpMix":
        """95/5 read/update — the read-mostly workload."""
        return cls(read=0.95, update=0.05)

    @classmethod
    def ycsb_c(cls) -> "OpMix":
        """Read-only."""
        return cls(read=1.0, update=0.0)


def generate_ops(
    count: int,
    keyspace: int,
    mix: OpMix,
    theta: float = 0.99,
    seed: int = 0,
) -> list[tuple[str, int]]:
    """A concrete op sequence: (op_kind, key_index) pairs."""
    keys = zipfian_keys(count, keyspace, theta=theta, seed=seed)
    rng = np.random.default_rng(seed + 1)
    draws = rng.random(count)
    ops = []
    for key, draw in zip(keys.tolist(), draws.tolist()):
        if draw < mix.read:
            ops.append((OpMix.READ, key))
        elif draw < mix.read + mix.update:
            ops.append((OpMix.UPDATE, key))
        else:
            ops.append((OpMix.INSERT, key))
    return ops
