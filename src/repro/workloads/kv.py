"""TeraSort-style key-value record generation.

Records follow the TeraGen convention: a 10-byte binary key followed by
a 90-byte value, 100 bytes per record.  The generator is numpy-based so
millions of records materialize quickly, and seeded per (seed, worker)
so distributed generation is reproducible and non-overlapping.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KEY_BYTES", "VALUE_BYTES", "RECORD_BYTES", "generate_records",
           "record_bytes", "keys_of", "is_sorted"]

KEY_BYTES = 10
VALUE_BYTES = 90
RECORD_BYTES = KEY_BYTES + VALUE_BYTES


def generate_records(count: int, seed: int = 0) -> np.ndarray:
    """Random records as a ``(count, RECORD_BYTES)`` uint8 array."""
    if count < 0:
        raise ValueError(f"negative record count {count}")
    rng = np.random.default_rng(seed)
    records = rng.integers(0, 256, size=(count, RECORD_BYTES), dtype=np.uint8)
    return records


def record_bytes(records: np.ndarray) -> bytes:
    """Serialize a record array to raw bytes."""
    return records.tobytes()


def keys_of(records: np.ndarray) -> np.ndarray:
    """The key columns, viewable for lexicographic comparison."""
    return records[:, :KEY_BYTES]


def is_sorted(records: np.ndarray) -> bool:
    """True when records are in non-descending key order."""
    if len(records) < 2:
        return True
    keys = keys_of(records)
    # lexicographic compare of consecutive rows, vectorised: find the
    # first differing byte per adjacent pair
    prev, nxt = keys[:-1], keys[1:]
    diff = prev != nxt
    first = diff.argmax(axis=1)
    rows = np.arange(len(first))
    has_diff = diff.any(axis=1)
    le = ~has_diff | (prev[rows, first] < nxt[rows, first])
    return bool(le.all())
