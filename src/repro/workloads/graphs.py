"""Synthetic graph generators.

The paper's graph experiments run on power-law web/social graphs; RMAT
(the Graph500 generator) reproduces that degree structure at any scale.
Both generators are numpy-vectorised so benchmark-sized graphs build in
milliseconds of wall time, and both are seeded for reproducibility.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rmat_edges", "erdos_renyi_edges"]


def rmat_edges(
    scale: int,
    edge_factor: int = 16,
    seed: int = 42,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a Graph500-style RMAT graph.

    Returns ``(src, dst)`` arrays of ``edge_factor * 2**scale`` directed
    edges over ``2**scale`` vertices, skewed by the (a, b, c, d)
    quadrant probabilities.
    """
    if scale < 1 or scale > 30:
        raise ValueError(f"scale {scale} out of range [1, 30]")
    n_edges = edge_factor << scale
    rng = np.random.default_rng(seed)
    src = np.zeros(n_edges, dtype=np.int64)
    dst = np.zeros(n_edges, dtype=np.int64)
    for bit in range(scale):
        r1 = rng.random(n_edges)
        r2 = rng.random(n_edges)
        # quadrant choice: src bit set if r1 beyond the top half (c+d),
        # dst bit set depends on which half we landed in
        src_bit = r1 > (a + b)
        dst_bit = np.where(src_bit, r2 > (c / (c + (1 - a - b - c))), r2 > (a / (a + b)))
        src |= src_bit.astype(np.int64) << bit
        dst |= dst_bit.astype(np.int64) << bit
    return src, dst


def erdos_renyi_edges(
    num_vertices: int, num_edges: int, seed: int = 42
) -> tuple[np.ndarray, np.ndarray]:
    """Uniform random directed edges (with possible duplicates)."""
    if num_vertices < 1:
        raise ValueError("need at least one vertex")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    dst = rng.integers(0, num_vertices, num_edges, dtype=np.int64)
    return src, dst
