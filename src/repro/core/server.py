"""The memory server: a host donating DRAM to the store.

At startup the server allocates its arena, registers it with its NIC
**once** (the expensive pinning happens here, never on the data path),
opens two fabric services —

* ``rstore-mem``: control RPC used by the master to reserve/release
  stripes, and by the two-sided ablation to read/write through the CPU;
* ``rstore-data``: a passive endpoint clients connect their data QPs
  to; all normal traffic on it is one-sided and never schedules a
  single instruction on this host —

and then announces itself to the master and starts heartbeating.
"""

from __future__ import annotations

from typing import Optional

from repro.core.arena import Arena
from repro.core.config import RStoreConfig
from repro.rdma.cm import ConnectionManager
from repro.rdma.nic import RNic
from repro.rdma.types import Access
from repro.rpc.endpoint import RpcClient, RpcServer
from repro.simnet.kernel import Simulator

__all__ = ["MemoryServer"]


class MemoryServer:
    """One memory server daemon."""

    def __init__(
        self,
        sim: Simulator,
        nic: RNic,
        cm: ConnectionManager,
        config: Optional[RStoreConfig] = None,
        capacity: Optional[int] = None,
    ):
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self.config = config or RStoreConfig()
        self.capacity = capacity or self.config.server_capacity
        self.host_id = nic.host.host_id
        self.arena: Optional[Arena] = None
        self.arena_mr = None
        self.alive = False
        self._rpc: Optional[RpcServer] = None
        self._master: Optional[RpcClient] = None

    def start(self):
        """Boot the server (generator): arena, services, registration."""
        cfg = self.config
        data_pd = yield from self.nic.alloc_pd()
        data_cq = yield from self.nic.create_cq()
        # One registration for the whole donation — the control-path
        # cost RStore pays once so the data path never does.
        self.arena_mr = yield from self.nic.reg_mr(
            data_pd, length=self.capacity, access=Access.all_remote()
        )
        self.arena = Arena(self.arena_mr.addr, self.capacity)

        self._rpc = RpcServer(
            self.sim, self.nic, self.cm, f"{cfg.mem_service}", cfg.msg_size
        )
        self._rpc.register("reserve_batch", self._reserve_batch)
        self._rpc.register("release_batch", self._release_batch)
        self._rpc.register("ts_read", self._ts_read)
        self._rpc.register("ts_write", self._ts_write)
        self._rpc.register("stats", self._stats)
        yield from self._rpc.start()

        self.cm.listen(self.nic, cfg.data_service, data_pd, data_cq)

        self._master = RpcClient(self.sim, self.nic, self.cm)
        yield from self._master.connect(cfg.master_host, cfg.master_service)
        yield from self._master.call(
            "register_server", self.host_id, self.capacity, self.arena_mr.rkey
        )
        self.alive = True
        self.sim.process(self._heartbeat_loop(), name=f"hb-{self.host_id}")
        return self

    def kill(self) -> None:
        """Fail the whole host: NIC dead, heartbeats stop."""
        self.alive = False
        self.nic.kill()

    # -- RPC handlers -------------------------------------------------------

    def _reserve_batch(self, lengths):
        """Reserve stripes; returns (addresses, rkey)."""
        assert self.arena is not None
        addrs = []
        try:
            for length in lengths:
                addrs.append(self.arena.reserve(length))
        except Exception:
            for addr in addrs:
                self.arena.release(addr)
            raise
        yield self.sim.timeout(0)
        return addrs, self.arena_mr.rkey

    def _release_batch(self, addrs):
        assert self.arena is not None
        freed = 0
        for addr in addrs:
            freed += self.arena.release(addr)
        yield self.sim.timeout(0)
        return freed

    def _ts_read(self, addr, length):
        """Two-sided ablation: read arena bytes through the server CPU."""
        offset = self.arena_mr.offset_of(addr)
        yield from self.nic.host.cpu.copy(length)
        return self.arena_mr.buffer.read(offset, length)

    def _ts_write(self, addr, payload):
        """Two-sided ablation: write arena bytes through the server CPU."""
        offset = self.arena_mr.offset_of(addr)
        yield from self.nic.host.cpu.copy(len(payload))
        self.arena_mr.buffer.write(offset, payload)
        return len(payload)

    def _stats(self):
        yield self.sim.timeout(0)
        assert self.arena is not None
        return {
            "host_id": self.host_id,
            "capacity": self.capacity,
            "free": self.arena.free_bytes,
            "live_allocations": self.arena.live_allocations,
        }

    # -- liveness -----------------------------------------------------------

    def _heartbeat_loop(self):
        assert self._master is not None
        while self.alive:
            try:
                yield from self._master.call("heartbeat", self.host_id)
            except Exception:
                return  # master unreachable; nothing useful left to do
            yield self.sim.timeout(self.config.heartbeat_interval_s)
