"""The memory server: a host donating DRAM to the store.

At startup the server allocates its arena, registers it with its NIC
**once** (the expensive pinning happens here, never on the data path),
opens two fabric services —

* ``rstore-mem``: control RPC used by the master to reserve/release
  stripes, drive repair copies, and by the two-sided ablation to
  read/write through the CPU;
* ``rstore-data``: a passive endpoint clients connect their data QPs
  to; all normal traffic on it is one-sided and never schedules a
  single instruction on this host —

and then announces itself to every metadata shard and starts
heartbeating each one.  If a shard replies that it no longer knows us
(reboot, or a heartbeat gap that tripped the lease checker), the
server resets that shard's slice of its arena and registers again —
rejoining is just re-registration.

With ``config.control_shards > 1`` the donation is carved into one
sub-arena slice per shard: each shard reserves stripes only from its
own slice, so a fresh re-registration with one recovering shard wipes
only that shard's bytes and never recycles memory another shard's
descriptors still point at.  The MR stays a single registration —
slicing is pure bookkeeping, the data path is untouched.
"""

from __future__ import annotations

from typing import Optional

from repro.core.arena import Arena
from repro.core.config import RStoreConfig
from repro.core.errors import DeadlineExceededError, RStoreError
from repro.core.shard import ShardRouter
from repro.rdma.cm import ConnectionManager
from repro.rdma.nic import RNic
from repro.rdma.types import Access, Opcode, QpState, RdmaError
from repro.rdma.wr import SendWR
from repro.rpc.channel import ChannelClosed
from repro.rpc.endpoint import RpcError, RpcRemoteError, RpcServer
from repro.simnet.kernel import Simulator
from repro.simnet.rand import derive_rng

__all__ = ["MemoryServer"]


class _CopyOp:
    """Completion tracker for one ``copy_stripe`` fan of READ WRs."""

    __slots__ = ("event", "remaining", "failure")

    def __init__(self, sim: Simulator, total: int):
        self.event = sim.event()
        self.remaining = total
        self.failure: Optional[Exception] = None

    def on_completion(self, wc) -> None:
        if not wc.ok and self.failure is None:
            self.failure = RStoreError(
                f"stripe copy failed: {wc.status.value} {wc.detail}"
            )
        self._retire()

    def abort(self, exc: Exception) -> None:
        if self.failure is None:
            self.failure = exc
        self._retire()

    def _retire(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            if self.failure is not None:
                self.event.fail(self.failure)
            else:
                self.event.succeed()


class MemoryServer:
    """One memory server daemon."""

    def __init__(
        self,
        sim: Simulator,
        nic: RNic,
        cm: ConnectionManager,
        config: Optional[RStoreConfig] = None,
        capacity: Optional[int] = None,
    ):
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self.config = config or RStoreConfig()
        self.capacity = capacity or self.config.server_capacity
        self.host_id = nic.host.host_id
        #: one sub-arena slice per metadata shard (a single dict entry
        #: spanning the whole donation when control_shards == 1)
        self.arenas: dict[int, Arena] = {}
        self.arena_mr = None
        self.alive = False
        self._rpc: Optional[RpcServer] = None
        self._router: Optional[ShardRouter] = None
        #: shards whose rejoin deadline drained — the server only stands
        #: down once every shard's heartbeat loop has given up
        self._dead_shards: set[int] = set()
        self._data_pd = None
        #: CQ + QP cache for control-path repair copies from peer arenas
        self._copy_cq = None
        self._peer_qps: dict[int, object] = {}
        #: optional fault injector (wired by the cluster builder)
        self.faults = None
        #: server-op executor (see repro.datapath), built at start()
        self._dp = None

    def start(self):
        """Boot the server (generator): arena, services, registration."""
        cfg = self.config
        self._data_pd = yield from self.nic.alloc_pd()
        data_cq = yield from self.nic.create_cq()
        # One registration for the whole donation — the control-path
        # cost RStore pays once so the data path never does.
        self.arena_mr = yield from self.nic.reg_mr(
            self._data_pd, length=self.capacity, access=Access.all_remote()
        )
        for shard_id in range(cfg.control_shards):
            self._reset_shard_arena(shard_id)

        self._rpc = RpcServer(
            self.sim, self.nic, self.cm, f"{cfg.mem_service}", cfg.msg_size
        )
        self._rpc.register("reserve_batch", self._reserve_batch)
        self._rpc.register("release_batch", self._release_batch)
        self._rpc.register("copy_stripe", self._copy_stripe)
        self._rpc.register("ts_read", self._ts_read)
        self._rpc.register("ts_write", self._ts_write)
        self._rpc.register("stats", self._stats)
        # composite server-op execution (see repro.datapath): deferred
        # import so the core server module stays light to import
        from repro.datapath.server_exec import ServerOpExecutor
        self._dp = ServerOpExecutor(self)
        self._rpc.register("dp_exec", self._dp.execute)
        yield from self._rpc.start()

        self.cm.listen(self.nic, cfg.data_service, self._data_pd, data_cq)

        self._copy_cq = yield from self.nic.create_cq()
        self.sim.process(
            self._copy_dispatcher(), name=f"copy-dispatch-{self.host_id}"
        )

        self._router = ShardRouter(self.sim, self.nic, self.cm, cfg)
        yield from self._router.connect_all()
        for shard_id in range(cfg.control_shards):
            yield from self._register(shard_id, fresh=True)
        self.alive = True
        for shard_id in range(cfg.control_shards):
            name = (f"hb-{self.host_id}" if shard_id == 0
                    else f"hb-{self.host_id}-s{shard_id}")
            self.sim.process(self._heartbeat_loop(shard_id), name=name)
        return self

    @property
    def arena(self) -> Optional[Arena]:
        """The shard-0 sub-arena — the whole donation when unsharded."""
        return self.arenas.get(0)

    def _shard_extent(self, shard_id: int) -> tuple[int, int]:
        """``(base, capacity)`` of one shard's slice of the donation."""
        num = self.config.control_shards
        if num == 1:
            return self.arena_mr.addr, self.capacity
        # equal slices, floored to the arena alignment so every slice
        # base stays 64-byte aligned; the sub-alignment tail is unused
        share = (self.capacity // num) & ~63
        return self.arena_mr.addr + shard_id * share, share

    def _reset_shard_arena(self, shard_id: int) -> None:
        base, share = self._shard_extent(shard_id)
        self.arenas[shard_id] = Arena(base, share)

    def kill(self) -> None:
        """Fail the whole host: NIC dead, heartbeats stop."""
        self.alive = False
        self.nic.kill()

    # -- RPC handlers -------------------------------------------------------

    def _reserve_batch(self, lengths, shard=0):
        """Reserve stripes out of *shard*'s slice; returns (addrs, rkey)."""
        arena = self.arenas[shard]
        addrs = []
        try:
            for length in lengths:
                addrs.append(arena.reserve(length))
        except Exception:
            for addr in addrs:
                arena.release(addr)
            raise
        yield self.sim.timeout(0)
        return addrs, self.arena_mr.rkey

    def _release_batch(self, addrs, shard=0):
        arena = self.arenas[shard]
        freed = 0
        for addr in addrs:
            try:
                freed += arena.release(addr)
            except RStoreError:
                # The reservation predates an arena reset (we rejoined
                # after a false-positive death and re-donated a clean
                # arena); there is nothing left to free.
                pass
        yield self.sim.timeout(0)
        return freed

    def _copy_stripe(self, src_host, src_addr, src_rkey, dst_addr, length):
        """Pull *length* bytes from a peer's arena into ours (generator).

        The repair data copy: driven by the master over control RPC, but
        executed as one-sided READs from the surviving replica's arena —
        the *source* host's CPU stays idle, keeping repair invisible to
        its data-path traffic.  ``dst_addr`` must be a reservation the
        master just made on this server.
        """
        qp = self._peer_qps.get(src_host)
        if qp is None or qp.state is not QpState.CONNECTED:
            qp = yield from self.cm.connect(
                self.nic,
                src_host,
                self.config.data_service,
                self._data_pd,
                self._copy_cq,
                sq_depth=self.config.data_sq_depth,
            )
            self._peer_qps[src_host] = qp
        chunk = self.config.max_wire_chunk
        pieces = [
            (pos, min(chunk, length - pos)) for pos in range(0, length, chunk)
        ]
        if len(pieces) > qp.sq_depth:
            raise RStoreError(
                f"stripe of {length} bytes needs {len(pieces)} copy WRs, "
                f"more than the send queue holds ({qp.sq_depth})"
            )
        op = _CopyOp(self.sim, len(pieces))
        for pos, take in pieces:
            wr = SendWR(
                opcode=Opcode.RDMA_READ,
                wr_id=op,
                local_mr=self.arena_mr,
                local_addr=dst_addr + pos,
                length=take,
                remote_addr=src_addr + pos,
                rkey=src_rkey,
            )
            # repair copies are master-coordinated; mark them so the
            # race sanitizer treats them as synchronized plumbing
            wr.rsan_sync = True
            try:
                qp.post_send(wr)
            except RdmaError as exc:
                op.abort(RStoreError(f"copy post failed: {exc}"))
        yield op.event
        return length

    def _copy_dispatcher(self):
        while True:
            wc = yield self._copy_cq.next_completion()
            op = wc.wr_id
            if isinstance(op, _CopyOp):
                op.on_completion(wc)

    def _ts_read(self, addr, length):
        """Two-sided ablation: read arena bytes through the server CPU."""
        offset = self.arena_mr.offset_of(addr)
        yield from self.nic.host.cpu.copy(length)
        return self.arena_mr.buffer.read(offset, length)

    def _ts_write(self, addr, payload):
        """Two-sided ablation: write arena bytes through the server CPU."""
        offset = self.arena_mr.offset_of(addr)
        yield from self.nic.host.cpu.copy(len(payload))
        self.arena_mr.buffer.write(offset, payload)
        return len(payload)

    def _stats(self):
        yield self.sim.timeout(0)
        assert self.arenas
        return {
            "host_id": self.host_id,
            "capacity": self.capacity,
            "free": sum(a.free_bytes for a in self.arenas.values()),
            "live_allocations": sum(
                a.live_allocations for a in self.arenas.values()
            ),
        }

    # -- liveness -----------------------------------------------------------

    def _heartbeat_loop(self, shard_id: int):
        assert self._router is not None
        while self.alive and shard_id not in self._dead_shards:
            extra_delay = 0.0
            if self.faults is not None:
                action, extra_delay = self.faults.heartbeat_action(self.host_id)
                if action == "drop":
                    yield self.sim.timeout(self.config.heartbeat_interval_s)
                    continue
            if extra_delay > 0.0:
                yield self.sim.timeout(extra_delay)
                if not self.alive:
                    return
            unreachable = False
            try:
                master = yield from self._router.client_for(shard_id)
                # the timeout matters under one-way partitions: the
                # heartbeat arrives but the reply never comes back, and
                # without a bound this loop would hang forever
                reply = yield from master.call(
                    "heartbeat", self.host_id,
                    timeout=self.config.lease_timeout_s,
                )
            except RpcRemoteError as exc:
                if exc.error_type != "MasterUnavailableError":
                    # transient master-side failure (e.g. injected
                    # fault): the master is up, so try again next period
                    yield self.sim.timeout(self.config.heartbeat_interval_s)
                    continue
                unreachable = True
            except (RpcError, ChannelClosed, RdmaError):
                unreachable = True
            if unreachable:
                # channel death, a timed-out call, or a crashed shard:
                # rejoin within the deadline or give this shard up —
                # the server stands down only when every shard is gone
                if not (yield from self._rejoin_master(shard_id)):
                    self._stand_down(shard_id)
                    return
                continue
            if isinstance(reply, dict) and reply.get("needs_register"):
                try:
                    yield from self._reregister(shard_id)
                except (RpcError, ChannelClosed, RdmaError):
                    if not (yield from self._rejoin_master(shard_id)):
                        self._stand_down(shard_id)
                        return
                    continue
            yield self.sim.timeout(self.config.heartbeat_interval_s)

    def _stand_down(self, shard_id: int) -> None:
        """One shard's rejoin deadline drained for good.

        Other shards' slices stay donated; only when the last shard is
        unreachable does the server die (matching the single-master
        behaviour exactly when ``control_shards == 1``).
        """
        self._dead_shards.add(shard_id)
        if len(self._dead_shards) >= self.config.control_shards:
            self.alive = False

    def _register(self, shard_id: int, fresh: bool):
        """Announce our slice to one metadata shard (generator).

        A *fresh* registration donates a clean slice; the epoch in the
        reply becomes this NIC's fence for that shard, so one-sided ops
        stamped with descriptors from an older era bounce instead of
        touching recycled bytes.  A non-fresh one (shard restart) keeps
        the slice: the reply lists the reservations the replayed
        metadata vouches for, and everything else — allocations whose
        commit record never hit the log — is dropped as an orphan.
        """
        assert self._router is not None
        master = yield from self._router.client_for(shard_id)
        arena = self.arenas[shard_id]
        reply = yield from master.call(
            "register_server", self.host_id, arena.capacity,
            self.arena_mr.rkey, fresh,
            timeout=self.config.control_deadline_s,
        )
        # the shard has the last word on freshness: a server that asked
        # to keep its slice across a master restart may find its lease
        # expired during the outage, in which case it was buried and
        # must come back with a wiped slate and a bumped fence
        if reply.get("fresh", fresh):
            if not fresh:
                self._reset_shard_arena(shard_id)
            self.nic.set_fence(shard_id, reply["epoch"])
        else:
            arena.retain(addr for addr, _length in reply["live"])
        return reply

    def _rejoin_master(self, shard_id: int):
        """Reconnect to one (restarted) metadata shard (generator).

        Retries with backoff until ``server_rejoin_deadline_s`` drains,
        then returns False — the caller retires this shard, though the
        NIC stays up so in-flight one-sided traffic still completes
        until the shard buries us and clients remap away.
        Re-registration is *not* fresh: the slice survives a master
        crash, and the replayed log tells us which reservations to keep.
        """
        assert self._router is not None
        cfg = self.config
        label = (f"server-rejoin-{self.host_id}" if shard_id == 0
                 else f"server-rejoin-{self.host_id}-s{shard_id}")
        rng = derive_rng(cfg.seed, label)
        deadline = self.sim.now + cfg.server_rejoin_deadline_s
        while self.alive:
            try:
                yield from self._router.redial(shard_id, deadline, rng)
            except DeadlineExceededError:
                return False
            try:
                yield from self._register(shard_id, fresh=False)
            except (RpcError, ChannelClosed, RdmaError):
                self._router.drop(shard_id)
                continue
            return True
        return False

    def _reregister(self, shard_id: int):
        """Rejoin after one shard forgot us (generator).

        The shard has already dropped every replica we hosted for it,
        so our old reservations in its slice are orphaned: reset that
        slice's bookkeeping and donate it again.  The arena MR stays
        registered, so clients holding stale descriptors can still
        complete in-flight one-sided reads against the old bytes until
        they remap — the fence epoch from the fresh registration is
        what finally cuts them off.
        """
        assert self.arena_mr is not None
        self._reset_shard_arena(shard_id)
        yield from self._register(shard_id, fresh=True)
