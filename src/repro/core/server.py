"""The memory server: a host donating DRAM to the store.

At startup the server allocates its arena, registers it with its NIC
**once** (the expensive pinning happens here, never on the data path),
opens two fabric services —

* ``rstore-mem``: control RPC used by the master to reserve/release
  stripes, drive repair copies, and by the two-sided ablation to
  read/write through the CPU;
* ``rstore-data``: a passive endpoint clients connect their data QPs
  to; all normal traffic on it is one-sided and never schedules a
  single instruction on this host —

and then announces itself to the master and starts heartbeating.  If
the master replies that it no longer knows us (reboot, or a heartbeat
gap that tripped the lease checker), the server resets its arena and
registers again — rejoining is just re-registration.
"""

from __future__ import annotations

from typing import Optional

from repro.core.arena import Arena
from repro.core.config import RStoreConfig
from repro.core.errors import DeadlineExceededError, RStoreError
from repro.coord.base import Backoff
from repro.rdma.cm import ConnectionManager
from repro.rdma.nic import RNic
from repro.rdma.types import Access, Opcode, QpState, RdmaError
from repro.rdma.wr import SendWR
from repro.rpc.channel import ChannelClosed
from repro.rpc.endpoint import RpcClient, RpcError, RpcRemoteError, RpcServer
from repro.simnet.kernel import Simulator
from repro.simnet.rand import derive_rng

__all__ = ["MemoryServer"]


class _CopyOp:
    """Completion tracker for one ``copy_stripe`` fan of READ WRs."""

    __slots__ = ("event", "remaining", "failure")

    def __init__(self, sim: Simulator, total: int):
        self.event = sim.event()
        self.remaining = total
        self.failure: Optional[Exception] = None

    def on_completion(self, wc) -> None:
        if not wc.ok and self.failure is None:
            self.failure = RStoreError(
                f"stripe copy failed: {wc.status.value} {wc.detail}"
            )
        self._retire()

    def abort(self, exc: Exception) -> None:
        if self.failure is None:
            self.failure = exc
        self._retire()

    def _retire(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            if self.failure is not None:
                self.event.fail(self.failure)
            else:
                self.event.succeed()


class MemoryServer:
    """One memory server daemon."""

    def __init__(
        self,
        sim: Simulator,
        nic: RNic,
        cm: ConnectionManager,
        config: Optional[RStoreConfig] = None,
        capacity: Optional[int] = None,
    ):
        self.sim = sim
        self.nic = nic
        self.cm = cm
        self.config = config or RStoreConfig()
        self.capacity = capacity or self.config.server_capacity
        self.host_id = nic.host.host_id
        self.arena: Optional[Arena] = None
        self.arena_mr = None
        self.alive = False
        self._rpc: Optional[RpcServer] = None
        self._master: Optional[RpcClient] = None
        self._data_pd = None
        #: CQ + QP cache for control-path repair copies from peer arenas
        self._copy_cq = None
        self._peer_qps: dict[int, object] = {}
        #: optional fault injector (wired by the cluster builder)
        self.faults = None

    def start(self):
        """Boot the server (generator): arena, services, registration."""
        cfg = self.config
        self._data_pd = yield from self.nic.alloc_pd()
        data_cq = yield from self.nic.create_cq()
        # One registration for the whole donation — the control-path
        # cost RStore pays once so the data path never does.
        self.arena_mr = yield from self.nic.reg_mr(
            self._data_pd, length=self.capacity, access=Access.all_remote()
        )
        self.arena = Arena(self.arena_mr.addr, self.capacity)

        self._rpc = RpcServer(
            self.sim, self.nic, self.cm, f"{cfg.mem_service}", cfg.msg_size
        )
        self._rpc.register("reserve_batch", self._reserve_batch)
        self._rpc.register("release_batch", self._release_batch)
        self._rpc.register("copy_stripe", self._copy_stripe)
        self._rpc.register("ts_read", self._ts_read)
        self._rpc.register("ts_write", self._ts_write)
        self._rpc.register("stats", self._stats)
        yield from self._rpc.start()

        self.cm.listen(self.nic, cfg.data_service, self._data_pd, data_cq)

        self._copy_cq = yield from self.nic.create_cq()
        self.sim.process(
            self._copy_dispatcher(), name=f"copy-dispatch-{self.host_id}"
        )

        self._master = RpcClient(self.sim, self.nic, self.cm)
        yield from self._master.connect(cfg.master_host, cfg.master_service)
        yield from self._register(fresh=True)
        self.alive = True
        self.sim.process(self._heartbeat_loop(), name=f"hb-{self.host_id}")
        return self

    def kill(self) -> None:
        """Fail the whole host: NIC dead, heartbeats stop."""
        self.alive = False
        self.nic.kill()

    # -- RPC handlers -------------------------------------------------------

    def _reserve_batch(self, lengths):
        """Reserve stripes; returns (addresses, rkey)."""
        assert self.arena is not None
        addrs = []
        try:
            for length in lengths:
                addrs.append(self.arena.reserve(length))
        except Exception:
            for addr in addrs:
                self.arena.release(addr)
            raise
        yield self.sim.timeout(0)
        return addrs, self.arena_mr.rkey

    def _release_batch(self, addrs):
        assert self.arena is not None
        freed = 0
        for addr in addrs:
            try:
                freed += self.arena.release(addr)
            except RStoreError:
                # The reservation predates an arena reset (we rejoined
                # after a false-positive death and re-donated a clean
                # arena); there is nothing left to free.
                pass
        yield self.sim.timeout(0)
        return freed

    def _copy_stripe(self, src_host, src_addr, src_rkey, dst_addr, length):
        """Pull *length* bytes from a peer's arena into ours (generator).

        The repair data copy: driven by the master over control RPC, but
        executed as one-sided READs from the surviving replica's arena —
        the *source* host's CPU stays idle, keeping repair invisible to
        its data-path traffic.  ``dst_addr`` must be a reservation the
        master just made on this server.
        """
        qp = self._peer_qps.get(src_host)
        if qp is None or qp.state is not QpState.CONNECTED:
            qp = yield from self.cm.connect(
                self.nic,
                src_host,
                self.config.data_service,
                self._data_pd,
                self._copy_cq,
                sq_depth=self.config.data_sq_depth,
            )
            self._peer_qps[src_host] = qp
        chunk = self.config.max_wire_chunk
        pieces = [
            (pos, min(chunk, length - pos)) for pos in range(0, length, chunk)
        ]
        if len(pieces) > qp.sq_depth:
            raise RStoreError(
                f"stripe of {length} bytes needs {len(pieces)} copy WRs, "
                f"more than the send queue holds ({qp.sq_depth})"
            )
        op = _CopyOp(self.sim, len(pieces))
        for pos, take in pieces:
            wr = SendWR(
                opcode=Opcode.RDMA_READ,
                wr_id=op,
                local_mr=self.arena_mr,
                local_addr=dst_addr + pos,
                length=take,
                remote_addr=src_addr + pos,
                rkey=src_rkey,
            )
            # repair copies are master-coordinated; mark them so the
            # race sanitizer treats them as synchronized plumbing
            wr.rsan_sync = True
            try:
                qp.post_send(wr)
            except RdmaError as exc:
                op.abort(RStoreError(f"copy post failed: {exc}"))
        yield op.event
        return length

    def _copy_dispatcher(self):
        while True:
            wc = yield self._copy_cq.next_completion()
            op = wc.wr_id
            if isinstance(op, _CopyOp):
                op.on_completion(wc)

    def _ts_read(self, addr, length):
        """Two-sided ablation: read arena bytes through the server CPU."""
        offset = self.arena_mr.offset_of(addr)
        yield from self.nic.host.cpu.copy(length)
        return self.arena_mr.buffer.read(offset, length)

    def _ts_write(self, addr, payload):
        """Two-sided ablation: write arena bytes through the server CPU."""
        offset = self.arena_mr.offset_of(addr)
        yield from self.nic.host.cpu.copy(len(payload))
        self.arena_mr.buffer.write(offset, payload)
        return len(payload)

    def _stats(self):
        yield self.sim.timeout(0)
        assert self.arena is not None
        return {
            "host_id": self.host_id,
            "capacity": self.capacity,
            "free": self.arena.free_bytes,
            "live_allocations": self.arena.live_allocations,
        }

    # -- liveness -----------------------------------------------------------

    def _heartbeat_loop(self):
        assert self._master is not None
        while self.alive:
            extra_delay = 0.0
            if self.faults is not None:
                action, extra_delay = self.faults.heartbeat_action(self.host_id)
                if action == "drop":
                    yield self.sim.timeout(self.config.heartbeat_interval_s)
                    continue
            if extra_delay > 0.0:
                yield self.sim.timeout(extra_delay)
                if not self.alive:
                    return
            unreachable = False
            try:
                # the timeout matters under one-way partitions: the
                # heartbeat arrives but the reply never comes back, and
                # without a bound this loop would hang forever
                reply = yield from self._master.call(
                    "heartbeat", self.host_id,
                    timeout=self.config.lease_timeout_s,
                )
            except RpcRemoteError as exc:
                if exc.error_type != "MasterUnavailableError":
                    # transient master-side failure (e.g. injected
                    # fault): the master is up, so try again next period
                    yield self.sim.timeout(self.config.heartbeat_interval_s)
                    continue
                unreachable = True
            except (RpcError, ChannelClosed, RdmaError):
                unreachable = True
            if unreachable:
                # channel death, a timed-out call, or a crashed master:
                # rejoin within the deadline or stand down for good
                if not (yield from self._rejoin_master()):
                    self.alive = False
                    return
                continue
            if isinstance(reply, dict) and reply.get("needs_register"):
                try:
                    yield from self._reregister()
                except (RpcError, ChannelClosed, RdmaError):
                    if not (yield from self._rejoin_master()):
                        self.alive = False
                        return
                    continue
            yield self.sim.timeout(self.config.heartbeat_interval_s)

    def _register(self, fresh: bool):
        """Announce our donation to the master (generator).

        A *fresh* registration donates a clean arena; the epoch in the
        reply becomes this NIC's fence, so one-sided ops stamped with
        descriptors from an older era bounce instead of touching
        recycled bytes.  A non-fresh one (master restart) keeps the
        arena: the reply lists the reservations the replayed metadata
        vouches for, and everything else — allocations whose commit
        record never hit the log — is dropped as an orphan.
        """
        assert self._master is not None and self.arena is not None
        reply = yield from self._master.call(
            "register_server", self.host_id, self.capacity,
            self.arena_mr.rkey, fresh,
            timeout=self.config.control_deadline_s,
        )
        # the master has the last word on freshness: a server that asked
        # to keep its arena across a master restart may find its lease
        # expired during the outage, in which case it was buried and
        # must come back with a wiped slate and a bumped fence
        if reply.get("fresh", fresh):
            if not fresh:
                self.arena = Arena(self.arena_mr.addr, self.capacity)
            self.nic.fence_epoch = reply["epoch"]
        else:
            self.arena.retain(addr for addr, _length in reply["live"])
        return reply

    def _rejoin_master(self):
        """Reconnect to a (restarted) master (generator).

        Retries with backoff until ``server_rejoin_deadline_s`` drains,
        then returns False — the caller stands the server down, though
        its NIC stays up so in-flight one-sided traffic still completes
        until the master buries us and clients remap away.
        Re-registration is *not* fresh: the arena survives a master
        crash, and the replayed log tells us which reservations to keep.
        """
        cfg = self.config
        backoff = Backoff(
            self.sim,
            derive_rng(cfg.seed, f"server-rejoin-{self.host_id}"),
            base_s=cfg.retry_backoff_base_s,
            max_s=cfg.retry_backoff_max_s,
            deadline=self.sim.now + cfg.server_rejoin_deadline_s,
        )
        while self.alive:
            try:
                yield from backoff.pause()
            except DeadlineExceededError:
                return False
            master = RpcClient(self.sim, self.nic, self.cm)
            try:
                yield from master.connect(cfg.master_host, cfg.master_service)
                self._master = master
                yield from self._register(fresh=False)
            except (RpcError, ChannelClosed, RdmaError):
                continue
            return True
        return False

    def _reregister(self):
        """Rejoin after the master forgot us (generator).

        The master has already dropped every replica we hosted, so our
        old reservations are orphaned: reset the arena bookkeeping and
        donate the full capacity again.  The arena MR stays registered,
        so clients holding stale descriptors can still complete in-flight
        one-sided reads against the old bytes until they remap — the
        fence epoch from the fresh registration is what finally cuts
        them off.
        """
        assert self.arena_mr is not None
        self.arena = Arena(self.arena_mr.addr, self.capacity)
        yield from self._register(fresh=True)
